"""Experiment E4 — Section 7.1: receipt-dissemination bandwidth overhead.

Regenerates the paper's bandwidth calculation: a conservative 10-domain path
with 1000-packet aggregates and 1% sampling incurs ~0.2 receipt bytes per
packet (aggregate receipts only), a ~0.05% overhead on 400-byte packets, and
stays "less than 0.1%" under the aggregate-only accounting the paper uses.
The full accounting (including per-sample records) is also reported, and the
analytic model is cross-checked against the receipt bytes actually produced by
a running VPM session.
"""

from __future__ import annotations

from benchmarks.conftest import make_hop_config, print_table
from benchmarks.experiment_lib import build_congested_scenario
from repro.core.protocol import VPMSession
from repro.reporting.overhead import BandwidthOverheadModel


def _run_models():
    return {
        "paper (10 domains, 1000/agg, 1%)": BandwidthOverheadModel(
            hops_on_path=10, packets_per_aggregate=1000, sampling_rate=0.01
        ),
        "typical path (4 domains)": BandwidthOverheadModel(
            hops_on_path=4, packets_per_aggregate=1000, sampling_rate=0.01
        ),
        "coarse tuning (100k/agg, 0.1%)": BandwidthOverheadModel(
            hops_on_path=10, packets_per_aggregate=100_000, sampling_rate=0.001
        ),
        "aggressive tuning (100/agg, 5%)": BandwidthOverheadModel(
            hops_on_path=10, packets_per_aggregate=100, sampling_rate=0.05
        ),
    }


def test_overhead_bandwidth_model(benchmark):
    """Regenerate the Section 7.1 bandwidth numbers."""
    models = benchmark.pedantic(_run_models, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{model.aggregate_only_bytes_per_packet:.3f} B/pkt",
            f"{model.aggregate_only_bandwidth_overhead * 100:.4f} %",
            f"{model.receipt_bytes_per_packet:.3f} B/pkt",
            f"{model.bandwidth_overhead * 100:.4f} %",
        ]
        for name, model in models.items()
    ]
    print_table(
        "Section 7.1: receipt bandwidth overhead",
        ["scenario", "agg-only B/pkt", "agg-only overhead", "full B/pkt", "full overhead"],
        rows,
    )

    paper = models["paper (10 domains, 1000/agg, 1%)"]
    # The paper's arithmetic: ~0.2 B/pkt and ~0.05% (aggregate receipts only).
    assert 0.15 < paper.aggregate_only_bytes_per_packet < 0.3
    assert paper.aggregate_only_bandwidth_overhead < 0.001
    # Even with sample records charged, the overhead stays below 0.25%.
    assert paper.bandwidth_overhead < 0.0025
    # At the paper's preferred coarse operating point, the full accounting
    # stays below the 0.1% figure quoted in Section 2.1.
    assert models["coarse tuning (100k/agg, 0.1%)"].bandwidth_overhead < 0.001


def test_overhead_bandwidth_measured_session(benchmark, bench_packets, path):
    """Cross-check against the receipt bytes a real session produces."""

    def run_session():
        scenario = build_congested_scenario(loss_rate=0.0, seed=9117)
        observation = scenario.run(bench_packets)
        config = make_hop_config(sampling_rate=0.01, aggregate_size=5000)
        session = VPMSession(
            path, configs={domain.name: config for domain in path.domains}
        )
        session.run(observation)
        return session.overhead()

    overhead = benchmark.pedantic(run_session, rounds=1, iterations=1)
    print_table(
        "Measured session receipt overhead (8 HOPs, 1% sampling, 5000-pkt aggregates)",
        ["metric", "value"],
        [
            ["observed packets (all HOPs)", overhead.observed_packets],
            ["receipt bytes", overhead.receipt_bytes],
            ["receipt bytes / packet", f"{overhead.receipt_bytes_per_packet:.3f}"],
            ["bandwidth overhead", f"{overhead.bandwidth_overhead * 100:.4f} %"],
        ],
    )
    # With 5000-packet aggregates the AggTrans windows dominate; the overhead
    # still stays below 1% of the observed traffic.
    assert overhead.bandwidth_overhead < 0.01
