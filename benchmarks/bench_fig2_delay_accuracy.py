"""Experiment E1 — Figure 2: delay-estimation accuracy vs sampling rate.

Regenerates the paper's Figure 2: "the accuracy with which domain X's delay
performance is estimated as a function of X's sampling rate, for different
levels of loss, when X uses our sampling algorithm.  Congestion is caused by a
bursty, high-rate UDP flow."

Paper series: sampling rates {5%, 1%, 0.5%, 0.1%}, loss {0%, 10%, 25%, 50%}.
Expected shape: sub-millisecond to a-few-milliseconds accuracy; accuracy
degrades smoothly as the sampling rate drops and as loss increases (the paper
quotes ~2 ms at 1% sampling with 25% loss and ~5-6 ms at 0.1% with 50% loss).
"""

from __future__ import annotations

import math

from benchmarks.conftest import bench_packet_count, print_table
from benchmarks.experiment_lib import run_delay_cell

SAMPLING_RATES = (0.05, 0.01, 0.005, 0.001)
LOSS_RATES = (0.0, 0.10, 0.25, 0.50)


def _run_sweep(packet_count: int) -> dict[tuple[float, float], object]:
    results = {}
    for loss_index, loss_rate in enumerate(LOSS_RATES):
        for rate_index, sampling_rate in enumerate(SAMPLING_RATES):
            results[(sampling_rate, loss_rate)] = run_delay_cell(
                packet_count,
                sampling_rate=sampling_rate,
                loss_rate=loss_rate,
                seed=loss_index * 10 + rate_index,
            )
    return results


def test_fig2_delay_accuracy_vs_sampling_rate(benchmark):
    """Regenerate Figure 2 and check its qualitative shape."""
    results = benchmark.pedantic(
        _run_sweep, args=(bench_packet_count(),), rounds=1, iterations=1
    )

    rows = []
    for sampling_rate in SAMPLING_RATES:
        row = [f"{sampling_rate * 100:g}%"]
        for loss_rate in LOSS_RATES:
            cell = results[(sampling_rate, loss_rate)]
            value = (
                f"{cell.accuracy_ms:.2f} ms ({cell.sample_count})"
                if not math.isnan(cell.accuracy_ms)
                else "n/a"
            )
            row.append(value)
        rows.append(row)
    print_table(
        "Figure 2: delay accuracy [ms] (matched samples) by sampling rate x loss",
        ["sampling rate"] + [f"{loss * 100:g}% loss" for loss in LOSS_RATES],
        rows,
    )

    # Qualitative checks of the paper's claims:
    # (1) at 1% sampling and 25% loss, accuracy is within a few milliseconds;
    cell_1pct_25 = results[(0.01, 0.25)]
    assert cell_1pct_25.accuracy_ms < 5.0
    # (2) accuracy degrades gracefully: even the worst cell (0.1% sampling,
    #     50% loss) stays within ~10 ms for the tens-of-ms congestion delays.
    worst = max(
        cell.accuracy_ms
        for cell in results.values()
        if not math.isnan(cell.accuracy_ms)
    )
    assert worst < 15.0
    # (3) more sampling never hurts dramatically: the 5% column is at least as
    #     good as the 0.1% column on average.
    def mean_accuracy(rate: float) -> float:
        values = [
            results[(rate, loss)].accuracy_ms
            for loss in LOSS_RATES
            if not math.isnan(results[(rate, loss)].accuracy_ms)
        ]
        return sum(values) / len(values)

    assert mean_accuracy(0.05) <= mean_accuracy(0.001) + 1.0
    # (4) sample counts shrink with the sampling rate (tunability is real).
    assert (
        results[(0.05, 0.0)].sample_count
        > results[(0.01, 0.0)].sample_count
        > results[(0.001, 0.0)].sample_count
    )
