"""Experiment E6 — Section 7.2 "Verifiability": how well neighbors can verify.

The paper's concluding numbers: if X samples at 1% and loses 25% of its
traffic, a verifier can estimate X's delay with ~2 ms accuracy; if the
downstream neighbor N samples at the same rate the verifier can *verify* the
claim at the same accuracy, but if N samples at only 0.1% the verification
accuracy degrades to ~5 ms.  The verification estimate is computed purely from
the neighbors' receipts (L's egress HOP to N's ingress HOP), without trusting
any of X's receipts.
"""

from __future__ import annotations

import math

from benchmarks.conftest import bench_packet_count, print_table
from benchmarks.experiment_lib import run_delay_cell

NEIGHBOR_RATES = (0.05, 0.01, 0.005, 0.001)
X_SAMPLING_RATE = 0.01
LOSS_RATE = 0.25


def _run_sweep(packet_count: int):
    return [
        run_delay_cell(
            packet_count,
            sampling_rate=X_SAMPLING_RATE,
            loss_rate=LOSS_RATE,
            neighbor_sampling_rate=rate,
            seed=700 + index,
        )
        for index, rate in enumerate(NEIGHBOR_RATES)
    ]


def test_verification_accuracy_vs_neighbor_sampling_rate(benchmark):
    """Regenerate the Section 7.2 verifiability trade-off."""
    cells = benchmark.pedantic(
        _run_sweep, args=(bench_packet_count(),), rounds=1, iterations=1
    )

    rows = []
    for rate, cell in zip(NEIGHBOR_RATES, cells):
        independent = (
            f"{cell.independent_accuracy_ms:.2f} ms ({cell.independent_sample_count})"
            if cell.independent_accuracy_ms is not None
            else "n/a"
        )
        claimed = (
            f"{cell.accuracy_ms:.2f} ms ({cell.sample_count})"
            if not math.isnan(cell.accuracy_ms)
            else "n/a"
        )
        rows.append([f"{rate * 100:g}%", claimed, independent])
    print_table(
        f"Section 7.2 verifiability: X samples at {X_SAMPLING_RATE * 100:g}%, "
        f"{LOSS_RATE * 100:g}% loss; estimation vs neighbor-based verification",
        ["neighbor sampling rate", "estimate from X's receipts", "verification via neighbors"],
        rows,
    )

    # Shape checks: verification sample counts shrink with the neighbor's
    # sampling rate, and verification accuracy never beats the neighbor's own
    # information budget (the 0.1% neighbor verifies more coarsely than the
    # 5% neighbor).
    counts = [cell.independent_sample_count for cell in cells]
    assert counts[0] > counts[-1]
    best = cells[0].independent_accuracy_ms
    worst = cells[-1].independent_accuracy_ms
    if best is not None and worst is not None:
        assert worst >= best - 1.0
    # The verifier never needs X's cooperation: independent estimates exist at
    # every neighbor rate.
    assert all(cell.independent_sample_count > 0 for cell in cells)
