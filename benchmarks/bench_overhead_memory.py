"""Experiment E3 — Section 7.1: collector memory requirements.

Regenerates the paper's back-of-the-envelope memory numbers:

* monitoring cache: ~20 B of per-path state, 2 MB for 100,000 active paths;
* temporary packet buffer: ~436 KB per 10 Gbps interface at 400-byte average
  packets, ~2.8 MB in the all-minimum-size worst case — both within a single
  SRAM chip.

The analytic model is cross-checked against the running implementation: the
measured per-entry sizes and the observed peak temporary-buffer occupancy of a
real collector run are compared with the model's predictions.
"""

from __future__ import annotations

from benchmarks.conftest import make_hop_config, print_table
from benchmarks.experiment_lib import build_congested_scenario
from repro.core.hop import HOPCollector, HOPProcessor
from repro.reporting.overhead import CollectorMemoryModel
from repro.util.units import bytes_to_human


def _run_models():
    scenarios = {
        "paper typical (10G, 400B pkts)": CollectorMemoryModel(
            active_paths=100_000, interface_gbps=10, mean_packet_size=400
        ),
        "paper worst case (10G, min pkts)": CollectorMemoryModel(
            active_paths=100_000, interface_gbps=10, mean_packet_size=62
        ),
        "edge router (1G, 400B pkts)": CollectorMemoryModel(
            active_paths=10_000, interface_gbps=1, mean_packet_size=400
        ),
        "core router (100G, 400B pkts)": CollectorMemoryModel(
            active_paths=500_000, interface_gbps=100, mean_packet_size=400
        ),
    }
    return scenarios


def test_overhead_memory_models(benchmark):
    """Regenerate the Section 7.1 memory table."""
    scenarios = benchmark.pedantic(_run_models, rounds=1, iterations=1)

    rows = [
        [
            name,
            bytes_to_human(model.monitoring_cache_bytes),
            bytes_to_human(model.temp_buffer_bytes),
            bytes_to_human(model.total_bytes),
            "yes" if model.fits_in_sram_chip() else "no",
        ]
        for name, model in scenarios.items()
    ]
    print_table(
        "Section 7.1: collector memory (monitoring cache + temporary buffer)",
        ["scenario", "monitoring cache", "temp buffer", "total", "fits 32MB SRAM"],
        rows,
    )

    typical = scenarios["paper typical (10G, 400B pkts)"]
    worst = scenarios["paper worst case (10G, min pkts)"]
    # Paper's numbers: 2 MB cache, ~436 KB typical buffer, ~2.8 MB worst case.
    assert typical.monitoring_cache_bytes == 2_000_000
    assert 350_000 < typical.temp_buffer_bytes < 550_000
    assert 2_000_000 < worst.temp_buffer_bytes < 3_500_000
    assert worst.fits_in_sram_chip()


def test_overhead_memory_measured_collector(benchmark, bench_packets, path):
    """Cross-check the model against a running collector at HOP 4."""

    def run_collector():
        scenario = build_congested_scenario(loss_rate=0.0, seed=9017)
        observation = scenario.run(bench_packets)
        collector = HOPCollector(
            path.hops_of("X")[0], make_hop_config(sampling_rate=0.01, aggregate_size=5000)
        )
        collector.register_path(path)
        collector.observe_sequence(observation.at_hop(4))
        HOPProcessor(collector).generate_report(flush=True)
        return collector

    collector = benchmark.pedantic(run_collector, rounds=1, iterations=1)
    peak_entries = collector.max_temp_buffer_occupancy
    # The temporary buffer holds at most the packets observed between markers
    # (1/marker_rate = 1000 expected); its peak should stay within a small
    # multiple of that expectation, confirming the model's sizing assumption
    # that per-packet state lives for only "ten milliseconds or so".
    print_table(
        "Measured collector state (HOP 4)",
        ["metric", "value"],
        [
            ["observed packets", collector.observed_packets],
            ["peak temp-buffer entries", peak_entries],
            ["peak temp-buffer bytes (7 B/entry)", peak_entries * 7],
            ["active paths", collector.active_paths],
        ],
    )
    assert peak_entries < 20_000
    assert collector.active_paths == 1
