"""Ablation A1 — bias resistance (Sections 3.2 and 5.1).

A congested domain fast-paths the packets it expects to be measured.  Against
Trajectory Sampling ++ (hash-sampling computable from the packet alone) the
attack makes the measured delay collapse to the fast-path delay; against VPM's
delay-keyed sampling the attacker can only guess, and the measured delay stays
on the true population value.  This is the design choice that motivates the
marker/future-keyed sampling function.
"""

from __future__ import annotations

from benchmarks.conftest import make_hop_config, print_table
from repro.adversary.bias import BiasedTreatmentAttack
from repro.baselines.trajectory_sampling import TrajectorySamplingPlusPlus
from repro.core.protocol import VPMSession
from repro.net.hashing import PacketDigester
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import CongestionDelayModel

SAMPLING_RATE = 0.01
FAST_PATH_DELAY = 0.2e-3


def _run_attack_comparison(packets):
    digester = PacketDigester()
    attack = BiasedTreatmentAttack(digester=digester, guess_rate=SAMPLING_RATE)
    ts_protocol = TrajectorySamplingPlusPlus(sampling_rate=SAMPLING_RATE)
    results = {}

    for label, predicate in (
        ("ts++ (predictable, biased)", attack.predicate_against(ts_protocol)),
        ("vpm (unpredictable, best-effort bias)", attack.blind_guess_predicate()),
    ):
        scenario = PathScenario(seed=hash(label) % 100_000)
        scenario.configure_domain(
            "X",
            SegmentCondition(
                delay_model=CongestionDelayModel(scenario="udp-burst", seed=811),
                preferential_predicate=predicate,
                preferential_delay=FAST_PATH_DELAY,
            ),
        )
        observation = scenario.run(packets)
        truth = observation.truth_for("X")
        true_q90 = truth.delay_quantiles([0.9])[0.9]

        if label.startswith("ts++"):
            protocol = TrajectorySamplingPlusPlus(sampling_rate=SAMPLING_RATE)
            ingress = [(digester.digest(p), t) for p, t in observation.at_hop(4)]
            egress = [(digester.digest(p), t) for p, t in observation.at_hop(5)]
            estimate = protocol.run(ingress, egress)
            measured_q90 = estimate.delay_quantiles[0.9]
        else:
            config = make_hop_config(sampling_rate=SAMPLING_RATE, aggregate_size=5000)
            session = VPMSession(
                observation.path,
                configs={"S": None, "L": config, "X": config, "N": config, "D": None},
            )
            session.run(observation)
            measured_q90 = session.estimate("L", "X").delay_quantile(0.9)

        results[label] = {
            "true_q90_ms": true_q90 * 1e3,
            "measured_q90_ms": measured_q90 * 1e3,
            "underestimation_factor": true_q90 / measured_q90 if measured_q90 else float("inf"),
        }
    return results


def test_ablation_bias_resistance(benchmark, bench_packets):
    """Compare the bias attack's effect on TS++ vs on VPM."""
    results = benchmark.pedantic(
        _run_attack_comparison, args=(bench_packets,), rounds=1, iterations=1
    )
    rows = [
        [
            label,
            f"{cell['true_q90_ms']:.2f} ms",
            f"{cell['measured_q90_ms']:.2f} ms",
            f"{cell['underestimation_factor']:.1f}x",
        ]
        for label, cell in results.items()
    ]
    print_table(
        "A1: preferential-treatment attack — true vs measured 90th-percentile delay",
        ["protocol under attack", "true q90", "measured q90", "underestimation"],
        rows,
    )

    ts_cell = results["ts++ (predictable, biased)"]
    vpm_cell = results["vpm (unpredictable, best-effort bias)"]
    # TS++ is fooled: it underestimates the population delay by a large factor.
    assert ts_cell["underestimation_factor"] > 5.0
    # VPM is not: the measured q90 stays within ~30% of the truth.
    assert vpm_cell["underestimation_factor"] < 1.4
