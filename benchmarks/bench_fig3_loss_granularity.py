"""Experiment E2 — Figure 3: loss-computation granularity vs loss rate.

Regenerates the paper's Figure 3: "the granularity at which domain X's loss
performance is computed as a function of the loss rate introduced by X, when X
uses our aggregation algorithm."

The paper fixes one aggregate per 100,000 packets (1 second of its trace) and
sweeps loss from 0 to 50%; granularity grows smoothly from ~1.2 s to ~2.6 s.
Our sequence is shorter (see ``EXPERIMENTS.md``), so the aggregate size is
scaled down proportionally (5,000 packets = 50 ms of traffic by default); the
quantity to compare with the paper is the *ratio* of measured granularity to
the nominal aggregate duration, which follows the same 1/(1-loss)-like curve.
"""

from __future__ import annotations

from benchmarks.conftest import bench_packet_count, print_table
from benchmarks.experiment_lib import run_loss_cell

LOSS_RATES = (0.0, 0.10, 0.20, 0.30, 0.40, 0.50)
AGGREGATE_SIZE = 5_000


def _run_sweep(packet_count: int):
    return [
        run_loss_cell(
            packet_count, loss_rate=loss, aggregate_size=AGGREGATE_SIZE, seed=index
        )
        for index, loss in enumerate(LOSS_RATES)
    ]


def test_fig3_loss_granularity_vs_loss_rate(benchmark):
    """Regenerate Figure 3 and check its qualitative shape."""
    cells = benchmark.pedantic(
        _run_sweep, args=(bench_packet_count(),), rounds=1, iterations=1
    )

    rows = [
        [
            f"{cell.loss_rate * 100:g}%",
            f"{cell.granularity_s * 1e3:.1f} ms",
            f"{cell.granularity_s / cell.nominal_granularity_s:.2f}x",
            f"{cell.computed_loss_rate * 100:.2f}%",
            f"{cell.true_loss_rate * 100:.2f}%",
        ]
        for cell in cells
    ]
    print_table(
        f"Figure 3: loss granularity (aggregate size {AGGREGATE_SIZE} pkts, "
        f"nominal {cells[0].nominal_granularity_s * 1e3:.0f} ms)",
        ["loss rate", "granularity", "vs nominal", "computed loss", "true loss"],
        rows,
    )

    # Qualitative checks:
    # (1) the computed loss matches the true loss exactly at every loss level
    #     (aggregation gives precise loss, not an estimate);
    for cell in cells:
        assert abs(cell.computed_loss_rate - cell.true_loss_rate) < 1e-9
    # (2) granularity degrades smoothly: at 25-30% loss it stays within ~2x of
    #     the nominal aggregate duration (the paper reports 1.5 s for a 1 s
    #     nominal at 25% loss), and even at 50% within ~4x;
    mid = cells[3]  # 30% loss
    assert mid.granularity_s / mid.nominal_granularity_s < 2.5
    worst = cells[-1]
    assert worst.granularity_s / worst.nominal_granularity_s < 4.5
    # (3) granularity is monotone-ish in loss: the 50% point is coarser than
    #     the 0% point.
    assert cells[-1].granularity_s > cells[0].granularity_s
