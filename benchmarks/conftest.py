"""Shared machinery for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation (see the experiment index in ``DESIGN.md``).  The experiments run
on a synthetic packet sequence whose size is controlled by the
``REPRO_BENCH_PACKETS`` environment variable (default 30,000 packets at the
paper's 100,000 packets-per-second rate — about 0.3 s of traffic).  Set it to
100000 to run at the paper's full per-second scale; the shapes of the results
do not change, only their statistical smoothness.

All experiment sweeps are wrapped in ``benchmark.pedantic(..., rounds=1)`` so
that ``pytest benchmarks/ --benchmark-only`` both times them and prints the
regenerated table exactly once.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPConfig
from repro.core.sampling import SamplerConfig
from repro.net.topology import figure1_topology
from repro.traffic.flows import FlowGeneratorConfig
from repro.traffic.trace import SyntheticTrace, TraceConfig, default_prefix_pair


DEFAULT_BENCH_PACKETS = 30_000
PACKETS_PER_SECOND = 100_000.0
# Seed of the shared benchmark trace; experiment_lib's declarative cells
# regenerate the identical sequence from this seed.
BENCH_TRACE_SEED = 7777


def bench_packet_count() -> int:
    """Number of packets in the benchmark sequence (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_PACKETS", DEFAULT_BENCH_PACKETS))


@pytest.fixture(scope="session")
def path():
    """The Figure-1 HOP path used by benchmarks that need explicit HOPs."""
    _, hop_path = figure1_topology()
    return hop_path


@pytest.fixture(scope="session")
def bench_packets():
    """The benchmark packet sequence (generated once per session)."""
    config = TraceConfig(
        packet_count=bench_packet_count(),
        packets_per_second=PACKETS_PER_SECOND,
        flow_config=FlowGeneratorConfig(),
    )
    return SyntheticTrace(
        config=config, prefix_pair=default_prefix_pair(), seed=BENCH_TRACE_SEED
    ).packets()


def make_hop_config(
    sampling_rate: float = 0.01,
    aggregate_size: int = 5000,
    marker_rate: float = 0.001,
    reorder_window: float = 0.002,
) -> HOPConfig:
    """Build a HOP configuration for a benchmark cell."""
    return HOPConfig(
        sampler=SamplerConfig(sampling_rate=sampling_rate, marker_rate=marker_rate),
        aggregator=AggregatorConfig(
            expected_aggregate_size=aggregate_size, reorder_window=reorder_window
        ),
    )


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a fixed-width results table to stdout (shown with pytest -s or on
    the benchmark summary)."""
    widths = [
        max(len(str(header)), *(len(str(row[index])) for row in rows)) if rows else len(str(header))
        for index, header in enumerate(headers)
    ]
    line = "  ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    separator = "-" * len(line)
    print(f"\n=== {title} ===")
    print(line)
    print(separator)
    for row in rows:
        print("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
    print(separator)
