"""Ablation A3 — the marker-dropping attack (Section 5.3).

An under-performing domain drops every marker packet so its downstream
neighbor keys its sampling on the wrong packets.  The paper's argument: the
attack is self-exposing, because markers are always sampled and reported by
every HOP that sees them — each dropped marker is therefore a packet the
upstream neighbor vouches for and the attacker cannot account for.  The
benchmark measures (a) the exposure rate and (b) how much the attack actually
costs the verifier in matched delay samples.
"""

from __future__ import annotations

from benchmarks.conftest import make_hop_config, print_table
from repro.adversary.marker_drop import MarkerDropAttack, marker_exposure_rate
from repro.core.protocol import VPMSession
from repro.net.hashing import PacketDigester
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import CongestionDelayModel

MARKER_RATE = 0.001
SAMPLING_RATE = 0.01


def _run_attack(packets):
    digester = PacketDigester()
    results = {}
    for label, attack_enabled in (("honest X", False), ("X drops all markers", True)):
        attack = MarkerDropAttack(digester=digester, marker_rate=MARKER_RATE)
        scenario = PathScenario(seed=1000 if attack_enabled else 1001)
        scenario.configure_domain(
            "X",
            SegmentCondition(
                delay_model=CongestionDelayModel(scenario="udp-burst", seed=1002),
                drop_predicate=attack.drop_predicate() if attack_enabled else None,
            ),
        )
        observation = scenario.run(packets)
        config = make_hop_config(
            sampling_rate=SAMPLING_RATE, aggregate_size=5000, marker_rate=MARKER_RATE
        )
        session = VPMSession(
            observation.path,
            configs={"S": None, "L": config, "X": config, "N": config, "D": None},
        )
        session.run(observation)
        performance = session.estimate("L", "X")
        results[label] = {
            "markers_dropped": sum(
                1
                for packet, _ in observation.at_hop(4)
                if packet.uid in observation.truth_for("X").lost and attack.is_marker(packet)
            ),
            "exposure_rate": marker_exposure_rate(observation, "X", attack)
            if attack_enabled
            else None,
            "x_loss_rate": performance.loss_rate,
            "matched_delay_samples": performance.delay_sample_count,
            "consistent": not session.verifier_for("L").check_consistency(),
        }
    return results


def test_ablation_marker_dropping(benchmark, bench_packets):
    """Marker dropping is fully exposed and hurts the attacker's own report."""
    results = benchmark.pedantic(_run_attack, args=(bench_packets,), rounds=1, iterations=1)
    rows = [
        [
            label,
            cell["markers_dropped"],
            "-" if cell["exposure_rate"] is None else f"{cell['exposure_rate'] * 100:.0f}%",
            f"{cell['x_loss_rate'] * 100:.2f}%",
            cell["matched_delay_samples"],
            "yes" if cell["consistent"] else "no",
        ]
        for label, cell in results.items()
    ]
    print_table(
        "A3: marker-dropping attack",
        ["scenario", "markers dropped", "exposure", "X loss (from receipts)", "delay samples", "receipts consistent"],
        rows,
    )

    honest = results["honest X"]
    attacked = results["X drops all markers"]
    # The attack drops markers and every one of them is exposed.
    assert attacked["markers_dropped"] > 0
    assert attacked["exposure_rate"] == 1.0
    # The dropped markers appear as loss in X's own (honest-about-counts)
    # receipts — the attacker damages its own reported performance.
    assert attacked["x_loss_rate"] > honest["x_loss_rate"]
    # Receipts remain mutually consistent (no one is lying about observations),
    # so the "attack" buys nothing except admitting loss.
    assert attacked["consistent"]
