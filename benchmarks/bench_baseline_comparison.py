"""Experiment A4 — the Section 3 design-space comparison.

Runs the strawman, Trajectory Sampling ++, Difference Aggregator ++ and VPM
over the *same* congested-domain observations and tabulates, for each
protocol, what it can compute (loss, average delay, delay quantiles), how much
receipt state it ships, and whether its measured set is predictable (the
precondition for the bias attack).  This regenerates, quantitatively, the
qualitative recap of Section 3.4.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from benchmarks.experiment_lib import build_congested_scenario
from repro.baselines.difference_aggregator import DifferenceAggregatorPlusPlus
from repro.baselines.strawman import StrawmanProtocol
from repro.baselines.trajectory_sampling import TrajectorySamplingPlusPlus
from repro.baselines.vpm_adapter import VPMProtocolAdapter
from repro.net.hashing import PacketDigester

LOSS_RATE = 0.25
SAMPLING_RATE = 0.01
AGGREGATE_SIZE = 1000


def _run_comparison(packets):
    digester = PacketDigester()
    scenario = build_congested_scenario(loss_rate=LOSS_RATE, seed=1100)
    observation = scenario.run(packets)
    truth = observation.truth_for("X")
    ingress = [(digester.digest(p), t) for p, t in observation.at_hop(4)]
    egress = [(digester.digest(p), t) for p, t in observation.at_hop(5)]

    protocols = [
        StrawmanProtocol(),
        TrajectorySamplingPlusPlus(sampling_rate=SAMPLING_RATE),
        DifferenceAggregatorPlusPlus(expected_aggregate_size=AGGREGATE_SIZE),
        VPMProtocolAdapter(sampling_rate=SAMPLING_RATE, expected_aggregate_size=AGGREGATE_SIZE),
    ]
    estimates = {protocol.name: protocol.run(ingress, egress) for protocol in protocols}
    truth_summary = {
        "loss_rate": truth.loss_rate,
        "q90_ms": truth.delay_quantiles([0.9])[0.9] * 1e3,
    }
    predictability = {protocol.name: protocol.sampling_predictable for protocol in protocols}
    return estimates, truth_summary, predictability


def test_baseline_comparison(benchmark, bench_packets):
    """Regenerate the Section 3 comparison table."""
    estimates, truth, predictability = benchmark.pedantic(
        _run_comparison, args=(bench_packets,), rounds=1, iterations=1
    )

    rows = []
    for name, estimate in estimates.items():
        rows.append(
            [
                name,
                "-" if estimate.loss_rate is None else f"{estimate.loss_rate * 100:.2f}%",
                "-" if estimate.mean_delay is None else f"{estimate.mean_delay * 1e3:.2f} ms",
                "-"
                if estimate.delay_quantiles is None
                else f"{estimate.delay_quantiles[0.9] * 1e3:.2f} ms",
                f"{estimate.receipt_bytes_per_packet:.3f}",
                "yes" if predictability[name] else "no",
            ]
        )
    rows.append(
        ["(ground truth)", f"{truth['loss_rate'] * 100:.2f}%", "-", f"{truth['q90_ms']:.2f} ms", "-", "-"]
    )
    print_table(
        f"A4: Section 3 comparison ({LOSS_RATE * 100:g}% loss, UDP-burst congestion)",
        ["protocol", "loss", "mean delay", "q90 delay", "receipt B/pkt", "biasable (predictable)"],
        rows,
    )

    strawman = estimates["strawman"]
    ts = estimates["trajectory-sampling++"]
    lda = estimates["difference-aggregator++"]
    vpm = estimates["vpm"]

    # Computability: strawman, TS++ and VPM produce quantiles; LDA does not.
    assert strawman.delay_quantiles and ts.delay_quantiles and vpm.delay_quantiles
    assert lda.delay_quantiles is None
    # Loss: the strawman and VPM compute it (near-)exactly, TS++ estimates it
    # from samples; DA++ reports loss but silently under-counts whenever a lost
    # cutting point merges aggregates (the Section 3.3 failure), so it is only
    # required to be in the right ballpark.
    assert abs(strawman.loss_rate - truth["loss_rate"]) < 0.01
    assert abs(vpm.loss_rate - truth["loss_rate"]) < 0.02
    assert abs(ts.loss_rate - truth["loss_rate"]) < 0.05
    assert lda.loss_rate is not None
    assert abs(lda.loss_rate - truth["loss_rate"]) < 0.15
    # Tunability / cost ordering: strawman is by far the most expensive;
    # VPM sits between the aggregate-only LDA and the strawman.
    assert strawman.receipt_bytes_per_packet > 5 * vpm.receipt_bytes_per_packet
    assert lda.receipt_bytes_per_packet < vpm.receipt_bytes_per_packet
    # Verifiability precondition: only TS++ has a predictable measured set.
    assert predictability["trajectory-sampling++"] is True
    assert predictability["vpm"] is False
