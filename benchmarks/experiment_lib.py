"""Experiment runners shared by the benchmark modules.

Each function runs one *cell* of an evaluation sweep — one (sampling rate,
loss rate) combination for the Figure-2 experiment, one loss rate for the
Figure-3 experiment, and so on — following the paper's methodology
(Section 7.2): extract a packet sequence, congest domain X, generate the
receipts X and its neighbors would generate, estimate X's performance from
the receipts, and compare with ground truth.

The cells are expressed as declarative :class:`repro.api.ExperimentSpec`
values and executed through :class:`repro.api.Experiment` (the batch fast
path).  The specs pin the exact per-component seeds the hand-wired versions
of these cells used, so the regenerated Figure-2/Figure-3 numbers are
bit-identical to the historical ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import (
    ConditionSpec,
    EstimationSpec,
    Experiment,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    TrafficSpec,
)
from repro.simulation.scenario import PathScenario

from benchmarks.conftest import BENCH_TRACE_SEED, PACKETS_PER_SECOND

# Quantiles over which Figure 2's "delay accuracy" (worst-case quantile error)
# is evaluated.
ACCURACY_QUANTILES = (0.5, 0.75, 0.9, 0.95)


@dataclass(frozen=True)
class DelayCellResult:
    """Result of one Figure-2 / verifiability cell."""

    sampling_rate: float
    loss_rate: float
    accuracy_ms: float
    sample_count: int
    independent_accuracy_ms: float | None
    independent_sample_count: int
    true_q90_ms: float
    estimated_q90_ms: float


@dataclass(frozen=True)
class LossCellResult:
    """Result of one Figure-3 cell."""

    loss_rate: float
    aggregate_size: int
    nominal_granularity_s: float
    granularity_s: float
    computed_loss_rate: float
    true_loss_rate: float


def bench_traffic_spec(packet_count: int) -> TrafficSpec:
    """The benchmark packet sequence as a spec (mirrors the pytest fixture)."""
    return TrafficSpec(
        workload=None,
        packet_count=packet_count,
        packets_per_second=PACKETS_PER_SECOND,
        seed=BENCH_TRACE_SEED,
    )


def congested_path_spec(
    loss_rate: float,
    seed: int,
    reordering_window: float = 0.0,
) -> PathSpec:
    """The Figure-1 path with domain X congested by a bursty UDP flow.

    The per-component seeds are pinned to the layout the benchmarks have
    always used (scenario ``seed``, delay ``seed + 1``, loss ``seed + 2``,
    reordering ``seed + 3``).
    """
    condition = ConditionSpec(
        delay="congestion",
        delay_params={"scenario": "udp-burst", "seed": seed + 1},
        loss="gilbert-elliott-rate",
        loss_params={"target_rate": loss_rate, "seed": seed + 2},
        reordering="window" if reordering_window > 0 else "none",
        reordering_params=(
            {
                "window": reordering_window,
                "reorder_probability": 0.3,
                "seed": seed + 3,
            }
            if reordering_window > 0
            else {}
        ),
    )
    return PathSpec(scenario="figure1", seed=seed, conditions={"X": condition})


def build_congested_scenario(
    loss_rate: float,
    seed: int,
    reordering_window: float = 0.0,
) -> PathScenario:
    """Materialized scenario for benchmarks that drive the engine directly."""
    return congested_path_spec(loss_rate, seed, reordering_window).build()


def make_hop_spec(sampling_rate: float, aggregate_size: int) -> HOPSpec:
    """The benchmark HOP knobs (marker rate and reorder window are fixed)."""
    return HOPSpec(
        sampling_rate=sampling_rate,
        aggregate_size=aggregate_size,
        marker_rate=0.001,
        reorder_window=0.002,
    )


def delay_cell_spec(
    packet_count: int,
    sampling_rate: float,
    loss_rate: float,
    seed: int = 0,
    neighbor_sampling_rate: float | None = None,
    aggregate_size: int = 5000,
) -> ExperimentSpec:
    """The declarative spec of one Figure-2 / verifiability cell."""
    neighbor = make_hop_spec(
        sampling_rate=neighbor_sampling_rate or sampling_rate,
        aggregate_size=aggregate_size,
    )
    return ExperimentSpec(
        name="fig2-delay-cell",
        seed=seed,
        traffic=bench_traffic_spec(packet_count),
        path=congested_path_spec(loss_rate, seed=seed * 1000 + 17),
        protocol=ProtocolSpec(
            default=None,
            domains={
                "L": neighbor,
                "X": make_hop_spec(sampling_rate, aggregate_size),
                "N": neighbor,
            },
        ),
        estimation=EstimationSpec(
            observer="L", targets=("X",), verify=False, independent=True
        ),
    )


def loss_cell_spec(
    packet_count: int,
    loss_rate: float,
    aggregate_size: int = 5000,
    seed: int = 0,
) -> ExperimentSpec:
    """The declarative spec of one Figure-3 cell."""
    return ExperimentSpec(
        name="fig3-loss-cell",
        seed=seed,
        traffic=bench_traffic_spec(packet_count),
        path=congested_path_spec(loss_rate, seed=seed * 1000 + 23),
        protocol=ProtocolSpec(
            default=None,
            domains={"X": make_hop_spec(sampling_rate=0.01, aggregate_size=aggregate_size)},
        ),
        estimation=EstimationSpec(
            observer="X", targets=("X",), verify=False, independent=False
        ),
    )


def run_delay_cell(
    packet_count: int,
    sampling_rate: float,
    loss_rate: float,
    seed: int = 0,
    neighbor_sampling_rate: float | None = None,
    aggregate_size: int = 5000,
) -> DelayCellResult:
    """One cell of the Figure-2 sweep (and of the verifiability experiment).

    The cell's traffic is the shared benchmark sequence of ``packet_count``
    packets, regenerated from :data:`BENCH_TRACE_SEED`.
    ``neighbor_sampling_rate`` sets the sampling rate of domains L and N (the
    verifying neighbors); when ``None`` they use the same rate as X, which is
    the Figure-2 setting.
    """
    spec = delay_cell_spec(
        packet_count=packet_count,
        sampling_rate=sampling_rate,
        loss_rate=loss_rate,
        seed=seed,
        neighbor_sampling_rate=neighbor_sampling_rate,
        aggregate_size=aggregate_size,
    )
    cell = Experiment(spec).run()
    target = cell.target("X")

    if target.estimate.has_delay_estimates:
        accuracy_ms = target.delay_accuracy(ACCURACY_QUANTILES) * 1e3
        estimated_q90 = target.estimate.delay_quantile(0.9) * 1e3
    else:
        accuracy_ms = float("nan")
        estimated_q90 = float("nan")

    independent = target.independent
    if independent is not None and independent.has_delay_estimates:
        independent_accuracy_ms = (
            max(
                abs(independent.delay_quantile(q) - target.truth.delay_quantile(q))
                for q in ACCURACY_QUANTILES
            )
            * 1e3
        )
        independent_samples = independent.delay_sample_count
    else:
        independent_accuracy_ms = None
        independent_samples = 0

    return DelayCellResult(
        sampling_rate=sampling_rate,
        loss_rate=loss_rate,
        accuracy_ms=accuracy_ms,
        sample_count=target.estimate.delay_sample_count,
        independent_accuracy_ms=independent_accuracy_ms,
        independent_sample_count=independent_samples,
        true_q90_ms=target.truth.delay_quantile(0.9) * 1e3,
        estimated_q90_ms=estimated_q90,
    )


def run_loss_cell(
    packet_count: int,
    loss_rate: float,
    aggregate_size: int = 5000,
    seed: int = 0,
) -> LossCellResult:
    """One cell of the Figure-3 sweep (loss granularity vs loss rate)."""
    spec = loss_cell_spec(
        packet_count=packet_count,
        loss_rate=loss_rate,
        aggregate_size=aggregate_size,
        seed=seed,
    )
    cell = Experiment(spec).run()
    target = cell.target("X")
    return LossCellResult(
        loss_rate=loss_rate,
        aggregate_size=aggregate_size,
        nominal_granularity_s=aggregate_size / PACKETS_PER_SECOND,
        granularity_s=target.estimate.mean_loss_granularity,
        computed_loss_rate=target.estimate.loss_rate,
        true_loss_rate=target.truth.loss_rate,
    )
