"""Experiment runners shared by the benchmark modules.

Each function runs one *cell* of an evaluation sweep — one (sampling rate,
loss rate) combination for the Figure-2 experiment, one loss rate for the
Figure-3 experiment, and so on — following the paper's methodology
(Section 7.2): extract a packet sequence, congest domain X, generate the
receipts X and its neighbors would generate, estimate X's performance from
the receipts, and compare with ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import delay_accuracy_report, loss_granularity_report
from repro.core.protocol import VPMSession
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import CongestionDelayModel
from repro.traffic.loss_models import GilbertElliottLossModel
from repro.traffic.reordering import WindowReordering

from benchmarks.conftest import PACKETS_PER_SECOND, make_hop_config

# Quantiles over which Figure 2's "delay accuracy" (worst-case quantile error)
# is evaluated.
ACCURACY_QUANTILES = (0.5, 0.75, 0.9, 0.95)


@dataclass(frozen=True)
class DelayCellResult:
    """Result of one Figure-2 / verifiability cell."""

    sampling_rate: float
    loss_rate: float
    accuracy_ms: float
    sample_count: int
    independent_accuracy_ms: float | None
    independent_sample_count: int
    true_q90_ms: float
    estimated_q90_ms: float


@dataclass(frozen=True)
class LossCellResult:
    """Result of one Figure-3 cell."""

    loss_rate: float
    aggregate_size: int
    nominal_granularity_s: float
    granularity_s: float
    computed_loss_rate: float
    true_loss_rate: float


def build_congested_scenario(
    loss_rate: float,
    seed: int,
    reordering_window: float = 0.0,
) -> PathScenario:
    """The Figure-1 scenario with domain X congested by a bursty UDP flow."""
    scenario = PathScenario(seed=seed)
    condition = SegmentCondition(
        delay_model=CongestionDelayModel(scenario="udp-burst", seed=seed + 1),
        loss_model=GilbertElliottLossModel.from_target_rate(loss_rate, seed=seed + 2)
        if loss_rate > 0
        else GilbertElliottLossModel.from_target_rate(0.0, seed=seed + 2),
        reordering=WindowReordering(window=reordering_window, reorder_probability=0.3, seed=seed + 3)
        if reordering_window > 0
        else SegmentCondition().reordering,
    )
    scenario.configure_domain("X", condition)
    return scenario


def run_delay_cell(
    packets,
    sampling_rate: float,
    loss_rate: float,
    seed: int = 0,
    neighbor_sampling_rate: float | None = None,
    aggregate_size: int = 5000,
) -> DelayCellResult:
    """One cell of the Figure-2 sweep (and of the verifiability experiment).

    ``neighbor_sampling_rate`` sets the sampling rate of domains L and N (the
    verifying neighbors); when ``None`` they use the same rate as X, which is
    the Figure-2 setting.
    """
    scenario = build_congested_scenario(loss_rate, seed=seed * 1000 + 17)
    observation = scenario.run(packets)
    truth = observation.truth_for("X")

    x_config = make_hop_config(sampling_rate=sampling_rate, aggregate_size=aggregate_size)
    neighbor_config = make_hop_config(
        sampling_rate=neighbor_sampling_rate or sampling_rate,
        aggregate_size=aggregate_size,
    )
    configs = {
        "S": None,
        "L": neighbor_config,
        "X": x_config,
        "N": neighbor_config,
        "D": None,
    }
    session = VPMSession(scenario.path, configs=configs)
    session.run(observation)

    performance = session.estimate("L", "X")
    if performance.delay_quantiles:
        report = delay_accuracy_report(performance, truth, quantiles=ACCURACY_QUANTILES)
        accuracy_ms = report.max_error_ms
        estimated_q90 = performance.delay_quantile(0.9) * 1e3
    else:
        accuracy_ms = float("nan")
        estimated_q90 = float("nan")

    independent = session.verifier_for("L").estimate_domain_via_neighbors("X")
    if independent is not None and independent.delay_quantiles:
        independent_report = delay_accuracy_report(
            independent, truth, quantiles=ACCURACY_QUANTILES
        )
        independent_accuracy_ms = independent_report.max_error_ms
        independent_samples = independent.delay_sample_count
    else:
        independent_accuracy_ms = None
        independent_samples = 0

    return DelayCellResult(
        sampling_rate=sampling_rate,
        loss_rate=loss_rate,
        accuracy_ms=accuracy_ms,
        sample_count=performance.delay_sample_count,
        independent_accuracy_ms=independent_accuracy_ms,
        independent_sample_count=independent_samples,
        true_q90_ms=truth.delay_quantiles([0.9])[0.9] * 1e3,
        estimated_q90_ms=estimated_q90,
    )


def run_loss_cell(
    packets,
    loss_rate: float,
    aggregate_size: int = 5000,
    seed: int = 0,
) -> LossCellResult:
    """One cell of the Figure-3 sweep (loss granularity vs loss rate)."""
    scenario = build_congested_scenario(loss_rate, seed=seed * 1000 + 23)
    observation = scenario.run(packets)
    truth = observation.truth_for("X")

    config = make_hop_config(sampling_rate=0.01, aggregate_size=aggregate_size)
    configs = {"S": None, "L": None, "X": config, "N": None, "D": None}
    session = VPMSession(scenario.path, configs=configs)
    session.run(observation)

    performance = session.estimate("X", "X")
    report = loss_granularity_report(performance, truth)
    return LossCellResult(
        loss_rate=loss_rate,
        aggregate_size=aggregate_size,
        nominal_granularity_s=aggregate_size / PACKETS_PER_SECOND,
        granularity_s=report.mean_granularity_seconds,
        computed_loss_rate=report.computed_loss_rate,
        true_loss_rate=report.true_loss_rate,
    )
