"""Experiment E5 — Section 7.1: per-packet processing cost of the collector.

The paper's prototype loads the VPM modules into a Click/Nehalem software
router and observes no forwarding-rate degradation (the server is I/O-bound at
25 Gbps either way).  A pure-Python reproduction cannot make line-rate claims,
so this benchmark measures the *relative* cost that matters for the argument:
the per-packet work of the collector hot path (classification + digest +
sampler + aggregator) compared against the digest computation alone, plus the
analytic operation counts of Section 7.1.

These are genuine repeated-timing benchmarks (not single-shot sweeps).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_hop_config, print_table
from repro.core.hop import HOPCollector
from repro.net.hashing import PacketDigester
from repro.reporting.overhead import PerPacketProcessingModel


@pytest.fixture(scope="module")
def hot_path_packets(bench_packets):
    """A slice of the benchmark trace used for the timing loops."""
    return bench_packets[:5000]


def test_collector_observe_throughput(benchmark, hot_path_packets, path):
    """Time the full collector hot path (per-packet observe)."""
    config = make_hop_config(sampling_rate=0.01, aggregate_size=5000)

    def run_once():
        collector = HOPCollector(path.hops_of("X")[0], config)
        collector.register_path(path)
        for packet in hot_path_packets:
            # Fresh digests each round would be ideal, but digest memoization
            # reflects how the simulation actually amortizes the hash; the
            # digest-only benchmark below isolates the hash cost.
            collector.observe(packet, packet.send_time)
        return collector.observed_packets

    observed = benchmark(run_once)
    assert observed == len(hot_path_packets)


def test_packet_digest_throughput(benchmark, hot_path_packets):
    """Time the digest computation alone (the dominant arithmetic cost)."""
    digester = PacketDigester(seed=12345)  # distinct seed: no memoized values

    def run_once():
        total = 0
        for packet in hot_path_packets:
            total ^= digester.digest(packet)
        return total

    benchmark(run_once)


def test_processing_operation_counts(benchmark):
    """Report the analytic per-packet operation counts of Section 7.1."""
    model = benchmark.pedantic(PerPacketProcessingModel, rounds=1, iterations=1)
    rows = [
        ["memory accesses / packet", model.memory_accesses_per_packet],
        ["amortized marker-scan accesses / packet", model.marker_scan_accesses_per_packet],
        ["hash computations / packet", model.hashes_per_packet],
        ["timestamp reads / packet", model.timestamps_per_packet],
        ["accesses/s at 10G, 400B packets", f"{model.accesses_per_second(3.125e6):.3e}"],
    ]
    print_table("Section 7.1: per-packet processing model", ["operation", "count"], rows)
    assert model.total_memory_accesses_per_packet == 4
