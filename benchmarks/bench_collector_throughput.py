"""Experiment E5 — Section 7.1: per-packet processing cost of the collector.

The paper's prototype loads the VPM modules into a Click/Nehalem software
router and observes no forwarding-rate degradation (the server is I/O-bound at
25 Gbps either way).  A pure-Python reproduction cannot make line-rate claims,
so this benchmark measures the *relative* cost that matters for the argument:
the per-packet work of the collector hot path (classification + digest +
sampler + aggregator) compared against the digest computation alone, plus the
analytic operation counts of Section 7.1.

These are genuine repeated-timing benchmarks (not single-shot sweeps).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import bench_packet_count, make_hop_config, print_table
from repro.core.hop import HOPCollector
from repro.net.hashing import PacketDigester
from repro.reporting.overhead import PerPacketProcessingModel
from repro.traffic.trace import SyntheticTrace, TraceConfig


@pytest.fixture(scope="module")
def hot_path_packets(bench_packets):
    """A slice of the benchmark trace used for the timing loops."""
    return bench_packets[:5000]


def test_collector_observe_throughput(benchmark, hot_path_packets, path):
    """Time the full collector hot path (per-packet observe)."""
    config = make_hop_config(sampling_rate=0.01, aggregate_size=5000)

    def run_once():
        collector = HOPCollector(path.hops_of("X")[0], config)
        collector.register_path(path)
        for packet in hot_path_packets:
            # Fresh digests each round would be ideal, but digest memoization
            # reflects how the simulation actually amortizes the hash; the
            # digest-only benchmark below isolates the hash cost.
            collector.observe(packet, packet.send_time)
        return collector.observed_packets

    observed = benchmark(run_once)
    assert observed == len(hot_path_packets)


def test_packet_digest_throughput(benchmark, hot_path_packets):
    """Time the digest computation alone (the dominant arithmetic cost)."""
    digester = PacketDigester(seed=12345)  # distinct seed: no memoized values

    def run_once():
        total = 0
        for packet in hot_path_packets:
            total ^= digester.digest(packet)
        return total

    benchmark(run_once)


def _batch_trace_packet_count() -> int:
    """Size of the scalar-vs-batch comparison trace (env-overridable).

    Defaults to max(4x the regular bench size, 120k); set
    ``REPRO_BENCH_BATCH_PACKETS=1000000`` (or more) to reproduce the paper-scale
    ≥1M-packet measurement recorded in CHANGES.md.
    """
    default = max(4 * bench_packet_count(), 120_000)
    return int(os.environ.get("REPRO_BENCH_BATCH_PACKETS", default))


def test_batch_vs_scalar_speedup(benchmark, path):
    """Measure the vectorized batch fast path against the scalar hot loop.

    Both paths run the identical digest + marker-sampling + aggregation
    pipeline on the same synthetic trace; the scalar per-packet cost is timed
    on a prefix of the trace (it is rate-constant) and both are reported as
    packets/second.  The batch path must be at least 10x faster — this is the
    line CI holds for the Section 7.1 "cheap per-packet work" argument.
    """
    total = _batch_trace_packet_count()
    scalar_count = min(total, max(20_000, total // 10))
    config = make_hop_config(sampling_rate=0.01, aggregate_size=100_000)
    trace = SyntheticTrace(config=TraceConfig(packet_count=total), seed=4242)
    batch = trace.packet_batch()
    hop = path.hops_of("X")[0]

    def time_scalar() -> float:
        packets = batch.take(np.arange(scalar_count)).to_packets()
        collector = HOPCollector(hop, config)
        collector.register_path(path)
        started = time.perf_counter()
        for packet in packets:
            collector.observe(packet, packet.send_time)
        elapsed = time.perf_counter() - started
        assert collector.observed_packets == scalar_count
        return scalar_count / elapsed

    def time_batch() -> float:
        best = 0.0
        for _ in range(3):  # best-of-3 absorbs first-touch page faults
            batch._digest_cache.clear()
            collector = HOPCollector(hop, config)
            collector.register_path(path)
            started = time.perf_counter()
            collector.observe_batch(batch)
            elapsed = time.perf_counter() - started
            assert collector.observed_packets == total
            best = max(best, total / elapsed)
        return best

    def run_comparison():
        scalar_rate = time_scalar()
        batch_rate = time_batch()
        return scalar_rate, batch_rate

    scalar_rate, batch_rate = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    speedup = batch_rate / scalar_rate
    print_table(
        "Section 7.1: collector hot path, scalar vs vectorized batch",
        ["path", "packets", "packets/s", "speedup"],
        [
            ["scalar observe()", scalar_count, f"{scalar_rate:,.0f}", "1.0x"],
            ["batch observe_batch()", total, f"{batch_rate:,.0f}", f"{speedup:.1f}x"],
        ],
    )
    assert speedup >= 10.0, (
        f"batch path is only {speedup:.1f}x faster than scalar "
        f"({batch_rate:,.0f} vs {scalar_rate:,.0f} packets/s)"
    )


def test_batch_digest_throughput(benchmark, path):
    """Time the vectorized digest kernel alone (the batch twin of the scalar
    digest benchmark above)."""
    total = _batch_trace_packet_count()
    trace = SyntheticTrace(config=TraceConfig(packet_count=total), seed=4242)
    batch = trace.packet_batch()
    digester = PacketDigester(seed=12345)

    def run_once():
        batch._digest_cache.clear()
        return int(digester.digest_batch(batch)[-1])

    benchmark(run_once)


def test_processing_operation_counts(benchmark):
    """Report the analytic per-packet operation counts of Section 7.1."""
    model = benchmark.pedantic(PerPacketProcessingModel, rounds=1, iterations=1)
    rows = [
        ["memory accesses / packet", model.memory_accesses_per_packet],
        ["amortized marker-scan accesses / packet", model.marker_scan_accesses_per_packet],
        ["hash computations / packet", model.hashes_per_packet],
        ["timestamp reads / packet", model.timestamps_per_packet],
        ["accesses/s at 10G, 400B packets", f"{model.accesses_per_second(3.125e6):.3e}"],
    ]
    print_table("Section 7.1: per-packet processing model", ["operation", "count"], rows)
    assert model.total_memory_accesses_per_packet == 4
