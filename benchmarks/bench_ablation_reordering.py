"""Ablation A2 — the AggTrans reordering patch-up (Section 6.3).

Domain X reorders packets within a bounded window but loses nothing.  Without
the patch-up, packets that cross a cutting point show up as spurious loss (or
negative loss) in the per-aggregate comparison; with it, the verifier migrates
them back and computes exactly zero loss.  The sweep varies the reordering
window relative to the protocol's safety threshold ``J``.
"""

from __future__ import annotations

from benchmarks.conftest import make_hop_config, print_table
from repro.core.partition import aligned_aggregates
from repro.core.protocol import VPMSession
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import ConstantDelayModel
from repro.traffic.reordering import WindowReordering

REORDER_WINDOWS_MS = (0.2, 0.5, 1.0)
AGGREGATE_SIZE = 1000
SAFETY_WINDOW = 0.002  # J = 2 ms >= every tested reordering window


def _run_sweep(packets):
    results = []
    for index, window_ms in enumerate(REORDER_WINDOWS_MS):
        scenario = PathScenario(seed=900 + index)
        scenario.configure_domain(
            "X",
            SegmentCondition(
                delay_model=ConstantDelayModel(1e-3),
                reordering=WindowReordering(
                    window=window_ms * 1e-3, reorder_probability=0.3, seed=910 + index
                ),
            ),
        )
        observation = scenario.run(packets)
        config = make_hop_config(
            sampling_rate=0.01,
            aggregate_size=AGGREGATE_SIZE,
            reorder_window=SAFETY_WINDOW,
        )
        session = VPMSession(
            observation.path,
            configs={"S": None, "L": None, "X": config, "N": None, "D": None},
        )
        session.run(observation)
        verifier = session.verifier_for("X")
        ingress = verifier.aggregate_receipts_for(4)
        egress = verifier.aggregate_receipts_for(5)
        with_patch = aligned_aggregates(ingress, egress, apply_reordering_patch=True)
        without_patch = aligned_aggregates(ingress, egress, apply_reordering_patch=False)
        results.append(
            {
                "window_ms": window_ms,
                "aggregates": len(ingress),
                "spurious_with_patch": sum(abs(p.lost_packets) for p in with_patch),
                "spurious_without_patch": sum(abs(p.lost_packets) for p in without_patch),
                "migrations": sum(abs(p.migrated_packets) for p in with_patch),
            }
        )
    return results


def test_ablation_reordering_patch_up(benchmark, bench_packets):
    """Spurious loss with and without the AggTrans patch-up."""
    results = benchmark.pedantic(_run_sweep, args=(bench_packets,), rounds=1, iterations=1)
    rows = [
        [
            f"{cell['window_ms']:g} ms",
            cell["aggregates"],
            cell["spurious_without_patch"],
            cell["spurious_with_patch"],
            cell["migrations"],
        ]
        for cell in results
    ]
    print_table(
        "A2: spurious loss under reordering (true loss is zero in every row)",
        ["reorder window", "aggregates", "spurious loss w/o patch", "with patch", "migrated pkts"],
        rows,
    )

    # The patch-up removes all spurious loss whenever the reordering window is
    # within the protocol's safety threshold J.
    for cell in results:
        assert cell["spurious_with_patch"] == 0
    # And it actually has work to do: at the larger windows the unpatched
    # comparison misattributes packets.
    assert any(cell["spurious_without_patch"] > 0 for cell in results)
