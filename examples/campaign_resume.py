#!/usr/bin/env python3
"""Checkpointable campaigns: kill a long-horizon run, resume it, lose nothing.

SLAs are contracted over long horizons ("a certain level of packet loss per
month") while receipts arrive per reporting interval — so a campaign must
survive process restarts without perturbing a single byte of its audit trail.
This example:

1. declares a 6-interval :class:`~repro.api.CampaignSpec` (per-interval
   traffic/conditions derived by BLAKE2b seed-spacing) with an SLA target;
2. runs it to completion into one :class:`~repro.store.RunStore`;
3. runs the same spec again but "crashes" after interval 3, then *resumes*
   from the store — on a different engine (streaming) for good measure;
4. verifies the two stores are byte-identical and prints the campaign
   SLA verdict table.

The same flow is available from the shell::

    repro run spec.json            # checkpointing after every interval
    repro resume runs/<id>         # continue after a kill; byte-identical
    repro report runs/<id>         # the campaign SLA verdict table

Run:  python examples/campaign_resume.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import (
    CampaignSpec,
    ConditionSpec,
    EstimationSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.engine.campaign import CampaignRunner
from repro.store import RunStore

SPEC = CampaignSpec(
    name="resume-demo",
    intervals=6,
    cell=ExperimentSpec(
        name="resume-demo-cell",
        seed=42,
        traffic=TrafficSpec(workload=None, packet_count=2500),
        path=PathSpec(
            conditions={
                "X": ConditionSpec(
                    delay="jitter",
                    delay_params={"base_delay": 1.2e-3, "jitter_std": 0.4e-3},
                    loss="gilbert-elliott-rate",
                    loss_params={"target_rate": 0.02},
                ),
            }
        ),
        protocol=ProtocolSpec(
            default=HOPSpec(sampling_rate=0.05, marker_rate=0.005, aggregate_size=800)
        ),
        estimation=EstimationSpec(observer="S", targets=("X",)),
    ),
    sla=SLATargetSpec(
        delay_bound=5e-3, delay_quantile=0.9, loss_bound=0.05, name="monthly-gold"
    ),
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-campaign-"))

    # --- the reference: one uninterrupted run -------------------------------
    uninterrupted = RunStore.create(workdir / "uninterrupted", SPEC)
    CampaignRunner(SPEC, uninterrupted).run()
    print(f"uninterrupted run: {uninterrupted.record_count} intervals, "
          f"store digest {uninterrupted.digest()[:16]}")

    # --- the crash: stop after 3 intervals ----------------------------------
    crashed = RunStore.create(workdir / "crashed", SPEC)
    CampaignRunner(SPEC, crashed).run(max_intervals=3)
    print(f"'crashed' after {crashed.record_count} intervals "
          f"(store survives the process)")

    # --- the resume: different process would reopen the store exactly here;
    # we also switch engines, which the byte-identical contract permits ------
    resumed = CampaignRunner.resume(crashed, engine="streaming", chunk_size=640)
    outcome = resumed.run()
    print(f"resumed on the streaming engine: +{outcome.intervals_run} intervals, "
          f"complete={outcome.completed}")

    assert uninterrupted.digest() == crashed.digest(), (
        "resumed store must be byte-identical to the uninterrupted run"
    )
    print("stores byte-identical: resume lost (and perturbed) nothing\n")

    # --- the verdict table, as `repro report` would print it ----------------
    summary = outcome.summary
    sla = SPEC.sla
    print(f"campaign {SPEC.name!r} over {summary['intervals']} intervals, "
          f"SLA {sla.name!r} (delay <= {sla.delay_bound * 1e3:g} ms at "
          f"q={sla.delay_quantile:g}, loss <= {sla.loss_bound * 100:g} %):")
    for domain, entry in sorted(summary["domains"].items()):
        quantile_key = repr(float(sla.delay_quantile))
        pooled = entry["pooled_quantiles"].get(quantile_key)
        delay_text = f"{pooled['estimate'] * 1e3:.3f} ms" if pooled else "n/a"
        verdict = "COMPLIANT" if entry["sla_compliant"] else "IN VIOLATION"
        print(f"  {domain}: pooled p{sla.delay_quantile * 100:g} delay {delay_text}, "
              f"loss {entry['loss_rate'] * 100:.3f}%, "
              f"receipts accepted {entry['acceptance_rate'] * 100:.0f}% "
              f"-> {verdict}")


if __name__ == "__main__":
    main()
