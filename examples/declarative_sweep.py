#!/usr/bin/env python3
"""The declarative experiment API in one page: spec → run → sweep → JSON.

Everything the quickstart wires by hand — traffic synthesis, the Figure-1
path with a congested domain, per-domain protocol knobs, estimation and
verification — is one frozen, JSON-round-trippable ``ExperimentSpec``.  The
example then sweeps a 2×2 grid of (sampling rate × loss rate) cells across a
process pool and shows that the parallel sweep is byte-identical to the
serial one: every cell is a pure function of its spec.

Run:  python examples/declarative_sweep.py
"""

from __future__ import annotations

from repro.api import (
    ConditionSpec,
    EstimationSpec,
    Experiment,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    TrafficSpec,
)

SPEC = ExperimentSpec(
    name="declarative-quickstart",
    seed=1,
    traffic=TrafficSpec(workload="smoke-sequence"),
    path=PathSpec(conditions={"X": ConditionSpec(
        delay="congestion", delay_params={"scenario": "udp-burst"},
        loss="gilbert-elliott-rate", loss_params={"target_rate": 0.10},
    )}),
    protocol=ProtocolSpec(default=HOPSpec(sampling_rate=0.01, aggregate_size=1000)),
    estimation=EstimationSpec(observer="L", targets=("X",)),
)


def main() -> None:
    # One cell: domain L estimates and verifies congested domain X.
    cell = Experiment(SPEC).run()
    x = cell.target("X")
    print(f"single cell ({SPEC.name!r}):")
    print(f"  loss: {x.estimate.loss_rate * 100:5.2f}% estimated vs "
          f"{x.truth.loss_rate * 100:5.2f}% true")
    print(f"  p90 delay: {x.estimate.delay_quantile(0.9) * 1e3:6.2f} ms estimated vs "
          f"{x.truth.delay_quantile(0.9) * 1e3:6.2f} ms true "
          f"({x.estimate.delay_sample_count} matched samples)")
    print(f"  receipts consistent: {x.verification.accepted}")

    # Specs round-trip through plain dicts/JSON: store them, diff them,
    # ship them to workers.
    assert ExperimentSpec.from_dict(SPEC.to_dict()) == SPEC

    # A sweep is a grid of dotted-path overrides.  Each cell re-derives all
    # of its randomness from the spec, so a 4-worker process-pool run is
    # byte-identical to the serial run.
    grid = {
        "protocol.default.sampling_rate": [0.05, 0.01],
        "path.conditions.X.loss_params.target_rate": [0.0, 0.25],
    }
    serial = Experiment(SPEC).sweep(grid, workers=1)
    parallel = Experiment(SPEC).sweep(grid, workers=4)
    assert serial.to_json() == parallel.to_json(), "parallel sweep must match serial"

    print("\nsweep over sampling rate x loss rate (4 cells, 4 workers):")
    print("  sampling   loss   est loss   samples   p90 est")
    for point in parallel:
        x = point.result.target("X")
        p90 = (
            f"{x.estimate.delay_quantile(0.9) * 1e3:6.2f} ms"
            if x.estimate.has_delay_estimates
            else "   n/a"
        )
        print(f"  {point.overrides['protocol.default.sampling_rate'] * 100:6.1f}%  "
              f"{point.overrides['path.conditions.X.loss_params.target_rate'] * 100:4.0f}%  "
              f"{x.estimate.loss_rate * 100:7.2f}%  {x.estimate.delay_sample_count:8d}  {p90}")
    print("\nparallel == serial: byte-identical JSON "
          f"({len(parallel.to_json())} bytes)")


if __name__ == "__main__":
    main()
