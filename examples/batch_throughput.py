#!/usr/bin/env python3
"""Drive millions of packets through the VPM pipeline with the batch fast path.

The paper's Section 7.1 argument is that per-packet HOP work is cheap enough
to run at line rate.  The scalar (object-per-packet) reproduction pays full
interpreter overhead per packet; this example uses the columnar
:class:`repro.net.batch.PacketBatch` representation and the vectorized
collector path to push a multi-million-packet sequence through traffic
synthesis, path propagation, receipt generation, estimation and verification
in seconds — with results identical to the scalar path.

Run:  python examples/batch_throughput.py [packet_count]
"""

from __future__ import annotations

import sys
import time

from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPConfig
from repro.core.protocol import VPMSession
from repro.core.sampling import SamplerConfig
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import CongestionDelayModel
from repro.traffic.loss_models import GilbertElliottLossModel
from repro.traffic.trace import SyntheticTrace, TraceConfig


def main() -> None:
    packet_count = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000_000

    started = time.perf_counter()
    trace = SyntheticTrace(
        config=TraceConfig(packet_count=packet_count, packets_per_second=100_000.0),
        seed=1,
    )
    batch = trace.packet_batch()
    generated = time.perf_counter()
    print(
        f"Synthesized {len(batch):,} packets "
        f"({batch.send_time[-1]:.1f} s of traffic) in {generated - started:.2f} s"
    )

    scenario = PathScenario(seed=2)
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=CongestionDelayModel(scenario="udp-burst", seed=3),
            loss_model=GilbertElliottLossModel.from_target_rate(0.05, seed=4),
        ),
    )
    observation = scenario.run_batch(batch)
    propagated = time.perf_counter()
    print(f"Propagated across {len(observation.path.hops)} HOPs in {propagated - generated:.2f} s")

    config = HOPConfig(
        sampler=SamplerConfig(sampling_rate=0.01),
        aggregator=AggregatorConfig(expected_aggregate_size=100_000),
    )
    session = VPMSession(
        scenario.path, configs={d.name: config for d in scenario.path.domains}
    )
    session.run(observation)
    collected = time.perf_counter()
    overhead = session.overhead()
    rate = overhead.observed_packets / (collected - propagated)
    print(
        f"Collected receipts for {overhead.observed_packets:,} HOP observations "
        f"in {collected - propagated:.2f} s ({rate:,.0f} packets/s through the collectors)"
    )

    performance = session.estimate("L", "X")
    verification = session.verify("L", "X")
    truth = observation.truth_for("X")
    print(
        f"Domain X: loss {performance.loss_rate * 100:.2f}% estimated vs "
        f"{truth.loss_rate * 100:.2f}% true; receipts consistent: {verification.accepted}"
    )
    print(
        f"Receipt bandwidth overhead: {overhead.bandwidth_overhead * 100:.4f}% "
        f"({overhead.receipt_bytes_per_packet:.3f} B/packet)"
    )
    print(f"Total wall time: {time.perf_counter() - started:.2f} s")


if __name__ == "__main__":
    main()
