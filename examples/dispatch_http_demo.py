#!/usr/bin/env python3
"""Distributed dispatch without a shared mount: the HTTP transport.

The filesystem transport (``repro dispatch --workers N``) assumes every
worker can mount the run directory.  The HTTP transport drops that
assumption: the coordinator serves the versioned dispatch protocol
(``/api/v1/dispatch/<run_id>/…``) and workers need nothing but its URL and
the run id — spec, policy and lease all come from the coordinator's config
endpoint.  This example drives the whole story in one process:

1. starts a commit-only HTTP coordinator (``workers=0``) over a fresh store;
2. plays a *hostile network* against the protocol by hand: a truncated
   upload is rejected by its digest (``400 digest_mismatch``), the intact
   re-upload lands, and an identical duplicate (a retry after a lost
   response) is acknowledged idempotently instead of re-staged;
3. runs mount-less :class:`~repro.dist.HTTPTransport` workers to compute the
   remaining intervals — claims and leases timed on the *coordinator's*
   monotonic clock, so worker clock skew is irrelevant;
4. proves the network changed nothing about the science: the dispatched
   store is **byte-identical** to an uninterrupted single-host run.

The same topology from the shell::

    repro dispatch runs/big --spec campaign.json --transport http --workers 0
    # on each worker host — no mount, no spec file:
    repro dispatch --worker-only --transport http \\
        --coordinator http://coordinator:PORT --run-id big

Run:  python examples/dispatch_http_demo.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

from repro.api import (
    CampaignSpec,
    ConditionSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.dist import DispatchCoordinator, HTTPTransport
from repro.dist.dispatch import DispatchWorker
from repro.dist.net import DIGEST_HEADER, WORKER_HEADER, record_digest
from repro.engine.campaign import CampaignRunner, interval_record
from repro.store import RunStore, stable_json

SPEC = CampaignSpec(
    name="dispatch-http-demo",
    intervals=4,
    cell=ExperimentSpec(
        name="dispatch-http-demo-cell",
        seed=83,
        traffic=TrafficSpec(workload=None, packet_count=1500),
        path=PathSpec(
            conditions={
                "X": ConditionSpec(
                    delay="jitter",
                    delay_params={"base_delay": 1.2e-3, "jitter_std": 0.4e-3},
                ),
            }
        ),
        protocol=ProtocolSpec(
            default=HOPSpec(sampling_rate=0.05, marker_rate=0.005, aggregate_size=800)
        ),
    ),
    sla=SLATargetSpec(delay_bound=5e-3, delay_quantile=0.9, loss_bound=0.05),
)


def upload(base: str, interval: int, body: bytes, digest: str) -> tuple[int, dict]:
    """One raw record upload; 4xx responses return instead of raising."""
    request = urllib.request.Request(
        f"{base}/records/{interval}", data=body, method="PUT"
    )
    request.add_header(WORKER_HEADER, "demo-by-hand")
    request.add_header(DIGEST_HEADER, digest)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-dispatch-http-"))

    # --- 1. a commit-only coordinator serving the dispatch protocol ---------
    store = RunStore.create(root / "dispatched", SPEC)
    coordinator = DispatchCoordinator(store, workers=0, transport="http")
    committer = threading.Thread(target=coordinator.run, daemon=True)
    committer.start()
    base = f"{coordinator.http_url}/api/v1/dispatch/{coordinator.run_id}"
    print(f"coordinator up, dispatch protocol at {base}")

    # --- 2. the hostile network, by hand ------------------------------------
    line = (stable_json(dict(interval_record(SPEC, 0))) + "\n").encode("utf-8")
    digest = record_digest(line)

    status, body = upload(base, 0, line[: len(line) // 2], digest)
    print(f"truncated upload   -> {status} {body['error']['code']} "
          f"(nothing staged; the digest caught it)")

    status, body = upload(base, 0, line, digest)
    print(f"intact re-upload   -> {status} duplicate={body['duplicate']}")

    status, body = upload(base, 0, line, digest)
    print(f"identical retry    -> {status} duplicate={body['duplicate']} "
          f"(byte-asserted, acknowledged, not re-staged)")

    # --- 3. mount-less workers finish the campaign --------------------------
    workers = [
        threading.Thread(
            target=DispatchWorker(
                HTTPTransport(
                    coordinator.http_url, coordinator.run_id, worker_id=f"remote-{i}"
                )
            ).run,
            daemon=True,
        )
        for i in range(2)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=300)
    committer.join(timeout=300)
    assert not committer.is_alive(), "coordinator never finished committing"
    print(f"campaign complete: {SPEC.intervals} intervals committed in order")

    # --- 4. the network perturbed nothing: byte-identity --------------------
    direct = RunStore.create(root / "direct", SPEC)
    CampaignRunner(SPEC, direct).run()
    dispatched = RunStore.open(root / "dispatched")
    assert dispatched.digest() == direct.digest(), (
        "HTTP-dispatched store must be byte-identical to a single-host run"
    )
    assert (
        dispatched.records_path.read_bytes() == direct.records_path.read_bytes()
    )
    print("byte-identity holds: digest-checked uploads, byte-asserted "
          "duplicates and ordered commits leave no trace of the network")


if __name__ == "__main__":
    main()
