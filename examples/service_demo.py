#!/usr/bin/env python3
"""The measurement service end to end: submit over HTTP, poll, audit.

The paper's system is something customers *query* — providers emit receipts,
users check SLA compliance against them.  This example drives that loop
against a real (ephemeral-port) service instance, entirely over HTTP:

1. starts the service — the threaded stdlib WSGI server, a
   :class:`~repro.service.JobQueue` with subprocess workers, one store root;
2. submits a campaign spec as JSON (``POST /api/v1/jobs``) and shows a bad spec
   dying at the door with the validator's message;
3. follows execution live with the ``?since=`` record cursor (the long-poll
   the dashboard uses) as workers commit intervals;
4. reads the machine-readable report (the same bytes as
   ``repro report --json``) and prints the campaign SLA verdicts;
5. proves the service changed nothing about the science: the HTTP-submitted
   store is byte-identical to a direct in-process run of the same spec.

The same service from the shell::

    repro serve --store-root runs      # dashboard at http://127.0.0.1:8642/

Run:  python examples/service_demo.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

from repro.api import (
    CampaignSpec,
    ConditionSpec,
    EstimationSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.engine.campaign import CampaignRunner
from repro.service import JobQueue, ServiceApp, make_service_server
from repro.store import RunStore

SPEC = CampaignSpec(
    name="service-demo",
    intervals=3,
    cell=ExperimentSpec(
        name="service-demo-cell",
        seed=97,
        traffic=TrafficSpec(workload=None, packet_count=1500),
        path=PathSpec(
            conditions={
                "X": ConditionSpec(
                    delay="jitter",
                    delay_params={"base_delay": 1.2e-3, "jitter_std": 0.4e-3},
                    loss="gilbert-elliott-rate",
                    loss_params={"target_rate": 0.02},
                ),
            }
        ),
        protocol=ProtocolSpec(
            default=HOPSpec(sampling_rate=0.05, marker_rate=0.005, aggregate_size=800)
        ),
        estimation=EstimationSpec(observer="S", targets=("X",)),
    ),
    sla=SLATargetSpec(
        delay_bound=5e-3, delay_quantile=0.9, loss_bound=0.05, name="monthly-gold"
    ),
)


def call(base: str, path: str, body: dict | None = None) -> tuple[int, dict]:
    """One API round-trip; 4xx responses return instead of raising."""
    request = urllib.request.Request(
        base + path, method="POST" if body is not None else "GET"
    )
    data = None
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, data=data, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def main() -> None:
    store_root = Path(tempfile.mkdtemp(prefix="repro-service-"))

    # --- 1. the service: WSGI app + job queue on an ephemeral port ----------
    queue = JobQueue(store_root, workers=2, execution="subprocess")
    app = ServiceApp(store_root, queue=queue)
    server = make_service_server("127.0.0.1", 0, app)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"service up at {base} (dashboard at /, API under /api/v1)")

    try:
        # --- 2. submission is validated at the door -------------------------
        broken = SPEC.to_dict()
        broken["intervals"] = 0
        status, body = call(base, "/api/v1/jobs", {"spec": broken})
        print(f"bad spec -> {status}: {body['error']}")

        status, accepted = call(
            base, "/api/v1/jobs", {"spec": SPEC.to_dict(), "run_id": "demo-run"}
        )
        assert status == 202, accepted
        job = accepted["job"]
        print(f"accepted {job['id']} -> run {job['run']!r} "
              f"(store already on disk: the acceptance record)")

        # --- 3. follow committed intervals with the ?since= cursor ----------
        cursor = 0
        while True:
            status, page = call(
                base, f"/api/v1/runs/demo-run/records?since={cursor}&wait=10"
            )
            assert status == 200, page
            for record in page["records"]:
                verdicts = record["verdicts"]["X"]
                print(f"  interval {record['interval']}: receipts "
                      f"{record['receipts_digest'][:12]}…, "
                      f"accepted={verdicts['accepted']}, "
                      f"sla_compliant={verdicts['sla_compliant']}")
            cursor = page["next"]
            if page["complete"]:
                break
        print(f"run complete after {cursor} intervals")

        # --- 4. the machine-readable report ---------------------------------
        status, report = call(base, "/api/v1/runs/demo-run/report")
        assert status == 200 and report["summary_matches_store"] is True
        sla = SPEC.sla
        for domain, entry in sorted(report["summary"]["domains"].items()):
            verdict = "COMPLIANT" if entry["sla_compliant"] else "IN VIOLATION"
            print(f"  {domain}: loss {entry['loss_rate'] * 100:.3f}%, "
                  f"{entry['delay_sample_count']} pooled delay samples, "
                  f"SLA {sla.name!r} -> {verdict}")

        # --- 5. the service perturbed nothing: byte-identity ----------------
        direct = RunStore.create(store_root / "direct", SPEC)
        CampaignRunner(SPEC, direct).run()
        via_http = RunStore.open(store_root / "demo-run")
        assert via_http.digest() == direct.digest(), (
            "HTTP-submitted store must be byte-identical to a direct run"
        )
        print("byte-identity holds: the HTTP path and the library path "
              "produce the same store")
    finally:
        server.shutdown()
        server.server_close()
        queue.shutdown(wait=False)


if __name__ == "__main__":
    main()
