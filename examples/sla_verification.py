#!/usr/bin/env python3
"""SLA verification: the motivating workload of the paper's introduction.

A customer (domain S) buys transit through L, X and N with an SLA promising
"90% of packets within 20 ms and loss below 0.5%".  The customer's users
complain; S collects the VPM receipts it is entitled to and determines *which*
provider violates its SLA — the troubleshooting workflow the paper argues
ISPs would rather support with verifiable receipts than with finger-pointing.

Run:  python examples/sla_verification.py
"""

from __future__ import annotations

from repro.analysis.sla import SLASpec, check_sla
from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPConfig
from repro.core.protocol import VPMSession
from repro.core.sampling import SamplerConfig
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import CongestionDelayModel, JitterDelayModel
from repro.traffic.loss_models import GilbertElliottLossModel
from repro.traffic.workload import make_workload


def main() -> None:
    packets = make_workload("bench-sequence", seed=11).packets()

    # L is healthy, X is congested and lossy, N adds moderate jitter.
    scenario = PathScenario(seed=12)
    scenario.configure_domain(
        "L", SegmentCondition(delay_model=JitterDelayModel(1e-3, 0.2e-3, seed=13))
    )
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=CongestionDelayModel(scenario="udp-burst", utilization=1.1, seed=14),
            loss_model=GilbertElliottLossModel.from_target_rate(0.03, seed=15),
        ),
    )
    scenario.configure_domain(
        "N", SegmentCondition(delay_model=JitterDelayModel(2e-3, 0.5e-3, seed=16))
    )
    observation = scenario.run(packets)

    config = HOPConfig(
        sampler=SamplerConfig(sampling_rate=0.02),
        aggregator=AggregatorConfig(expected_aggregate_size=2000),
    )
    session = VPMSession(scenario.path, configs={d.name: config for d in scenario.path.domains})
    session.run(observation)

    sla = SLASpec(delay_bound=20e-3, delay_quantile=0.9, loss_bound=0.005, name="transit-gold")
    print(f"Checking SLA {sla.name!r}: p90 delay <= {sla.delay_bound * 1e3:.0f} ms, "
          f"loss <= {sla.loss_bound * 100:.2f}%\n")

    verifier = session.verifier_for("S")
    for provider in ("L", "X", "N"):
        performance = verifier.estimate_domain(provider)
        verdict = check_sla(performance, sla)
        verification = verifier.verify_domain(provider)
        status = "COMPLIANT" if verdict.compliant else "IN VIOLATION"
        trust = "receipts verified" if verification.accepted else "receipts INCONSISTENT"
        truth = observation.truth_for(provider)
        print(f"Domain {provider}: {status} ({trust})")
        print(
            f"  measured: p90 = {verdict.measured_delay * 1e3:6.2f} ms, "
            f"loss = {verdict.measured_loss * 100:5.2f}%   "
            f"(true: p90 = {truth.delay_quantiles([0.9])[0.9] * 1e3:6.2f} ms, "
            f"loss = {truth.loss_rate * 100:5.2f}%)"
        )
    print("\nThe customer can now take the violation report to the offending "
          "provider; the receipts of every on-path domain back the claim.")


if __name__ == "__main__":
    main()
