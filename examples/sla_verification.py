#!/usr/bin/env python3
"""SLA verification: the motivating workload of the paper's introduction.

A customer (domain S) buys transit through L, X and N with an SLA promising
"90% of packets within 20 ms and loss below 0.5%".  The customer's users
complain; S collects the VPM receipts it is entitled to and determines *which*
provider violates its SLA — the troubleshooting workflow the paper argues
ISPs would rather support with verifiable receipts than with finger-pointing.

The whole experiment is one declarative ``repro.api`` spec: the traffic, the
three providers' conditions, the protocol knobs and the estimation question
(S estimating and verifying L, X and N) are data, and ``Experiment.run()``
executes the cell on the vectorized batch path.

Run:  python examples/sla_verification.py
"""

from __future__ import annotations

from repro.analysis.sla import SLASpec, check_sla
from repro.api import (
    ConditionSpec,
    EstimationSpec,
    Experiment,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    TrafficSpec,
)

SPEC = ExperimentSpec(
    name="sla-verification",
    seed=11,
    traffic=TrafficSpec(workload="bench-sequence"),
    path=PathSpec(
        conditions={
            # L is healthy, X is congested and lossy, N adds moderate jitter.
            "L": ConditionSpec(
                delay="jitter", delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3}
            ),
            "X": ConditionSpec(
                delay="congestion",
                delay_params={"scenario": "udp-burst", "utilization": 1.1},
                loss="gilbert-elliott-rate",
                loss_params={"target_rate": 0.03},
            ),
            "N": ConditionSpec(
                delay="jitter", delay_params={"base_delay": 2e-3, "jitter_std": 0.5e-3}
            ),
        }
    ),
    protocol=ProtocolSpec(default=HOPSpec(sampling_rate=0.02, aggregate_size=2000)),
    estimation=EstimationSpec(observer="S", targets=("L", "X", "N")),
)


def main() -> None:
    sla = SLASpec(delay_bound=20e-3, delay_quantile=0.9, loss_bound=0.005, name="transit-gold")
    print(f"Checking SLA {sla.name!r}: p90 delay <= {sla.delay_bound * 1e3:.0f} ms, "
          f"loss <= {sla.loss_bound * 100:.2f}%\n")

    cell = Experiment(SPEC).run()

    for provider in ("L", "X", "N"):
        target = cell.target(provider)
        verdict = check_sla(target.estimate.to_performance(), sla)
        status = "COMPLIANT" if verdict.compliant else "IN VIOLATION"
        trust = (
            "receipts verified"
            if target.verification.accepted
            else "receipts INCONSISTENT"
        )
        print(f"Domain {provider}: {status} ({trust})")
        print(
            f"  measured: p90 = {verdict.measured_delay * 1e3:6.2f} ms, "
            f"loss = {verdict.measured_loss * 100:5.2f}%   "
            f"(true: p90 = {target.truth.delay_quantile(0.9) * 1e3:6.2f} ms, "
            f"loss = {target.truth.loss_rate * 100:5.2f}%)"
        )
    print("\nThe customer can now take the violation report to the offending "
          "provider; the receipts of every on-path domain back the claim.")


if __name__ == "__main__":
    main()
