#!/usr/bin/env python3
"""Exploring the resource/quality trade-off (the paper's tunability property).

A domain chooses its sampling rate and aggregation granularity according to
the resources it wants to spend.  This example sweeps both knobs for domain X
and prints the resulting estimation quality (delay accuracy, loss granularity)
against the resources consumed (receipt bytes, buffer occupancy) — the local
decision surface an operator deploying VPM would look at.

Run:  python examples/tunability_tradeoff.py
"""

from __future__ import annotations

from repro.analysis.metrics import delay_accuracy_report
from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPConfig
from repro.core.protocol import VPMSession
from repro.core.sampling import SamplerConfig
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import CongestionDelayModel
from repro.traffic.loss_models import GilbertElliottLossModel
from repro.traffic.workload import make_workload


def run_operating_point(path, observation, truth, sampling_rate: float, aggregate_size: int):
    config = HOPConfig(
        sampler=SamplerConfig(sampling_rate=sampling_rate),
        aggregator=AggregatorConfig(expected_aggregate_size=aggregate_size,
                                    reorder_window=0.001),
    )
    session = VPMSession(path, configs={d.name: config for d in path.domains})
    session.run(observation)
    performance = session.estimate("L", "X")
    overhead = session.overhead()
    accuracy_ms = float("nan")
    if performance.delay_quantiles:
        accuracy_ms = delay_accuracy_report(
            performance, truth, quantiles=(0.5, 0.9, 0.95)
        ).max_error_ms
    return {
        "sampling": sampling_rate,
        "aggregate": aggregate_size,
        "samples": performance.delay_sample_count,
        "accuracy_ms": accuracy_ms,
        "granularity_ms": performance.mean_loss_granularity * 1e3,
        "bytes_per_pkt": overhead.receipt_bytes_per_packet,
        "buffer_pkts": overhead.max_temp_buffer_packets,
    }


def main() -> None:
    packets = make_workload("bench-sequence", seed=31).packets()
    scenario = PathScenario(seed=32)
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=CongestionDelayModel(scenario="udp-burst", seed=33),
            loss_model=GilbertElliottLossModel.from_target_rate(0.1, seed=34),
        ),
    )
    observation = scenario.run(packets)
    truth = observation.truth_for("X")
    path = scenario.path

    print("sampling  agg size  samples  delay acc   loss granule  receipt B/pkt  buffer pkts")
    print("-" * 88)
    for sampling_rate in (0.05, 0.01, 0.001):
        for aggregate_size in (1000, 5000, 20000):
            point = run_operating_point(path, observation, truth, sampling_rate, aggregate_size)
            print(
                f"{point['sampling'] * 100:6.1f}%  {point['aggregate']:8d}  "
                f"{point['samples']:7d}  {point['accuracy_ms']:7.2f} ms  "
                f"{point['granularity_ms']:9.1f} ms  {point['bytes_per_pkt']:13.3f}  "
                f"{point['buffer_pkts']:11d}"
            )
    print("\nEach row is a valid operating point: the domain picks one unilaterally, "
          "and the verifiability of its receipts is unaffected (only their precision).")


if __name__ == "__main__":
    main()
