#!/usr/bin/env python3
"""Exploring the resource/quality trade-off (the paper's tunability property).

A domain chooses its sampling rate and aggregation granularity according to
the resources it wants to spend.  This example sweeps both knobs for the
whole path and prints the resulting estimation quality (delay accuracy, loss
granularity) against the resources consumed (receipt bytes, buffer occupancy)
— the local decision surface an operator deploying VPM would look at.

The sweep is one ``Experiment.sweep()`` call over a declarative grid: each
(sampling rate × aggregate size) cell is an independent, fully seeded
experiment, so the grid could equally run with ``workers=4`` on a process
pool and produce byte-identical results.

Run:  python examples/tunability_tradeoff.py
"""

from __future__ import annotations

from repro.api import (
    ConditionSpec,
    EstimationSpec,
    Experiment,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    TrafficSpec,
)

SAMPLING_RATES = (0.05, 0.01, 0.001)
AGGREGATE_SIZES = (1000, 5000, 20000)
ACCURACY_QUANTILES = (0.5, 0.9, 0.95)

BASE_SPEC = ExperimentSpec(
    name="tunability",
    seed=31,
    traffic=TrafficSpec(workload="bench-sequence"),
    path=PathSpec(
        conditions={
            "X": ConditionSpec(
                delay="congestion",
                delay_params={"scenario": "udp-burst"},
                loss="gilbert-elliott-rate",
                loss_params={"target_rate": 0.1},
            )
        }
    ),
    protocol=ProtocolSpec(default=HOPSpec(reorder_window=0.001)),
    estimation=EstimationSpec(
        observer="L", targets=("X",), quantiles=ACCURACY_QUANTILES,
        verify=False, independent=False,
    ),
)


def main() -> None:
    sweep = Experiment(BASE_SPEC).sweep({
        "protocol.default.sampling_rate": SAMPLING_RATES,
        "protocol.default.aggregate_size": AGGREGATE_SIZES,
    })

    print("sampling  agg size  samples  delay acc   loss granule  receipt B/pkt  buffer pkts")
    print("-" * 88)
    for point in sweep:
        cell = point.result
        target = cell.target("X")
        accuracy_ms = (
            target.delay_accuracy(ACCURACY_QUANTILES) * 1e3
            if target.estimate.has_delay_estimates
            else float("nan")
        )
        print(
            f"{point.overrides['protocol.default.sampling_rate'] * 100:6.1f}%  "
            f"{point.overrides['protocol.default.aggregate_size']:8d}  "
            f"{target.estimate.delay_sample_count:7d}  {accuracy_ms:7.2f} ms  "
            f"{target.estimate.mean_loss_granularity * 1e3:9.1f} ms  "
            f"{cell.overhead.receipt_bytes_per_packet:13.3f}  "
            f"{cell.overhead.max_temp_buffer_packets:11d}"
        )
    print("\nEach row is a valid operating point: the domain picks one unilaterally, "
          "and the verifiability of its receipts is unaffected (only their precision).")


if __name__ == "__main__":
    main()
