#!/usr/bin/env python3
"""Detecting a lying domain (and what collusion costs the accomplice).

Domain X drops 20% of the traffic and delays the rest by 15 ms, but fabricates
its egress receipts to claim everything was delivered promptly.  The example
shows the three outcomes the paper's verifiability analysis predicts:

1. with honest neighbors, the lie produces receipt inconsistencies on the
   X -> N link, so X is exposed to the very neighbor it implicated;
2. the verifier can re-derive X's real performance from its neighbors'
   receipts alone, so the lie does not even improve what careful customers see;
3. if N colludes and covers the lie, the X -> N link looks clean again — but
   the missing packets now appear to be lost inside N, so the colluder absorbs
   the blame (and the pair's combined reputation is unchanged).

Run:  python examples/lying_domain_detection.py
"""

from __future__ import annotations

from repro.adversary.collusion import ColludingDomainAgent
from repro.adversary.lying import LyingDomainAgent
from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPConfig
from repro.core.protocol import VPMSession
from repro.core.sampling import SamplerConfig
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import ConstantDelayModel
from repro.traffic.loss_models import BernoulliLossModel
from repro.traffic.workload import make_workload


CONFIG = HOPConfig(
    sampler=SamplerConfig(sampling_rate=0.02),
    aggregator=AggregatorConfig(expected_aggregate_size=2000),
)


def describe(session: VPMSession, label: str, observation) -> None:
    verifier = session.verifier_for("L")
    findings = verifier.check_consistency()
    x_claimed = verifier.estimate_domain("X")
    x_independent = verifier.estimate_domain_via_neighbors("X")
    n_claimed = verifier.estimate_domain("N")
    truth = observation.truth_for("X")

    print(f"\n=== {label} ===")
    print(f"  true X performance:        loss {truth.loss_rate * 100:5.2f}%, "
          f"p90 delay {truth.delay_quantiles([0.9])[0.9] * 1e3:6.2f} ms")
    print(f"  X according to X:          loss {x_claimed.loss_rate * 100:5.2f}%, "
          f"p90 delay {x_claimed.delay_quantile(0.9) * 1e3 if x_claimed.delay_quantiles else float('nan'):6.2f} ms")
    if x_independent is not None and x_independent.delay_quantiles:
        print(f"  X according to neighbors:  loss {x_independent.loss_rate * 100:5.2f}%, "
              f"p90 delay {x_independent.delay_quantile(0.9) * 1e3:6.2f} ms")
    print(f"  N according to N:          loss {n_claimed.loss_rate * 100:5.2f}%")
    print(f"  receipt inconsistencies:   {len(findings)}")
    for finding in findings[:3]:
        print(f"    - {finding}")
    if len(findings) > 3:
        print(f"    ... and {len(findings) - 3} more")


def main() -> None:
    packets = make_workload("bench-sequence", seed=21).packets()
    scenario = PathScenario(seed=22)
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=ConstantDelayModel(15e-3),
            loss_model=BernoulliLossModel(0.2, seed=23),
        ),
    )
    observation = scenario.run(packets)
    path = scenario.path
    configs = {d.name: CONFIG for d in path.domains}

    # 1. Everyone honest.
    honest = VPMSession(path, configs=configs)
    honest.run(observation)
    describe(honest, "Everyone honest", observation)

    # 2. X lies, neighbors honest.
    liar = LyingDomainAgent("X", path, config=CONFIG, claimed_delay=0.5e-3)
    lying = VPMSession(path, configs=configs, agents={"X": liar})
    lying.run(observation)
    describe(lying, "X fabricates its egress receipts", observation)

    # 3. X lies and N covers for it.
    liar2 = LyingDomainAgent("X", path, config=CONFIG, claimed_delay=0.5e-3)
    colluder = ColludingDomainAgent("N", path, colluding_with=liar2, config=CONFIG)
    colluding = VPMSession(path, configs=configs, agents={"X": liar2, "N": colluder})
    colluding.run(observation)
    describe(colluding, "X lies and N covers the lie (collusion)", observation)

    print("\nTakeaway: lying either exposes the liar to its neighbor or forces the "
          "accomplice to absorb the loss — exactly the incentive structure of Section 3.1.")


if __name__ == "__main__":
    main()
