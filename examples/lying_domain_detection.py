#!/usr/bin/env python3
"""Detecting a lying domain (and what collusion costs the accomplice).

Domain X drops 20% of the traffic and delays the rest by 15 ms, but fabricates
its egress receipts to claim everything was delivered promptly.  The example
shows the three outcomes the paper's verifiability analysis predicts:

1. with honest neighbors, the lie produces receipt inconsistencies on the
   X -> N link, so X is exposed to the very neighbor it implicated;
2. the verifier can re-derive X's real performance from its neighbors'
   receipts alone, so the lie does not even improve what careful customers see;
3. if N colludes and covers the lie, the X -> N link looks clean again — but
   the missing packets now appear to be lost inside N, so the colluder absorbs
   the blame (and the pair's combined reputation is unchanged).

The three scenarios are three ``repro.api`` specs that differ only in their
``adversaries`` tuple — the traffic, conditions and protocol knobs are shared,
so the comparison is apples to apples by construction.

Run:  python examples/lying_domain_detection.py
"""

from __future__ import annotations

import dataclasses

from repro.api import (
    AdversarySpec,
    CellResult,
    ConditionSpec,
    EstimationSpec,
    Experiment,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    TrafficSpec,
)

HONEST_SPEC = ExperimentSpec(
    name="everyone-honest",
    seed=21,
    traffic=TrafficSpec(workload="bench-sequence"),
    path=PathSpec(
        conditions={
            "X": ConditionSpec(
                delay="constant", delay_params={"delay": 15e-3},
                loss="bernoulli", loss_params={"loss_rate": 0.2},
            )
        }
    ),
    protocol=ProtocolSpec(default=HOPSpec(sampling_rate=0.02, aggregate_size=2000)),
    estimation=EstimationSpec(observer="L", targets=("X", "N")),
)

LYING_SPEC = dataclasses.replace(
    HONEST_SPEC,
    name="x-lies",
    adversaries=(
        AdversarySpec(kind="lying", domain="X", params={"claimed_delay": 0.5e-3}),
    ),
)

COLLUDING_SPEC = dataclasses.replace(
    HONEST_SPEC,
    name="x-lies-n-covers",
    adversaries=(
        AdversarySpec(kind="lying", domain="X", params={"claimed_delay": 0.5e-3}),
        AdversarySpec(kind="colluding", domain="N", params={"colluding_with": "X"}),
    ),
)


def describe(label: str, cell: CellResult) -> None:
    x = cell.target("X")
    n = cell.target("N")

    print(f"\n=== {label} ===")
    print(f"  true X performance:        loss {x.truth.loss_rate * 100:5.2f}%, "
          f"p90 delay {x.truth.delay_quantile(0.9) * 1e3:6.2f} ms")
    claimed_q90 = (
        x.estimate.delay_quantile(0.9) * 1e3
        if x.estimate.has_delay_estimates
        else float("nan")
    )
    print(f"  X according to X:          loss {x.estimate.loss_rate * 100:5.2f}%, "
          f"p90 delay {claimed_q90:6.2f} ms")
    if x.independent is not None and x.independent.has_delay_estimates:
        print(f"  X according to neighbors:  loss {x.independent.loss_rate * 100:5.2f}%, "
              f"p90 delay {x.independent.delay_quantile(0.9) * 1e3:6.2f} ms")
    print(f"  N according to N:          loss {n.estimate.loss_rate * 100:5.2f}%")
    print(f"  receipt inconsistencies:   {cell.consistency_findings}")
    if x.verification is not None and not x.verification.accepted:
        print(f"    X's links flagged: {', '.join(x.verification.kinds)}")


def main() -> None:
    for label, spec in (
        ("Everyone honest", HONEST_SPEC),
        ("X fabricates its egress receipts", LYING_SPEC),
        ("X lies and N covers the lie (collusion)", COLLUDING_SPEC),
    ):
        describe(label, Experiment(spec).run())

    print("\nTakeaway: lying either exposes the liar to its neighbor or forces the "
          "accomplice to absorb the loss — exactly the incentive structure of Section 3.1.")


if __name__ == "__main__":
    main()
