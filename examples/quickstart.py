#!/usr/bin/env python3
"""Quickstart: estimate and verify a congested domain's performance with VPM.

This walks the full pipeline on the paper's running example (Figure 1):

1. synthesize a packet sequence between a source and destination prefix;
2. drive it across the path S -> L -> X -> N -> D, with domain X congested by
   a bursty UDP flow and losing ~10% of the traffic;
3. let every domain run VPM at its hand-off points and publish receipts;
4. as domain L (X's upstream neighbor), estimate X's delay quantiles and loss
   from the receipts, verify them for consistency, and compare against the
   simulation's ground truth.

This walkthrough wires the engine layer by hand to show every moving part;
``examples/declarative_sweep.py`` runs the same kind of cell in a few lines
through the declarative ``repro.api`` front door.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPConfig
from repro.core.protocol import VPMSession
from repro.core.sampling import SamplerConfig
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import CongestionDelayModel
from repro.traffic.loss_models import GilbertElliottLossModel
from repro.traffic.workload import make_workload


def main() -> None:
    # 1. Traffic: ~0.3 s of a 100k packet-per-second path (scaled down from
    #    the paper's trace; see DESIGN.md for the substitution rationale).
    #    The columnar batch drives the vectorized fast path end to end; see
    #    examples/batch_throughput.py for the same pipeline at millions of
    #    packets per run.
    batch = make_workload("bench-sequence", seed=1).packet_batch()
    print(f"Generated {len(batch)} packets "
          f"({batch.send_time[-1] - batch.send_time[0]:.2f} s of traffic)")

    # 2. The Figure-1 path with domain X congested.
    scenario = PathScenario(seed=2)
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=CongestionDelayModel(scenario="udp-burst", seed=3),
            loss_model=GilbertElliottLossModel.from_target_rate(0.10, seed=4),
        ),
    )
    observation = scenario.run_batch(batch)
    truth = observation.truth_for("X")

    # 3. Every domain deploys VPM: 1% delay sampling, 5000-packet aggregates.
    #    (A single HOPConfig applies to every domain on the path; pass a
    #    {domain: config} mapping for per-domain knobs or partial deployment.)
    config = HOPConfig(
        sampler=SamplerConfig(sampling_rate=0.01),
        aggregator=AggregatorConfig(expected_aggregate_size=5000),
    )
    session = VPMSession(scenario.path, configs=config)
    session.run(observation)

    # 4. Domain L estimates and verifies X.
    performance = session.estimate("L", "X")
    verification = session.verify("L", "X")

    print("\n--- Domain X, as estimated by domain L from receipts ---")
    for quantile, estimate in sorted(performance.delay_quantiles.items()):
        true_value = truth.delay_quantiles([quantile])[quantile]
        print(
            f"  delay p{int(quantile * 100):2d}: "
            f"{estimate.estimate * 1e3:6.2f} ms "
            f"[{estimate.lower * 1e3:6.2f}, {estimate.upper * 1e3:6.2f}]   "
            f"(true {true_value * 1e3:6.2f} ms)"
        )
    print(f"  matched delay samples: {performance.delay_sample_count}")
    print(
        f"  loss: {performance.loss_rate * 100:.2f}% computed vs "
        f"{truth.loss_rate * 100:.2f}% true, over "
        f"{performance.mean_loss_granularity * 1e3:.0f} ms granules"
    )
    print(f"  receipts consistent: {verification.accepted}")

    overhead = session.overhead()
    print("\n--- Resource overhead of this measurement interval ---")
    print(f"  receipt bytes per observed packet: {overhead.receipt_bytes_per_packet:.3f}")
    print(f"  bandwidth overhead: {overhead.bandwidth_overhead * 100:.4f}%")
    print(f"  peak temporary-buffer occupancy: {overhead.max_temp_buffer_packets} packets")


if __name__ == "__main__":
    main()
