#!/usr/bin/env python3
"""Triangulating a lying domain across the paths of a mesh.

Single-path verification has a fundamental limit (Section 4): a receipt
inconsistency on a link only exposes a *pair* — either endpoint domain may be
lying, or the link itself may be faulty.  The rest of the world cannot tell
which.

A mesh changes that.  Here the transit core ``X`` carries three paths
(``S1→X→D1``, ``S2→X→D2``, ``S3→X→D3``), drops 20% of every path's traffic,
delays the rest by 15 ms, and fabricates its egress receipts to claim all was
well — once per path.  Each path's verifier flags only the pair (X, Di); but
the three pairs share exactly one member, so cross-path triangulation
(:func:`repro.analysis.localization.triangulate_suspects`) narrows the
exposure to X alone — something no single path can do.

The whole mesh is one declarative :class:`repro.api.MeshSpec`; flip the
``adversaries`` tuple off to see the honest baseline.

Run:  python examples/mesh_localization.py
"""

from __future__ import annotations

import dataclasses

from repro.api import (
    AdversarySpec,
    ConditionSpec,
    Experiment,
    MeshResult,
    MeshSpec,
    TopologySpec,
    TrafficSpec,
)

HONEST_SPEC = MeshSpec(
    name="mesh-honest-core",
    seed=33,
    topology=TopologySpec(kind="star", params={"path_count": 3}, seed=0),
    traffic=TrafficSpec(workload="smoke-sequence", packet_count=4000),
    conditions={
        "X": ConditionSpec(
            delay="constant", delay_params={"delay": 15e-3},
            loss="bernoulli", loss_params={"loss_rate": 0.2},
        )
    },
)

LYING_SPEC = dataclasses.replace(
    HONEST_SPEC,
    name="mesh-lying-core",
    adversaries=(
        AdversarySpec(kind="lying", domain="X", params={"claimed_delay": 0.5e-3}),
    ),
)


def describe(label: str, result: MeshResult) -> None:
    print(f"\n=== {label} ===")
    for path in result.paths:
        x = path.target("X")
        claimed_q90 = (
            f"{x.estimate.delay_quantile(0.9) * 1e3:6.2f} ms"
            if x.estimate.has_delay_estimates
            else "   n/a"
        )
        suspects = (
            ", ".join(f"({a} | {b})" for a, b in path.suspect_links) or "none"
        )
        print(
            f"  {path.pair}: true loss {x.truth.loss_rate * 100:5.2f}%, "
            f"X claims loss {x.estimate.loss_rate * 100:5.2f}% / p90 {claimed_q90}; "
            f"suspect pairs: {suspects}"
        )
    exposed = result.triangulation.exposed_domains
    print(f"  triangulation verdict: {', '.join(exposed) if exposed else 'nobody exposed'}")


def main() -> None:
    describe("Everyone honest", Experiment(HONEST_SPEC).run())

    result = Experiment(LYING_SPEC).run()
    describe("X fabricates its egress receipts on every path", result)

    implication = next(
        entry
        for entry in result.triangulation.implications
        if entry["domain"] == "X"
    )
    print(
        f"\nEach path alone could only expose a (X | neighbor) pair; across "
        f"{len(implication['paths'])} paths X was paired with "
        f"{', '.join(implication['partners'])} — the only common member is X, "
        f"so the mesh pins the lie on X itself."
    )


if __name__ == "__main__":
    main()
