#!/usr/bin/env python3
"""A multi-interval measurement campaign with fault localization.

SLAs are written over long horizons ("loss below 0.1% per month"), while VPM
receipts are produced per reporting period.  This example runs a campaign of
several measurement intervals against a provider path, accumulates the
receipts into campaign-level statistics, checks the campaign against the SLA,
and uses the localization helper to name the offending provider and any link
whose receipts disagreed.

The path conditions, protocol knobs and measurement question live in one
declarative ``repro.api`` spec; ``Experiment.campaign()`` materializes the
:class:`~repro.core.campaign.MeasurementCampaign` and
``Experiment.interval_packets()`` derives seed-spaced per-interval traffic.

Run:  python examples/measurement_campaign.py
"""

from __future__ import annotations

from repro.analysis.localization import localize_performance
from repro.analysis.sla import SLASpec
from repro.api import (
    ConditionSpec,
    EstimationSpec,
    Experiment,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    TrafficSpec,
)
from repro.core.protocol import VPMSession

INTERVALS = 4

SPEC = ExperimentSpec(
    name="monthly-campaign",
    seed=42,
    traffic=TrafficSpec(workload=None, packet_count=8000, packets_per_second=100_000.0),
    path=PathSpec(
        conditions={
            # Provider X is congested and lossy; L and N are healthy.
            "L": ConditionSpec(
                delay="jitter", delay_params={"base_delay": 0.5e-3, "jitter_std": 0.1e-3}
            ),
            "X": ConditionSpec(
                delay="congestion",
                delay_params={"scenario": "udp-burst"},
                loss="gilbert-elliott-rate",
                loss_params={"target_rate": 0.02},
            ),
            "N": ConditionSpec(
                delay="jitter", delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3}
            ),
        }
    ),
    protocol=ProtocolSpec(default=HOPSpec(sampling_rate=0.02, aggregate_size=2000)),
    estimation=EstimationSpec(observer="S", targets=("X",)),
)


def main() -> None:
    experiment = Experiment(SPEC)
    campaign = experiment.campaign()
    traces = experiment.interval_packets(INTERVALS)
    result = campaign.run(traces)

    sla = SLASpec(delay_bound=15e-3, delay_quantile=0.9, loss_bound=0.005, name="monthly-gold")
    verdict = result.check_sla(sla)
    pooled = result.pooled_delay_quantiles()

    print(f"Campaign over {result.interval_count} intervals "
          f"({result.total_offered_packets} packets offered to X)")
    print(f"  pooled p90 delay: {pooled[0.9] * 1e3:.2f} ms")
    print(f"  campaign loss:    {result.loss_rate * 100:.3f}%")
    print(f"  receipts accepted in {result.acceptance_rate * 100:.0f}% of intervals")
    print(f"  SLA {sla.name!r}: {'COMPLIANT' if verdict.compliant else 'IN VIOLATION'}")

    print("\nPer-interval history:")
    for interval in result.intervals:
        q90 = (
            interval.performance.delay_quantile(0.9) * 1e3
            if interval.performance.delay_quantiles
            else float("nan")
        )
        print(
            f"  interval {interval.index}: p90 {q90:6.2f} ms, "
            f"loss {interval.performance.loss_rate * 100:5.2f}%, "
            f"{'ok' if interval.accepted else 'INCONSISTENT'}"
        )

    # Localize: run one extra diagnostic interval through the path diagnosis.
    # (The campaign's scenario persists across intervals, so this drives the
    # engine layer directly with the spec-built components.)
    scenario = campaign.scenario
    observation = scenario.run(experiment.interval_packets(1, first=INTERVALS)[0])
    session = VPMSession(scenario.path, configs=campaign.configs)
    session.run(observation)
    diagnosis = localize_performance(session.verifier_for("S"), sla=sla)
    print("\nLocalization (diagnostic interval):")
    for entry in diagnosis.domains:
        marker = " <-- violating" if entry.violating else ""
        print(
            f"  {entry.domain}: delay share {entry.delay_share * 100:5.1f}%, "
            f"loss share {entry.loss_share * 100:5.1f}%{marker}"
        )
    if diagnosis.suspects:
        for suspect in diagnosis.suspects:
            print(f"  suspect link: {suspect.upstream_domain} -> {suspect.downstream_domain} "
                  f"({', '.join(suspect.finding_kinds)})")
    else:
        print("  no inconsistent links — all receipts mutually consistent")


if __name__ == "__main__":
    main()
