#!/usr/bin/env python3
"""A multi-interval measurement campaign with fault localization.

SLAs are written over long horizons ("loss below 0.1% per month"), while VPM
receipts are produced per reporting period.  This example runs a campaign of
several measurement intervals against a provider path, accumulates the
receipts into campaign-level statistics, checks the campaign against the SLA,
and uses the localization helper to name the offending provider and any link
whose receipts disagreed.

Run:  python examples/measurement_campaign.py
"""

from __future__ import annotations

from repro.analysis.localization import localize_performance
from repro.analysis.sla import SLASpec
from repro.core.aggregation import AggregatorConfig
from repro.core.campaign import MeasurementCampaign
from repro.core.hop import HOPConfig
from repro.core.protocol import VPMSession
from repro.core.sampling import SamplerConfig
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import CongestionDelayModel, JitterDelayModel
from repro.traffic.flows import FlowGeneratorConfig
from repro.traffic.loss_models import GilbertElliottLossModel
from repro.traffic.trace import SyntheticTrace, TraceConfig, default_prefix_pair


CONFIG = HOPConfig(
    sampler=SamplerConfig(sampling_rate=0.02),
    aggregator=AggregatorConfig(expected_aggregate_size=2000),
)
INTERVALS = 4
PACKETS_PER_INTERVAL = 8000


def interval_traces():
    """One synthetic trace segment per measurement interval."""
    pair = default_prefix_pair()
    for index in range(INTERVALS):
        config = TraceConfig(
            packet_count=PACKETS_PER_INTERVAL,
            packets_per_second=100_000.0,
            flow_config=FlowGeneratorConfig(),
        )
        yield SyntheticTrace(config=config, prefix_pair=pair, seed=500 + index).packets()


def main() -> None:
    # Provider X is congested and lossy; L and N are healthy.
    scenario = PathScenario(seed=42)
    scenario.configure_domain(
        "L", SegmentCondition(delay_model=JitterDelayModel(0.5e-3, 0.1e-3, seed=43))
    )
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=CongestionDelayModel(scenario="udp-burst", seed=44),
            loss_model=GilbertElliottLossModel.from_target_rate(0.02, seed=45),
        ),
    )
    scenario.configure_domain(
        "N", SegmentCondition(delay_model=JitterDelayModel(1e-3, 0.2e-3, seed=46))
    )

    campaign = MeasurementCampaign(
        scenario,
        target="X",
        observer="S",
        configs={d.name: CONFIG for d in scenario.path.domains},
    )
    result = campaign.run(list(interval_traces()))

    sla = SLASpec(delay_bound=15e-3, delay_quantile=0.9, loss_bound=0.005, name="monthly-gold")
    verdict = result.check_sla(sla)
    pooled = result.pooled_delay_quantiles()

    print(f"Campaign over {result.interval_count} intervals "
          f"({result.total_offered_packets} packets offered to X)")
    print(f"  pooled p90 delay: {pooled[0.9] * 1e3:.2f} ms")
    print(f"  campaign loss:    {result.loss_rate * 100:.3f}%")
    print(f"  receipts accepted in {result.acceptance_rate * 100:.0f}% of intervals")
    print(f"  SLA {sla.name!r}: {'COMPLIANT' if verdict.compliant else 'IN VIOLATION'}")

    print("\nPer-interval history:")
    for interval in result.intervals:
        q90 = (
            interval.performance.delay_quantile(0.9) * 1e3
            if interval.performance.delay_quantiles
            else float("nan")
        )
        print(
            f"  interval {interval.index}: p90 {q90:6.2f} ms, "
            f"loss {interval.performance.loss_rate * 100:5.2f}%, "
            f"{'ok' if interval.accepted else 'INCONSISTENT'}"
        )

    # Localize: re-run a single interval's receipts through the path diagnosis.
    packets = next(iter(interval_traces()))
    observation = scenario.run(packets)
    session = VPMSession(
        scenario.path, configs={d.name: CONFIG for d in scenario.path.domains}
    )
    session.run(observation)
    diagnosis = localize_performance(session.verifier_for("S"), sla=sla)
    print("\nLocalization (last interval):")
    for entry in diagnosis.domains:
        marker = " <-- violating" if entry.violating else ""
        print(
            f"  {entry.domain}: delay share {entry.delay_share * 100:5.1f}%, "
            f"loss share {entry.loss_share * 100:5.1f}%{marker}"
        )
    if diagnosis.suspects:
        for suspect in diagnosis.suspects:
            print(f"  suspect link: {suspect.upstream_domain} -> {suspect.downstream_domain} "
                  f"({', '.join(suspect.finding_kinds)})")
    else:
        print("  no inconsistent links — all receipts mutually consistent")


if __name__ == "__main__":
    main()
