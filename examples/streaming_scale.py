#!/usr/bin/env python3
"""Drive a 10M-packet VPM run in bounded memory with the streaming engine.

The batch engine materializes every HOP's whole observation stream — at ten
million packets that is multiple gigabytes.  The streaming engine
(``Experiment.run(engine="streaming")``) drives the identical simulation
chunk-by-chunk: memory stays bounded by the chunk size plus the packets in
flight inside delay/reorder holdback windows (plus the ground-truth delay
record, one float per delivered packet per domain), and the results are
byte-identical to the batch engine.

With ``--shards N`` the chunk range additionally splits across a process
pool; per-shard collector states are merged exactly, so receipts stay
byte-identical to the single-process run.  Shard speedup is reported as
measured — it requires actual cores (each shard replays the sequential
propagation prefix but splits the collector work, so on a single-CPU box
sharding only adds overhead).

Run:  python examples/streaming_scale.py [--packets N] [--shards N]
      [--chunk-size N] [--profile-out FILE] [--verify]

``--verify`` additionally runs the batch engine on a 200k-packet slice of
the same scenario and asserts byte-identical results for every engine
configuration (the conformance suite does this exhaustively on small
scenarios; here it is a smoke check at scale).
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import time

from repro.api import ExperimentSpec
from repro.api.runner import run_cell
from repro.api.spec import ConditionSpec, HOPSpec, PathSpec, ProtocolSpec, TrafficSpec


def max_rss_mb() -> float:
    """Peak resident set size of this process, in MB (Linux ru_maxrss is KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1e3


def scale_spec(packet_count: int) -> ExperimentSpec:
    """The scenario: jittery delay plus bursty loss in X, paper-scale knobs.

    Aggregates of 100k packets (the paper's evaluation choice) and 0.5%
    sampling keep receipt state proportional to the *receipts*, not the
    packets, which is what lets collector state stay small at 10M packets.
    """
    return ExperimentSpec(
        name="streaming-scale",
        seed=7,
        traffic=TrafficSpec(
            workload=None, packet_count=packet_count, payload_bytes=8
        ),
        path=PathSpec(
            conditions={
                "X": ConditionSpec(
                    delay="jitter",
                    delay_params={"base_delay": 1.0e-3, "jitter_std": 0.5e-3},
                    loss="gilbert-elliott-rate",
                    loss_params={"target_rate": 0.02},
                )
            }
        ),
        protocol=ProtocolSpec(
            default=HOPSpec(sampling_rate=0.005, aggregate_size=100_000)
        ),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=10_000_000)
    parser.add_argument(
        "--shards", type=int, default=min(4, os.cpu_count() or 1),
        help="process-parallel shards (default: min(4, cpu count))",
    )
    parser.add_argument("--chunk-size", type=int, default=1 << 17)
    parser.add_argument("--profile-out", type=str, default=None,
                        help="write a JSON memory/throughput profile here")
    parser.add_argument("--verify", action="store_true",
                        help="cross-check engines on a 200k-packet slice first")
    args = parser.parse_args()

    profile: dict = {
        "packets": args.packets,
        "chunk_size": args.chunk_size,
        "cpu_count": os.cpu_count(),
        "baseline_rss_mb": max_rss_mb(),
    }

    if args.verify:
        small = scale_spec(200_000)
        reference = run_cell(small, engine="batch").to_json()
        for shards in (1, 4):
            streamed = run_cell(
                small, engine="streaming", shards=shards, chunk_size=50_000
            ).to_json()
            assert streamed == reference, f"engine mismatch at shards={shards}"
        print("verify: batch == streaming(shards=1) == streaming(shards=4) "
              "on 200k packets (byte-identical results)")

    spec = scale_spec(args.packets)
    print(f"\nStreaming {args.packets:,} packets "
          f"(chunk={args.chunk_size:,}, single process) ...")
    started = time.perf_counter()
    result = run_cell(spec, engine="streaming", chunk_size=args.chunk_size)
    elapsed = time.perf_counter() - started
    rss = max_rss_mb()
    throughput = args.packets / elapsed
    print(f"  {elapsed:.1f} s  ->  {throughput/1e3:,.0f}k packets/s, "
          f"peak RSS {rss:.0f} MB")
    profile["streaming"] = {
        "seconds": elapsed, "packets_per_second": throughput, "peak_rss_mb": rss
    }

    target = result.target("X")
    print(f"  X loss: estimated {target.estimate.loss_rate:.4f} "
          f"vs true {target.truth.loss_rate:.4f}; "
          f"median delay estimated {target.estimate.delay_quantile(0.5)*1e3:.3f} ms "
          f"vs true {target.truth.delay_quantile(0.5)*1e3:.3f} ms; "
          f"verification accepted: {target.verification.accepted}")

    if args.shards > 1:
        print(f"\nStreaming with shards={args.shards} "
              f"(collector work split across processes) ...")
        started = time.perf_counter()
        run_cell(
            spec, engine="streaming", shards=args.shards, chunk_size=args.chunk_size
        )
        sharded_elapsed = time.perf_counter() - started
        speedup = elapsed / sharded_elapsed
        print(f"  {sharded_elapsed:.1f} s  ->  speedup {speedup:.2f}x over "
              f"single-process streaming on {os.cpu_count()} CPU core(s)")
        if (os.cpu_count() or 1) < args.shards:
            print("  (shards exceed available cores: each shard replays the "
                  "sequential propagation prefix, so speedup needs real cores)")
        profile["sharded"] = {
            "shards": args.shards,
            "seconds": sharded_elapsed,
            "speedup_vs_single_process": speedup,
        }

    if args.profile_out:
        with open(args.profile_out, "w") as handle:
            json.dump(profile, handle, indent=2, sort_keys=True)
        print(f"\nProfile written to {args.profile_out}")


if __name__ == "__main__":
    main()
