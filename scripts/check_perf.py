#!/usr/bin/env python3
"""Perf-regression guard: measure engine throughput against checked-in floors.

Runs four quick probes:

* the **batch** engine on a fixed 300k-packet cell (jitter delay + bursty
  loss in X, paper-scale aggregation knobs),
* the **streaming** engine (same cell, chunked execution), plus the same
  streaming cell under ``shards=2`` (seek-dispatched worker processes) —
  reported as ``streaming_shard2`` together with its speedup ratio over
  ``shards=1``; the per-shard floor and the ``min_shard2_speedup`` ratio are
  enforced only on hosts with >= 2 CPUs (on a single core the ratio is
  physically unreachable and is reported unenforced),
* the **mesh** runner on a 4-path star mesh (60k packets per path, shared
  transit core, per-path verification + triangulation) — throughput counted
  over the total packets of all paths, and
* the **campaign** runner on a 4-interval checkpointed campaign (60k packets
  per interval into a scratch run store — per-interval stats folding,
  receipt digests and atomic checkpoint writes included in the measurement),
* the **sketch memory** probe: a 200-interval campaign in sketch estimation
  mode plus a variant carrying 8x the samples per interval — the committed
  record bytes must stay under ``max_sketch_record_bytes`` *and* must not
  grow with the per-interval sample count (ratio ceiling
  ``max_sketch_record_scale_ratio``), which is the O(sketch)-bytes-per-
  interval contract sketch mode exists for (the exact-mode bytes at the
  same scale are measured alongside for contrast, unenforced);

then compares packets/second against ``benchmarks/perf_thresholds.json``.
A probe fails when it runs more than ``regression_tolerance`` (25%) below its
threshold — i.e. the thresholds are floors already discounted for CI-runner
variance, and the tolerance is the maximum further regression we accept
before failing the build.

Exit status 1 on regression.  ``--json FILE`` writes the measurements (for
the CI artifact); ``--calibrate`` prints suggested thresholds (60% of the
local measurement) instead of checking.

Usage:  PYTHONPATH=src python scripts/check_perf.py [--json FILE] [--calibrate]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import ExperimentSpec  # noqa: E402
from repro.api.runner import clear_trace_cache, run_cell, run_mesh_cell  # noqa: E402
from repro.api.spec import (  # noqa: E402
    CampaignSpec,
    ConditionSpec,
    HOPSpec,
    MeshSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TopologySpec,
    TrafficSpec,
)
from repro.engine.campaign import CampaignRunner  # noqa: E402
from repro.store import RunStore  # noqa: E402

THRESHOLDS_PATH = REPO_ROOT / "benchmarks" / "perf_thresholds.json"
PACKETS = 300_000
MESH_PATHS = 4
MESH_PACKETS_PER_PATH = 60_000
CAMPAIGN_INTERVALS = 4
CAMPAIGN_PACKETS_PER_INTERVAL = 60_000
STREAMING_CHUNK = 1 << 16
ENGINES = ("batch", "streaming", "streaming_shard2", "mesh", "campaign")
SKETCH_INTERVALS = 200
SKETCH_PACKETS_PER_INTERVAL = 600
SKETCH_SCALE_FACTOR = 8
SKETCH_SCALE_INTERVALS = 20


def probe_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="perf-probe",
        seed=99,
        traffic=TrafficSpec(workload=None, packet_count=PACKETS, payload_bytes=8),
        path=PathSpec(
            conditions={
                "X": ConditionSpec(
                    delay="jitter",
                    delay_params={"base_delay": 1.0e-3, "jitter_std": 0.5e-3},
                    loss="gilbert-elliott-rate",
                    loss_params={"target_rate": 0.02},
                )
            }
        ),
        protocol=ProtocolSpec(
            default=HOPSpec(sampling_rate=0.005, aggregate_size=100_000)
        ),
    )


def mesh_probe_spec() -> MeshSpec:
    return MeshSpec(
        name="mesh-perf-probe",
        seed=99,
        topology=TopologySpec(kind="star", params={"path_count": MESH_PATHS}, seed=0),
        traffic=TrafficSpec(
            workload=None, packet_count=MESH_PACKETS_PER_PATH, payload_bytes=8
        ),
        conditions={
            "X": ConditionSpec(
                delay="jitter",
                delay_params={"base_delay": 1.0e-3, "jitter_std": 0.5e-3},
                loss="gilbert-elliott-rate",
                loss_params={"target_rate": 0.02},
            )
        },
        protocol=ProtocolSpec(
            default=HOPSpec(sampling_rate=0.005, aggregate_size=50_000)
        ),
    )


def campaign_probe_spec() -> CampaignSpec:
    cell = probe_spec()
    # Same conditions as the single-cell probe, scaled to the per-interval
    # packet budget; the campaign probe therefore measures the checkpointing
    # machinery (record building, receipt digests, atomic store writes, the
    # mergeable pooled-quantile fold) on top of known engine throughput.
    cell = cell.with_overrides(
        {"name": "campaign-perf-probe", "traffic.packet_count": CAMPAIGN_PACKETS_PER_INTERVAL}
    )
    return CampaignSpec(
        name="campaign-perf-probe",
        intervals=CAMPAIGN_INTERVALS,
        cell=cell,
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.1),
    )


def sketch_probe_spec(intervals: int, packets: int, mode: str) -> CampaignSpec:
    # Dense sampling so every interval pools a meaningful number of matched
    # delays (the record-size probe is about sample volume, not throughput).
    cell = probe_spec().with_overrides(
        {
            "name": f"sketch-perf-probe-{mode}",
            "traffic.packet_count": packets,
            "protocol.default.sampling_rate": 0.5,
            "protocol.default.aggregate_size": 200,
        }
    )
    if mode == "sketch":
        cell = cell.with_overrides({"estimation.mode": "sketch"})
    return CampaignSpec(
        name=f"sketch-perf-probe-{mode}",
        intervals=intervals,
        cell=cell,
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.1),
    )


def _record_bytes(intervals: int, packets: int, mode: str) -> tuple[int, float]:
    """(max, mean) committed record-line bytes of one campaign run."""
    with tempfile.TemporaryDirectory(prefix="repro-perf-sketch-") as scratch:
        spec = sketch_probe_spec(intervals, packets, mode)
        store = RunStore.create(Path(scratch) / "run", spec)
        CampaignRunner(spec, store).run()
        lines = (store.path / "records.jsonl").read_bytes().splitlines()
    assert len(lines) == intervals
    sizes = [len(line) for line in lines]
    return max(sizes), sum(sizes) / len(sizes)


def measure() -> dict[str, float]:
    spec = probe_spec()
    measurements: dict[str, float] = {}
    for engine in ("batch", "streaming"):
        clear_trace_cache()  # charge traffic synthesis to every engine equally
        started = time.perf_counter()
        run_cell(spec, engine=engine, chunk_size=STREAMING_CHUNK if engine == "streaming" else None)
        elapsed = time.perf_counter() - started
        measurements[f"{engine}_packets_per_second"] = PACKETS / elapsed
        measurements[f"{engine}_seconds"] = elapsed

    # Same streaming cell split across two seek-dispatched worker processes;
    # the ratio over shards=1 is the parallel-efficiency measurement the
    # perf guard enforces on multi-core hosts.
    clear_trace_cache()
    started = time.perf_counter()
    run_cell(spec, engine="streaming", chunk_size=STREAMING_CHUNK, shards=2)
    elapsed = time.perf_counter() - started
    measurements["streaming_shard2_packets_per_second"] = PACKETS / elapsed
    measurements["streaming_shard2_seconds"] = elapsed
    measurements["shard2_speedup"] = (
        measurements["streaming_shard2_packets_per_second"]
        / measurements["streaming_packets_per_second"]
    )

    started = time.perf_counter()
    run_mesh_cell(mesh_probe_spec(), engine="batch")
    elapsed = time.perf_counter() - started
    measurements["mesh_packets_per_second"] = (
        MESH_PATHS * MESH_PACKETS_PER_PATH / elapsed
    )
    measurements["mesh_seconds"] = elapsed

    clear_trace_cache()
    with tempfile.TemporaryDirectory(prefix="repro-perf-campaign-") as scratch:
        store = RunStore.create(Path(scratch) / "run", campaign_probe_spec())
        started = time.perf_counter()
        CampaignRunner(campaign_probe_spec(), store).run()
        elapsed = time.perf_counter() - started
    measurements["campaign_packets_per_second"] = (
        CAMPAIGN_INTERVALS * CAMPAIGN_PACKETS_PER_INTERVAL / elapsed
    )
    measurements["campaign_seconds"] = elapsed

    # Sketch memory probe: committed bytes per interval must not scale with
    # the per-interval sample count.  Record sizes are deterministic, so no
    # variance tolerance applies.
    clear_trace_cache()
    started = time.perf_counter()
    sketch_max, sketch_mean = _record_bytes(
        SKETCH_INTERVALS, SKETCH_PACKETS_PER_INTERVAL, "sketch"
    )
    scaled_max, _ = _record_bytes(
        SKETCH_SCALE_INTERVALS,
        SKETCH_PACKETS_PER_INTERVAL * SKETCH_SCALE_FACTOR,
        "sketch",
    )
    exact_scaled_max, _ = _record_bytes(
        SKETCH_SCALE_INTERVALS,
        SKETCH_PACKETS_PER_INTERVAL * SKETCH_SCALE_FACTOR,
        "exact",
    )
    measurements["sketch_probe_seconds"] = time.perf_counter() - started
    measurements["sketch_record_bytes_max"] = float(sketch_max)
    measurements["sketch_record_bytes_mean"] = sketch_mean
    measurements["sketch_scaled_record_bytes_max"] = float(scaled_max)
    measurements["sketch_record_scale_ratio"] = scaled_max / sketch_max
    measurements["exact_scaled_record_bytes_max"] = float(exact_scaled_max)
    return measurements


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=str, default=None)
    parser.add_argument("--calibrate", action="store_true")
    args = parser.parse_args()

    measurements = measure()
    for key, value in sorted(measurements.items()):
        if key.endswith("packets_per_second"):
            print(f"{key}: {value/1e3:,.0f}k pkts/s")

    if args.json:
        Path(args.json).write_text(json.dumps(measurements, indent=2, sort_keys=True))

    if args.calibrate:
        suggested = {
            "regression_tolerance": 0.25,
            "thresholds_packets_per_second": {
                engine: round(measurements[f"{engine}_packets_per_second"] * 0.6)
                for engine in ENGINES
            },
            "max_sketch_record_bytes": round(
                measurements["sketch_record_bytes_max"] * 1.5
            ),
            "max_sketch_record_scale_ratio": 1.25,
        }
        print("suggested thresholds:")
        print(json.dumps(suggested, indent=2, sort_keys=True))
        return 0

    config = json.loads(THRESHOLDS_PATH.read_text())
    tolerance = float(config["regression_tolerance"])
    multicore = (os.cpu_count() or 1) >= 2
    failed = False
    for engine, floor in config["thresholds_packets_per_second"].items():
        if engine == "streaming_shard2" and not multicore:
            print("streaming_shard2: floor not enforced (single-CPU host)")
            continue
        measured = measurements[f"{engine}_packets_per_second"]
        minimum = floor * (1.0 - tolerance)
        status = "ok" if measured >= minimum else "REGRESSION"
        print(
            f"{engine}: measured {measured/1e3:,.0f}k pkts/s, "
            f"floor {floor/1e3:,.0f}k (fail under {minimum/1e3:,.0f}k) -> {status}"
        )
        failed |= measured < minimum

    min_speedup = float(config.get("min_shard2_speedup", 0.0))
    if min_speedup:
        speedup = measurements["shard2_speedup"]
        if multicore:
            status = "ok" if speedup >= min_speedup else "REGRESSION"
            print(
                f"shard2 parallel efficiency: {speedup:.2f}x over shards=1 "
                f"(floor {min_speedup:.2f}x) -> {status}"
            )
            failed |= speedup < min_speedup
        else:
            print(
                f"shard2 parallel efficiency: {speedup:.2f}x over shards=1 "
                f"(not enforced on a single-CPU host)"
            )

    byte_ceiling = float(config.get("max_sketch_record_bytes", 0.0))
    if byte_ceiling:
        worst = max(
            measurements["sketch_record_bytes_max"],
            measurements["sketch_scaled_record_bytes_max"],
        )
        status = "ok" if worst <= byte_ceiling else "REGRESSION"
        print(
            f"sketch record bytes: max {worst:,.0f} over "
            f"{SKETCH_INTERVALS}-interval + {SKETCH_SCALE_FACTOR}x-sample "
            f"probes (ceiling {byte_ceiling:,.0f}, exact-mode at the same "
            f"scale {measurements['exact_scaled_record_bytes_max']:,.0f}) "
            f"-> {status}"
        )
        failed |= worst > byte_ceiling
    ratio_ceiling = float(config.get("max_sketch_record_scale_ratio", 0.0))
    if ratio_ceiling:
        ratio = measurements["sketch_record_scale_ratio"]
        status = "ok" if ratio <= ratio_ceiling else "REGRESSION"
        print(
            f"sketch record scaling: {SKETCH_SCALE_FACTOR}x samples/interval "
            f"-> {ratio:.2f}x record bytes (ceiling {ratio_ceiling:.2f}x) "
            f"-> {status}"
        )
        failed |= ratio > ratio_ceiling
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
