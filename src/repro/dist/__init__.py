"""Distributed campaign dispatch across worker processes and hosts.

See :mod:`repro.dist.dispatch` for the coordinator/worker protocol and the
transport interface, :mod:`repro.dist.claims` for the file-based lease board
(shared-filesystem transport), and :mod:`repro.dist.net` for the HTTP
transport (coordinator-clock leases, digest-checked uploads, no shared
mount).
"""

from repro.dist.claims import Claim, ClaimBoard, LeaseRenewer
from repro.dist.dispatch import (
    DISPATCH_DIR,
    ChaosSchedule,
    DispatchCoordinator,
    DispatchError,
    DispatchTransport,
    DispatchWorker,
    FilesystemTransport,
    StagingArea,
    dispatch_campaign,
    validate_dispatch_policy,
)
from repro.dist.net import (
    DispatchHub,
    HTTPTransport,
    NetworkClaimBoard,
    ProtocolError,
    TransportError,
)

__all__ = [
    "DISPATCH_DIR",
    "ChaosSchedule",
    "Claim",
    "ClaimBoard",
    "DispatchCoordinator",
    "DispatchError",
    "DispatchHub",
    "DispatchTransport",
    "DispatchWorker",
    "FilesystemTransport",
    "HTTPTransport",
    "LeaseRenewer",
    "NetworkClaimBoard",
    "ProtocolError",
    "StagingArea",
    "TransportError",
    "dispatch_campaign",
    "validate_dispatch_policy",
]
