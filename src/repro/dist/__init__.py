"""Distributed campaign dispatch across worker processes and hosts.

See :mod:`repro.dist.dispatch` for the coordinator/worker protocol and
:mod:`repro.dist.claims` for the lease-based claim board.
"""

from repro.dist.claims import Claim, ClaimBoard, LeaseRenewer
from repro.dist.dispatch import (
    DISPATCH_DIR,
    ChaosSchedule,
    DispatchCoordinator,
    DispatchError,
    DispatchWorker,
    StagingArea,
    dispatch_campaign,
    validate_dispatch_policy,
)

__all__ = [
    "DISPATCH_DIR",
    "ChaosSchedule",
    "Claim",
    "ClaimBoard",
    "DispatchCoordinator",
    "DispatchError",
    "DispatchWorker",
    "LeaseRenewer",
    "StagingArea",
    "dispatch_campaign",
    "validate_dispatch_policy",
]
