"""Network transport for distributed dispatch (no shared filesystem).

This module is both halves of the HTTP dispatch protocol the service layer
exposes under ``/api/v1/dispatch/<run_id>/…``:

* **Coordinator side** — :class:`NetworkClaimBoard` arbitrates interval
  leases entirely on the coordinator's **monotonic clock** (workers' clocks
  never enter expiry decisions, so cross-host skew cannot corrupt a lease),
  and :class:`DispatchHub` is the per-run request brain: it answers
  claim/renew/release/upload with the exact same invariants the filesystem
  transport enforces — uploads are digest-verified over the received bytes,
  staged exactly as received (never re-serialized), and duplicates are
  **byte-asserted** against the staged or committed record rather than
  silently dropped.
* **Worker side** — :class:`HTTPTransport` implements
  :class:`~repro.dist.dispatch.DispatchTransport` over :mod:`urllib`.  It
  learns the spec, execution policy and lease from the coordinator's config
  endpoint (a remote worker needs nothing but the URL and run id), retries
  transient failures (connection errors, timeouts, 5xx) with exponential
  backoff, and re-uploads idempotently — a duplicate upload after a lost
  response is a byte-compare on the coordinator, not a second commit.

Protocol (all under ``/api/v1/dispatch/<run_id>``; worker identity travels
in the ``X-Repro-Worker`` header):

========  ======================  ==============================================
Method    Path                    Meaning
========  ======================  ==============================================
GET       ``/``                   live status; ``?config=true`` adds spec/policy
POST      ``/claims/<i>``         acquire the lease on interval ``i``
POST      ``/claims/<i>/renew``   heartbeat the lease
DELETE    ``/claims/<i>``         release the lease
PUT       ``/records/<i>``        upload the record line; ``X-Repro-Digest``
                                  carries ``sha256:<hex>`` over the raw body
========  ======================  ==============================================

Protocol errors ride the service's JSON envelope with machine-readable
codes: ``claim_held`` (409, someone else owns the lease), ``interval_done``
/ ``interval_staged`` (409, nothing left to compute), ``not_holder`` (409,
renew/upload without the lease — benign, the work still lands),
``digest_mismatch`` (400, truncated/corrupt body — retryable),
``record_divergence`` (409, determinism violated — fatal, never retried).
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Mapping

from repro.api.spec import CampaignSpec, ExecutionPolicy
from repro.dist.claims import Claim
from repro.dist.dispatch import (
    DispatchError,
    DispatchTransport,
    StagingArea,
    _committed_count,
    committed_line,
    default_worker_id,
    validate_dispatch_policy,
)
from repro.store import RunStore, stable_json

__all__ = [
    "DispatchHub",
    "HTTPTransport",
    "NetworkClaimBoard",
    "ProtocolError",
    "TransportError",
    "record_digest",
]

#: HTTP statuses a worker retries (the coordinator never emits these for
#: protocol-level rejections, which are 4xx/409).
RETRYABLE_STATUSES = frozenset({500, 502, 503, 504})

DIGEST_HEADER = "X-Repro-Digest"
WORKER_HEADER = "X-Repro-Worker"


class TransportError(DispatchError):
    """The coordinator could not be reached (after retries)."""


class ProtocolError(DispatchError):
    """The coordinator answered with a protocol rejection.

    Carries the HTTP ``status``, the machine-readable ``code`` from the
    error envelope, and the optional structured ``detail`` — enough for a
    transport to decide between retry, ignore, and abort.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.detail = dict(detail) if detail is not None else None


def record_digest(line: bytes) -> str:
    """The content digest the upload protocol uses: ``sha256:<hex>``."""
    return f"sha256:{hashlib.sha256(line).hexdigest()}"


class NetworkClaimBoard:
    """Interval leases arbitrated on one process-local monotonic clock.

    The HTTP analogue of :class:`~repro.dist.claims.ClaimBoard`: claims live
    in coordinator memory, deadlines are minted and compared on the
    coordinator's ``time.monotonic()`` — the **only** clock in lease
    arbitration, which is what makes the network transport clock-skew-proof.
    A claim lost to a coordinator restart is equivalent to an expired lease:
    the interval is simply re-claimed and recomputed, and determinism plus
    the byte-asserted duplicate path make the re-execution safe.

    ``clock`` is injectable for tests; it must be monotonic.
    """

    def __init__(
        self, lease: float = 30.0, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if lease <= 0:
            raise ValueError(f"lease must be > 0 seconds, got {lease}")
        self.lease = lease
        self.clock = clock
        self._lock = threading.Lock()
        self._claims: dict[int, Claim] = {}

    def try_claim(self, interval: int, worker: str) -> tuple[bool, Claim]:
        """Grant ``worker`` the lease on ``interval`` if free or expired.

        Returns ``(granted, claim)`` — on refusal ``claim`` is the live
        competing claim (so the coordinator can report who holds it and for
        how long).  Re-claiming an interval this worker already holds just
        renews the lease.
        """
        now = self.clock()
        with self._lock:
            existing = self._claims.get(interval)
            if (
                existing is not None
                and existing.worker != worker
                and not existing.expired(now)
            ):
                return False, existing
            claim = Claim(
                interval=interval, worker=worker, expires_at=now + self.lease
            )
            self._claims[interval] = claim
            return True, claim

    def renew(self, interval: int, worker: str) -> bool:
        """Extend ``worker``'s lease; False when another worker holds it.

        An expired-but-unclaimed lease revives on renew: the owner is still
        alive (it just heartbeat late), and nobody else has taken over.
        """
        now = self.clock()
        with self._lock:
            existing = self._claims.get(interval)
            if (
                existing is not None
                and existing.worker != worker
                and not existing.expired(now)
            ):
                return False
            self._claims[interval] = Claim(
                interval=interval, worker=worker, expires_at=now + self.lease
            )
            return True

    def release(self, interval: int, worker: str | None = None) -> None:
        """Drop the claim on ``interval``.

        With ``worker`` given, only that worker's claim is dropped (a
        straggler must not release a takeover's live lease).  Without it the
        release is unconditional — the coordinator's commit path clears the
        claim whoever holds it.
        """
        with self._lock:
            existing = self._claims.get(interval)
            if existing is None:
                return
            if worker is not None and existing.worker != worker:
                return
            del self._claims[interval]

    def holder(self, interval: int) -> Claim | None:
        """The live claim on ``interval``, or None (expired counts as none)."""
        now = self.clock()
        with self._lock:
            existing = self._claims.get(interval)
            if existing is None or existing.expired(now):
                return None
            return existing

    def claims(self) -> dict[int, Claim]:
        """Every live claim (expired ones are purged as a side effect)."""
        now = self.clock()
        with self._lock:
            self._claims = {
                interval: claim
                for interval, claim in self._claims.items()
                if not claim.expired(now)
            }
            return dict(self._claims)


class DispatchHub:
    """One run's coordinator-side dispatch state behind the HTTP endpoints.

    The hub owns nothing the filesystem protocol doesn't already have — it
    reuses the run's :class:`~repro.dist.dispatch.StagingArea` as the
    reorder buffer and a :class:`NetworkClaimBoard` for leases — so the
    coordinator's commit loop (:meth:`DispatchCoordinator._commit_ready`)
    drains HTTP-delivered records exactly as it drains filesystem-staged
    ones, and the committed store stays byte-identical either way.
    """

    def __init__(
        self,
        store: RunStore,
        policy: ExecutionPolicy | None,
        claims: NetworkClaimBoard,
        staging: StagingArea,
    ) -> None:
        self.store = store
        self.spec = store.spec()
        self.policy = validate_dispatch_policy(self.spec, policy)
        self.claims = claims
        self.staging = staging
        self._lock = threading.Lock()

    # -- read endpoints ----------------------------------------------------------------

    def config(self) -> dict[str, Any]:
        """Everything a mount-less worker needs to start computing."""
        return {
            "spec": self.spec.to_dict(),
            "spec_hash": self.store.spec_hash,
            "policy": self.policy.to_dict(),
            "lease": self.claims.lease,
            "intervals": self.spec.intervals,
        }

    def status(self) -> dict[str, Any]:
        """Live progress: committed prefix, staged set, held claims."""
        now = self.claims.clock()
        committed = _committed_count(self.store)
        return {
            "intervals": self.spec.intervals,
            "committed": committed,
            "complete": committed >= self.spec.intervals,
            "staged": sorted(self.staging.staged()),
            "claims": [
                {
                    "interval": claim.interval,
                    "worker": claim.worker,
                    "expires_in": max(0.0, claim.expires_at - now),
                }
                for claim in self.claims.claims().values()
            ],
            "lease": self.claims.lease,
        }

    # -- claim endpoints ---------------------------------------------------------------

    def _check_open(self, interval: int) -> None:
        if not 0 <= interval < self.spec.intervals:
            raise ProtocolError(
                404,
                "no_such_interval",
                f"interval {interval} outside [0, {self.spec.intervals})",
            )
        if interval < _committed_count(self.store):
            raise ProtocolError(
                409, "interval_done", f"interval {interval} is already committed"
            )

    def claim(self, interval: int, worker: str) -> dict[str, Any]:
        self._check_open(interval)
        if interval in self.staging.staged():
            raise ProtocolError(
                409,
                "interval_staged",
                f"interval {interval} is already staged for commit",
            )
        granted, claim = self.claims.try_claim(interval, worker)
        if not granted:
            raise ProtocolError(
                409,
                "claim_held",
                f"interval {interval} is leased to {claim.worker!r}",
                detail={
                    "worker": claim.worker,
                    "expires_in": max(0.0, claim.expires_at - self.claims.clock()),
                },
            )
        return {
            "interval": interval,
            "worker": worker,
            "lease": self.claims.lease,
        }

    def renew(self, interval: int, worker: str) -> dict[str, Any]:
        self._check_open(interval)
        if not self.claims.renew(interval, worker):
            raise ProtocolError(
                409,
                "not_holder",
                f"interval {interval} is no longer leased to {worker!r}",
            )
        return {"interval": interval, "worker": worker, "lease": self.claims.lease}

    def release(self, interval: int, worker: str) -> dict[str, Any]:
        self.claims.release(interval, worker)
        return {"interval": interval, "released": True}

    # -- upload ------------------------------------------------------------------------

    def upload(
        self, interval: int, payload: bytes, digest: str | None, worker: str
    ) -> dict[str, Any]:
        """Verify and stage one uploaded record line.

        The digest is computed over the raw received bytes, so a truncated
        or corrupted body is rejected *before* any byte-assert can fire —
        the worker retries the upload, nothing was staged.  Duplicates
        (already staged, already committed) byte-assert against the existing
        record: identical bytes are acknowledged as ``duplicate: true``,
        divergent bytes are a fatal ``record_divergence``.
        """
        if not 0 <= interval < self.spec.intervals:
            raise ProtocolError(
                404,
                "no_such_interval",
                f"interval {interval} outside [0, {self.spec.intervals})",
            )
        if digest is None:
            raise ProtocolError(
                400,
                "missing_digest",
                f"upload requires a {DIGEST_HEADER} header (sha256:<hex>)",
            )
        expected = record_digest(payload)
        if digest != expected:
            raise ProtocolError(
                400,
                "digest_mismatch",
                f"body digest {expected} does not match declared {digest}; "
                f"the upload was truncated or corrupted in transit — retry",
                detail={"declared": digest, "computed": expected},
            )
        line = self._validate_line(interval, payload)
        with self._lock:
            if interval < _committed_count(self.store):
                if line != committed_line(self.store, interval):
                    raise ProtocolError(
                        409,
                        "record_divergence",
                        f"re-executed interval {interval} disagrees with its "
                        f"committed record; interval records must be pure "
                        f"functions of (spec, interval)",
                    )
                return {"interval": interval, "duplicate": True, "committed": True}
            try:
                fresh = self.staging.stage_line(interval, line, worker=worker)
            except DispatchError as exc:
                raise ProtocolError(409, "record_divergence", str(exc)) from exc
        self.claims.release(interval, worker)
        return {"interval": interval, "duplicate": not fresh, "committed": False}

    def _validate_line(self, interval: int, payload: bytes) -> bytes:
        """Check the upload is one stable-JSON record line for ``interval``."""
        try:
            record = json.loads(payload)
        except (ValueError, UnicodeDecodeError):
            raise ProtocolError(
                400, "malformed_record", "upload body is not a JSON record"
            ) from None
        if not isinstance(record, dict):
            raise ProtocolError(
                400, "malformed_record", "upload body must be a JSON object"
            )
        if record.get("interval") != interval:
            raise ProtocolError(
                400,
                "malformed_record",
                f"record says interval {record.get('interval')!r}, "
                f"URL says {interval}",
            )
        canonical = (stable_json(record) + "\n").encode("utf-8")
        if payload not in (canonical, canonical[:-1]):
            raise ProtocolError(
                400,
                "malformed_record",
                "upload body is not in stable JSON form (sorted keys, "
                "compact separators)",
            )
        return canonical


class HTTPTransport(DispatchTransport):
    """Worker-side :class:`~repro.dist.dispatch.DispatchTransport` over HTTP.

    Construction fetches the coordinator's config endpoint, so ``spec``,
    ``policy`` and ``lease`` are the coordinator's own — a worker needs no
    filesystem access and takes no policy knobs.  Transient failures
    (connection refused, timeouts, 5xx) retry with exponential backoff up to
    ``retries`` attempts; protocol rejections (4xx/409) never retry except
    ``digest_mismatch``, which indicates a corrupted upload body rather than
    a protocol violation.
    """

    def __init__(
        self,
        coordinator_url: str,
        run_id: str,
        worker_id: str | None = None,
        timeout: float = 10.0,
        retries: int = 6,
        backoff: float = 0.25,
        max_backoff: float = 4.0,
    ) -> None:
        self.coordinator_url = coordinator_url.rstrip("/")
        self.run_id = run_id
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._base = f"{self.coordinator_url}/api/v1/dispatch/{self.run_id}"
        self._last_complete = False
        config = self._request("GET", "?config=true")
        self.spec = CampaignSpec.from_dict(config["spec"])
        self.policy = ExecutionPolicy.from_dict(config["policy"])
        self.lease = float(config["lease"])

    # -- HTTP plumbing -----------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: Mapping[str, str] | None = None,
        retry_digest_mismatch: bool = False,
    ) -> dict[str, Any]:
        """One protocol request with transient-failure retry/backoff.

        Raises :class:`ProtocolError` on a 4xx/409 envelope (never retried,
        except ``digest_mismatch`` when the caller opts in) and
        :class:`TransportError` when the coordinator stays unreachable.
        """
        url = self._base + path
        last_error: Exception | None = None
        for attempt in range(self.retries):
            if attempt:
                time.sleep(min(self.max_backoff, self.backoff * 2 ** (attempt - 1)))
            request = urllib.request.Request(url, data=body, method=method)
            request.add_header(WORKER_HEADER, self.worker_id)
            for name, value in (headers or {}).items():
                request.add_header(name, value)
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                    return json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                payload = self._error_payload(exc)
                if exc.code in RETRYABLE_STATUSES:
                    last_error = exc
                    continue
                error = ProtocolError(
                    exc.code,
                    payload.get("code", "error"),
                    payload.get("message", f"HTTP {exc.code}"),
                    detail=payload.get("detail"),
                )
                if retry_digest_mismatch and error.code == "digest_mismatch":
                    last_error = error
                    continue
                raise error from None
            except (
                urllib.error.URLError,
                http.client.HTTPException,
                ConnectionError,
                TimeoutError,
                OSError,
            ) as exc:
                last_error = exc
                continue
        raise TransportError(
            f"coordinator {self.coordinator_url} unreachable after "
            f"{self.retries} attempts ({method} {path}): {last_error}"
        )

    @staticmethod
    def _error_payload(exc: urllib.error.HTTPError) -> dict[str, Any]:
        try:
            envelope = json.loads(exc.read())
            error = envelope.get("error")
            if isinstance(error, dict):
                return error
        except (ValueError, OSError):
            pass
        return {}

    # -- DispatchTransport -------------------------------------------------------------

    def pending(self) -> list[int]:
        """Committed/staged-free intervals from the coordinator's status.

        Once the coordinator has reported the run complete, a later
        unreachable coordinator (it shut down after committing everything)
        reads as "nothing pending" instead of an error — the normal end of a
        worker's life.
        """
        try:
            status = self._request("GET", "")
        except TransportError:
            if self._last_complete:
                return []
            raise
        self._last_complete = bool(status.get("complete"))
        if self._last_complete:
            return []
        committed = int(status["committed"])
        staged = set(status.get("staged", []))
        return [
            interval
            for interval in range(committed, int(status["intervals"]))
            if interval not in staged
        ]

    def try_claim(self, interval: int) -> bool:
        try:
            self._request("POST", f"/claims/{interval}")
        except ProtocolError:
            # claim_held / interval_done / interval_staged: someone else got
            # there first; the scan moves on.
            return False
        return True

    def renew(self, interval: int) -> None:
        # Heartbeats are best-effort: a lost renew at worst lets the lease
        # lapse, and re-execution is safe by construction.
        try:
            self._request("POST", f"/claims/{interval}/renew")
        except DispatchError:
            pass

    def release(self, interval: int) -> None:
        try:
            self._request("DELETE", f"/claims/{interval}")
        except DispatchError:
            pass

    def deliver(self, interval: int, record: Mapping[str, Any]) -> bool:
        """Upload the record line; idempotent, digest-checked, byte-asserted."""
        line = (stable_json(dict(record)) + "\n").encode("utf-8")
        try:
            payload = self._request(
                "PUT",
                f"/records/{interval}",
                body=line,
                headers={
                    DIGEST_HEADER: record_digest(line),
                    "Content-Type": "application/json",
                },
                retry_digest_mismatch=True,
            )
        except ProtocolError as exc:
            if exc.code == "record_divergence":
                raise
            if exc.code == "interval_done":
                # Committed while we were uploading — a benign duplicate.
                return False
            raise
        return not payload.get("duplicate", False)

    def close(self) -> None:
        pass
