"""Lease-based interval claims for distributed campaign dispatch.

A :class:`ClaimBoard` coordinates *which worker is computing which interval*
through plain files on the filesystem the run store lives on — the same
shared directory remote hosts already mount to reach the store, so no extra
transport is needed.  One claim file per interval, JSON, atomically replaced:

* **Claiming** is an ``O_CREAT | O_EXCL`` create — exactly one worker wins a
  fresh interval.
* **Leases expire.** A claim carries ``expires_at`` (wall clock, renewed by a
  background heartbeat while the owner computes); a claim past its expiry is
  up for **takeover** via an atomic replace.  That is the straggler/crash
  re-execution path: a SIGKILLed worker's claim goes stale after one lease
  and any idle worker re-claims the interval.
* **Takeover races are benign by design.**  Two workers that both observe an
  expired lease may both replace it and both compute the interval.  Interval
  ``i`` is a pure function of ``(spec, i)``, so the duplicate results are
  byte-identical — the staging layer *asserts* that identity before dropping
  the duplicate rather than trusting it.  The claim board therefore only has
  to make double-execution rare, never impossible.

**Clock contract.**  A lease deadline only means something relative to the
clock that minted it.  This file-based board is the *shared-filesystem*
transport: every participant writes and reads ``expires_at`` as a wall-clock
(``time.time()``) value, so expiry decisions compare wall clocks across
hosts and the usual caveat applies — keep the lease comfortably above the
expected clock skew (the default is 30 s; NTP-synced hosts skew
milliseconds).  The HTTP transport has no such caveat: its
:class:`~repro.dist.net.NetworkClaimBoard` lives inside the coordinator
process and mints deadlines on the coordinator's own **monotonic** clock,
which is the only clock ever consulted — workers' clocks never enter lease
arbitration at all.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = ["Claim", "ClaimBoard", "LeaseRenewer"]


@dataclass(frozen=True)
class Claim:
    """One interval claim: who owns an interval, and until when.

    ``expires_at`` is a deadline **on the clock of the board that minted the
    claim** — a wall-clock (``time.time()``) value for the file-based
    :class:`ClaimBoard`, a coordinator-monotonic (``time.monotonic()``) value
    for the HTTP transport's :class:`~repro.dist.net.NetworkClaimBoard`.
    The two clock domains must never be compared against each other.
    """

    interval: int
    worker: str
    expires_at: float

    def expired(self, now: float | None = None) -> bool:
        """Whether the lease has lapsed at ``now``.

        ``now`` must come from the same clock domain as ``expires_at``.  The
        wall-clock default (``time.time()``) is only correct for claims
        minted by the file-based :class:`ClaimBoard`; boards that arbitrate
        on a coordinator-side monotonic clock (the HTTP transport) always
        pass ``now`` explicitly and never rely on this default.
        """
        return (now if now is not None else time.time()) >= self.expires_at


class ClaimBoard:
    """File-per-interval claims under ``<dispatch_dir>/claims``.

    Lease arbitration here is **wall-clock** (``time.time()``): deadlines
    written by one host are compared on another, so the lease must dominate
    cross-host clock skew.  This is the shared-filesystem transport's board;
    the HTTP transport replaces it with a coordinator-monotonic board.
    """

    def __init__(
        self, dispatch_dir: Path | str, worker: str, lease: float = 30.0
    ) -> None:
        if lease <= 0:
            raise ValueError(f"lease must be > 0 seconds, got {lease}")
        self.claims_dir = Path(dispatch_dir) / "claims"
        self.worker = worker
        self.lease = lease
        self.claims_dir.mkdir(parents=True, exist_ok=True)

    # -- paths -------------------------------------------------------------------------

    def path(self, interval: int) -> Path:
        return self.claims_dir / f"interval-{interval:06d}.json"

    def _payload(self, interval: int) -> bytes:
        return json.dumps(
            {
                "interval": interval,
                "worker": self.worker,
                "expires_at": time.time() + self.lease,
            }
        ).encode("utf-8")

    # -- reading -----------------------------------------------------------------------

    def holder(self, interval: int) -> Claim | None:
        """The current claim on ``interval``, or None when unclaimed.

        A claim file that cannot be parsed (a crash mid-create, a truncated
        write) is reported as an already-expired claim so it is eligible for
        takeover rather than wedging the interval forever.
        """
        try:
            payload = json.loads(self.path(interval).read_bytes())
            return Claim(
                interval=int(payload["interval"]),
                worker=str(payload["worker"]),
                expires_at=float(payload["expires_at"]),
            )
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            return Claim(interval=interval, worker="<corrupt>", expires_at=0.0)

    def claims(self) -> dict[int, Claim]:
        """Every interval currently holding a claim file."""
        held: dict[int, Claim] = {}
        try:
            names = sorted(os.listdir(self.claims_dir))
        except OSError:
            return held
        for name in names:
            if not (name.startswith("interval-") and name.endswith(".json")):
                continue
            try:
                interval = int(name[len("interval-") : -len(".json")])
            except ValueError:
                continue
            claim = self.holder(interval)
            if claim is not None:
                held[interval] = claim
        return held

    # -- writing -----------------------------------------------------------------------

    def try_claim(self, interval: int) -> bool:
        """Claim ``interval`` if unclaimed or expired; True when we now own it."""
        path = self.path(interval)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            existing = self.holder(interval)
            if existing is None:
                # Deleted between our open and our read; next scan retries.
                return False
            if not existing.expired():
                return False
            # Takeover of a stale lease: atomic replace.  Two racing
            # takeovers may both "win" — see the module docstring for why
            # double execution is legal here.
            self._rewrite(interval)
            return True
        try:
            os.write(fd, self._payload(interval))
        finally:
            os.close(fd)
        return True

    def _rewrite(self, interval: int) -> None:
        path = self.path(interval)
        scratch = path.with_name(f"{path.name}.{self.worker}.tmp")
        scratch.write_bytes(self._payload(interval))
        os.replace(scratch, path)

    def renew(self, interval: int) -> None:
        """Extend our lease on ``interval`` (the heartbeat while computing)."""
        self._rewrite(interval)

    def release(self, interval: int) -> None:
        """Drop the claim on ``interval`` (after staging its result)."""
        self.path(interval).unlink(missing_ok=True)


class LeaseRenewer:
    """Background heartbeat renewing one claim while its owner computes.

    Renewal happens every ``lease / 3`` so a single missed beat never lets
    the lease lapse; a SIGKILLed owner simply stops beating and the lease
    expires on schedule.  ``board`` is anything with a ``lease`` attribute
    and a ``renew(interval)`` method — the file-based :class:`ClaimBoard` or
    a worker-side :class:`~repro.dist.dispatch.DispatchTransport` (whose
    HTTP implementation turns each beat into a renew request arbitrated on
    the coordinator's clock).
    """

    def __init__(self, board: Any, interval: int) -> None:
        self._board = board
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-lease-renew-{interval}", daemon=True
        )

    def _run(self) -> None:
        period = self._board.lease / 3.0
        while not self._stop.wait(period):
            try:
                self._board.renew(self._interval)
            except OSError:
                # A vanished claims dir (coordinator cleanup) just means the
                # campaign finished around us; the compute result still lands.
                return

    def __enter__(self) -> "LeaseRenewer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=self._board.lease)
