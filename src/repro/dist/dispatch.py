"""Distributed campaign dispatch: many workers, one ordered commit point.

The campaign engine already has every ingredient exactly-once distributed
execution needs: interval ``i`` is a pure function of ``(spec, i)``,
accumulator state folds associatively from the stored records, and the
:class:`~repro.store.RunStore` validates spec hashes.  This module arranges
those pieces into a coordinator/worker protocol over a shared run directory
(worker processes on one host, or remote hosts mounting the same store
root):

* **Workers** (:class:`DispatchWorker`) claim pending intervals, compute the
  interval record with the ordinary pure
  :func:`~repro.engine.campaign.interval_record`, and deliver the result to
  the coordinator.  *How* they claim and deliver is a
  :class:`DispatchTransport`:

  - :class:`FilesystemTransport` — the shared-mount protocol: lease files on
    the lease-based :class:`~repro.dist.claims.ClaimBoard` (work-stealing:
    lowest unclaimed interval first, expired leases taken over) and one
    atomic staged file per interval under ``<run_dir>/dispatch/staging``.
    Leases compare wall clocks across hosts, so the lease must dominate
    clock skew.
  - :class:`~repro.dist.net.HTTPTransport` — the network protocol: workers
    claim/renew/release leases and upload digest-checked record bytes over
    the coordinator's ``/api/v1/dispatch/...`` endpoints.  The coordinator's
    **monotonic clock is the only clock** in lease arbitration, and workers
    need no filesystem access to the run directory at all.

  Either way, workers never touch ``records.jsonl``.
* **The coordinator** (:class:`DispatchCoordinator`) is the store's single
  writer.  The staging directory *is* its reorder buffer: staged records
  commit to the store strictly in interval order, each one folded into a
  :class:`~repro.engine.campaign.CampaignAccumulator` exactly as a
  single-host :class:`~repro.engine.campaign.CampaignRunner` would fold it,
  so the finished store — records, summary, everything — is **byte-identical**
  to an uninterrupted ``repro run`` of the same spec.
* **Duplicates are asserted, not assumed.**  Straggler re-execution (a
  worker SIGKILLed mid-interval, a lease takeover race) can produce the same
  interval twice.  Determinism makes the duplicate byte-identical; both the
  staging layer and the committed-record check *verify* that identity and
  raise :class:`DispatchError` on any mismatch instead of silently dropping
  data.

The coordinator also supervises local worker subprocesses (respawning any
that die while work remains) and hosts the seeded chaos hook the
``distributed-smoke`` CI job and the chaos tests drive: ``chaos_seed`` /
``chaos_kills`` SIGKILL live workers — preferring one currently holding a
claim, i.e. mid-interval — on a reproducible schedule.
"""

from __future__ import annotations

import abc
import json
import os
import random
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.api.spec import CampaignSpec, ExecutionPolicy
from repro.dist.claims import ClaimBoard, LeaseRenewer
from repro.engine.campaign import (
    CampaignAccumulator,
    CampaignEvent,
    CampaignRunOutcome,
    IntervalCommitted,
    RunComplete,
    interval_record,
)
from repro.store import RunStore, stable_json
from repro.store.runstore import RECORDS_FILE, SPEC_FILE

__all__ = [
    "DISPATCH_DIR",
    "ChaosSchedule",
    "DispatchCoordinator",
    "DispatchError",
    "DispatchTransport",
    "DispatchWorker",
    "FilesystemTransport",
    "StagingArea",
    "committed_line",
    "dispatch_campaign",
    "validate_dispatch_policy",
]

#: Scratch directory inside the run store; removed when the campaign
#: completes so a dispatched store diffs clean against a single-host run.
DISPATCH_DIR = "dispatch"

#: Default lease (seconds) on one interval claim; see claims.py for the
#: clock-skew caveat.
DEFAULT_LEASE = 30.0


class DispatchError(RuntimeError):
    """The dispatch protocol hit a state determinism forbids."""


def validate_dispatch_policy(
    spec: CampaignSpec, policy: ExecutionPolicy | None
) -> ExecutionPolicy:
    """Resolve (and vet) the execution policy every dispatch worker runs.

    Mid-interval checkpointing is a single-writer feature — a worker's
    partial stream state has no home in the staging protocol — so
    ``checkpoint_every`` is rejected up front.
    """
    policy = policy if policy is not None else ExecutionPolicy()
    if policy.checkpoint_every is not None:
        raise ValueError(
            "dispatch workers recompute an interval from its start on "
            "re-claim; checkpoint_every applies to single-host runs only"
        )
    return policy.bind(spec.cell)


def _committed_count(store: RunStore) -> int:
    """Committed records right now (newline count; tolerates a torn tail)."""
    records_path = Path(store.path) / RECORDS_FILE
    try:
        return records_path.read_bytes().count(b"\n")
    except OSError:
        return 0


def committed_line(store: RunStore, interval: int) -> bytes:
    """The exact committed bytes of record ``interval`` (for duplicate checks)."""
    payload = store.records_path.read_bytes()
    lines = payload[: payload.rfind(b"\n") + 1].split(b"\n")
    return lines[interval] + b"\n"


class StagingArea:
    """Per-interval staged records under ``<run_dir>/dispatch/staging``.

    A staged record is one atomically-renamed file whose bytes are exactly
    the ``records.jsonl`` line the coordinator will append (stable JSON plus
    the trailing newline), so staging a duplicate reduces to a byte compare.
    """

    def __init__(self, dispatch_dir: Path | str) -> None:
        self.staging_dir = Path(dispatch_dir) / "staging"
        self.staging_dir.mkdir(parents=True, exist_ok=True)

    def path(self, interval: int) -> Path:
        return self.staging_dir / f"interval-{interval:06d}.json"

    def stage(self, interval: int, record: Mapping[str, Any], worker: str) -> bool:
        """Stage one computed record; False when an identical copy already sits.

        A pre-existing staged record must be byte-identical (determinism);
        anything else is a :class:`DispatchError`, never a silent overwrite.
        """
        line = (stable_json(dict(record)) + "\n").encode("utf-8")
        return self.stage_line(interval, line, worker)

    def stage_line(self, interval: int, line: bytes, worker: str) -> bool:
        """Stage one record's exact line bytes (see :meth:`stage`).

        The byte-level entry point exists for the HTTP transport: an
        uploaded record is staged exactly as received (after its digest
        verified), never re-serialized, so the duplicate byte-assert compares
        what workers actually produced.
        """
        path = self.path(interval)
        existing = self._read(path)
        if existing is not None:
            if existing != line:
                raise DispatchError(
                    f"staged record for interval {interval} differs from a "
                    f"re-execution's result; interval records must be pure "
                    f"functions of (spec, interval)"
                )
            return False
        scratch = path.with_name(f"{path.name}.{worker}.tmp")
        with open(scratch, "wb") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, path)
        return True

    def _read(self, path: Path) -> bytes | None:
        try:
            return path.read_bytes()
        except OSError:
            return None

    def staged(self) -> dict[int, Path]:
        """Every staged interval, sorted by index."""
        out: dict[int, Path] = {}
        try:
            names = sorted(os.listdir(self.staging_dir))
        except OSError:
            return out
        for name in names:
            if not (name.startswith("interval-") and name.endswith(".json")):
                continue
            try:
                interval = int(name[len("interval-") : -len(".json")])
            except ValueError:
                continue
            out[interval] = self.staging_dir / name
        return out

    def load(self, interval: int) -> tuple[dict[str, Any], bytes]:
        payload = self.path(interval).read_bytes()
        return json.loads(payload), payload

    def discard(self, interval: int) -> None:
        self.path(interval).unlink(missing_ok=True)


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class DispatchTransport(abc.ABC):
    """Everything a :class:`DispatchWorker` needs from the outside world.

    A transport answers four questions — what is pending, may I compute
    interval *i* (lease acquire/renew/release), and how do I deliver the
    finished record — without the worker knowing whether the other side is a
    shared filesystem (:class:`FilesystemTransport`) or a coordinator
    reached over HTTP (:class:`~repro.dist.net.HTTPTransport`).  Instances
    expose ``spec``, ``policy``, ``worker_id`` and ``lease`` attributes; the
    policy always comes *through* the transport so every worker in a pool
    computes under the coordinator's exact execution policy.
    """

    spec: CampaignSpec
    policy: ExecutionPolicy
    worker_id: str
    lease: float

    @abc.abstractmethod
    def pending(self) -> list[int]:
        """Intervals not yet committed and not yet staged, lowest first."""

    @abc.abstractmethod
    def try_claim(self, interval: int) -> bool:
        """Acquire the lease on ``interval``; True when this worker owns it."""

    @abc.abstractmethod
    def renew(self, interval: int) -> None:
        """Heartbeat the lease on ``interval`` (best-effort, never raises)."""

    @abc.abstractmethod
    def release(self, interval: int) -> None:
        """Drop the lease on ``interval`` (after delivering its record)."""

    @abc.abstractmethod
    def deliver(self, interval: int, record: Mapping[str, Any]) -> bool:
        """Hand the finished record to the coordinator; False on duplicate.

        Delivery must be idempotent and byte-asserted: re-delivering the
        same interval is legal only when the bytes are identical, and a
        divergent duplicate raises :class:`DispatchError`.
        """

    def close(self) -> None:
        """Release any transport resources (optional)."""


class FilesystemTransport(DispatchTransport):
    """The shared-mount transport: lease files plus atomic staged files.

    Requires every worker (and the coordinator) to mount the run directory.
    Lease expiry compares wall clocks across hosts — see
    :mod:`repro.dist.claims` for the skew caveat the HTTP transport removes.
    """

    def __init__(
        self,
        run_dir: Path | str,
        policy: ExecutionPolicy | None = None,
        worker_id: str | None = None,
        lease: float = DEFAULT_LEASE,
    ) -> None:
        self.store = RunStore.open(run_dir)
        self.spec = self.store.spec()
        self.policy = validate_dispatch_policy(self.spec, policy)
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.lease = lease
        dispatch_dir = Path(self.store.path) / DISPATCH_DIR
        self.claims = ClaimBoard(dispatch_dir, worker=self.worker_id, lease=lease)
        self.staging = StagingArea(dispatch_dir)

    def pending(self) -> list[int]:
        committed = _committed_count(self.store)
        if committed >= self.spec.intervals:
            return []
        staged = self.staging.staged()
        return [
            interval
            for interval in range(committed, self.spec.intervals)
            if interval not in staged
        ]

    def try_claim(self, interval: int) -> bool:
        return self.claims.try_claim(interval)

    def renew(self, interval: int) -> None:
        try:
            self.claims.renew(interval)
        except OSError:
            # A vanished claims dir means the coordinator finished cleanup
            # around us; the computed result still lands via staging.
            pass

    def release(self, interval: int) -> None:
        self.claims.release(interval)

    def deliver(self, interval: int, record: Mapping[str, Any]) -> bool:
        return self.staging.stage(interval, record, worker=self.worker_id)


class DispatchWorker:
    """One claim/compute/deliver loop over a :class:`DispatchTransport`.

    Run it in-process (tests, embedding) or as a ``repro dispatch
    --worker-only`` subprocess — either against a shared run directory
    (filesystem transport) or against a coordinator URL (HTTP transport,
    no filesystem sharing at all).  The worker never writes the store;
    committed progress and staged results are whatever the transport
    reports, and finished records travel back through the transport.
    """

    def __init__(
        self,
        target: DispatchTransport | Path | str,
        policy: ExecutionPolicy | None = None,
        worker_id: str | None = None,
        lease: float = DEFAULT_LEASE,
        poll: float = 0.05,
    ) -> None:
        if isinstance(target, DispatchTransport):
            if policy is not None:
                raise ValueError(
                    "policy travels through the transport; construct the "
                    "transport with it instead of passing both"
                )
            self.transport = target
        else:
            self.transport = FilesystemTransport(
                target, policy=policy, worker_id=worker_id, lease=lease
            )
        self.spec = self.transport.spec
        self.policy = self.transport.policy
        self.worker_id = self.transport.worker_id
        self.poll = poll
        # Filesystem-transport internals, surfaced for tests and embedders
        # (None under transports that have no local store access).
        self.store = getattr(self.transport, "store", None)
        self.claims = getattr(self.transport, "claims", None)
        self.staging = getattr(self.transport, "staging", None)

    def _pending(self) -> list[int]:
        return self.transport.pending()

    def run_one(self) -> int | None:
        """Claim and compute one interval; its index, or None when idle.

        "Idle" covers both nothing-left (every remaining interval is staged
        or committed) and everything-claimed (other workers own the pending
        intervals under live leases — the caller decides whether to wait for
        a straggler's lease to lapse).
        """
        for interval in self._pending():
            if not self.transport.try_claim(interval):
                continue
            with LeaseRenewer(self.transport, interval):
                record = interval_record(self.spec, interval, policy=self.policy)
            self.transport.deliver(interval, record)
            self.transport.release(interval)
            if self.policy.throttle > 0:
                # The delivered record is durable on the coordinator side;
                # the pause gives chaos harnesses a deterministic kill
                # window per interval.
                time.sleep(self.policy.throttle)
            return interval
        return None

    def run(self) -> int:
        """Work until every remaining interval is staged or committed."""
        computed = 0
        while True:
            if self.run_one() is not None:
                computed += 1
                continue
            if not self._pending():
                return computed
            # Every pending interval is claimed under a live lease; wait for
            # progress (a commit, a staged result) or a lease expiry.
            time.sleep(self.poll)


@dataclass(frozen=True)
class ChaosSchedule:
    """Seeded kill schedule for the chaos hook (reproducible by seed)."""

    seed: int
    kills: int
    min_delay: float = 0.2
    max_delay: float = 1.0

    def delays(self) -> "random.Random":
        return random.Random(self.seed)


class DispatchCoordinator:
    """The run store's single writer plus the local worker supervisor.

    ``workers=0`` runs commit-only: the coordinator folds whatever remote
    (or pre-staged) workers deliver, which is the multi-host topology — one
    ``repro dispatch <dir> --workers 0`` next to the store, any number of
    ``repro dispatch <dir> --worker-only`` processes on other hosts (a
    shared mount under ``transport="fs"``, or ``--transport http
    --coordinator URL`` with no shared filesystem at all).

    Under ``transport="http"`` the coordinator embeds a service app serving
    the ``/api/v1/dispatch/…`` endpoints for this run (``http_host`` /
    ``http_port``; port 0 binds an ephemeral port, the bound URL lands in
    ``self.http_url``).  Leases then live on a coordinator-monotonic
    :class:`~repro.dist.net.NetworkClaimBoard` instead of claim files, and
    local worker subprocesses connect over loopback HTTP exactly as remote
    ones would.
    """

    def __init__(
        self,
        store: RunStore,
        policy: ExecutionPolicy | None = None,
        workers: int = 2,
        lease: float = DEFAULT_LEASE,
        poll: float = 0.05,
        chaos: ChaosSchedule | None = None,
        on_event: Callable[[CampaignEvent], None] | None = None,
        transport: str = "fs",
        http_host: str = "127.0.0.1",
        http_port: int = 0,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if transport not in ("fs", "http"):
            raise ValueError(f"transport must be 'fs' or 'http', got {transport!r}")
        self.store = store
        self.spec = store.spec()
        self.policy = validate_dispatch_policy(self.spec, policy)
        self.workers = workers
        self.lease = lease
        self.poll = poll
        self.chaos = chaos
        self.on_event = on_event
        self.transport = transport
        self.dispatch_dir = Path(store.path) / DISPATCH_DIR
        self.staging = StagingArea(self.dispatch_dir)
        self.run_id = Path(store.path).resolve().name
        self.http_url: str | None = None
        self._http_server: Any = None
        self._http_thread: threading.Thread | None = None
        if transport == "http":
            self._start_http_server(http_host, http_port)
        else:
            self.claims = ClaimBoard(
                self.dispatch_dir, worker="coordinator", lease=lease
            )
        self._children: dict[str, subprocess.Popen] = {}
        self._spawned = 0

    # -- HTTP transport ----------------------------------------------------------------

    def _start_http_server(self, host: str, port: int) -> None:
        """Serve this run's ``/api/v1/dispatch/…`` endpoints in-process.

        Imported lazily: the filesystem transport must keep working in
        environments that never load the service layer.
        """
        from repro.dist.net import DispatchHub, NetworkClaimBoard
        from repro.service.app import ServiceApp, make_service_server
        from repro.service.dispatchapi import DispatchRegistry

        self.claims = NetworkClaimBoard(lease=self.lease)
        hub = DispatchHub(
            store=self.store,
            policy=self.policy,
            claims=self.claims,
            staging=self.staging,
        )
        registry = DispatchRegistry()
        registry.register(self.run_id, hub)
        app = ServiceApp(Path(self.store.path).parent, dispatch=registry)
        self._http_server = make_service_server(host, port, app)
        bound_host, bound_port = self._http_server.server_address[:2]
        self.http_url = f"http://{bound_host}:{bound_port}"
        self._http_thread = threading.Thread(
            target=self._http_server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"repro-dispatch-http-{self.run_id}",
            daemon=True,
        )
        self._http_thread.start()

    def close(self) -> None:
        """Shut down the embedded HTTP server (idempotent; fs mode is a no-op)."""
        server, self._http_server = self._http_server, None
        if server is None:
            return
        server.shutdown()
        server.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
            self._http_thread = None

    # -- events ------------------------------------------------------------------------

    def _emit(self, event: CampaignEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)

    # -- worker subprocesses -----------------------------------------------------------

    def _worker_argv(self, worker_id: str) -> list[str]:
        if self.transport == "http":
            # No run directory, no policy flags: the worker learns the spec,
            # policy and lease from the coordinator's config endpoint, which
            # is exactly what a remote worker with no mount would do.
            return [
                sys.executable,
                "-m",
                "repro.cli",
                "dispatch",
                "--worker-only",
                "--transport",
                "http",
                "--coordinator",
                self.http_url,
                "--run-id",
                self.run_id,
                "--worker-id",
                worker_id,
                "--quiet",
            ]
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "dispatch",
            str(Path(self.store.path).resolve()),
            "--worker-only",
            "--worker-id",
            worker_id,
            "--lease",
            repr(self.lease),
            "--quiet",
        ]
        if self.policy.engine is not None:
            argv += ["--engine", self.policy.engine]
        if self.policy.shards != 1:
            argv += ["--shards", str(self.policy.shards)]
        if self.policy.chunk_size is not None:
            argv += ["--chunk-size", str(self.policy.chunk_size)]
        if self.policy.throttle:
            argv += ["--throttle", repr(self.policy.throttle)]
        return argv

    def _spawn_worker(self) -> None:
        import repro

        self._spawned += 1
        worker_id = f"{socket.gethostname()}-{os.getpid()}-w{self._spawned}"
        package_parent = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [package_parent, env["PYTHONPATH"]]
            if env.get("PYTHONPATH")
            else [package_parent]
        )
        self._children[worker_id] = subprocess.Popen(
            self._worker_argv(worker_id),
            env=env,
            stdout=subprocess.DEVNULL,
        )

    def _reap_and_respawn(self) -> None:
        """Collect exited workers; respawn crashed ones while work remains."""
        for worker_id, child in list(self._children.items()):
            status = child.poll()
            if status is None:
                continue
            del self._children[worker_id]
            if status != 0 and not self._all_work_delivered():
                self._spawn_worker()

    def _all_work_delivered(self) -> bool:
        committed = self.store.record_count
        if committed >= self.spec.intervals:
            return True
        staged = self.staging.staged()
        return all(
            interval in staged for interval in range(committed, self.spec.intervals)
        )

    def _terminate_workers(self) -> None:
        for child in self._children.values():
            if child.poll() is None:
                child.terminate()
        deadline = time.monotonic() + 5.0
        for child in self._children.values():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                child.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                child.kill()
                child.wait()
        self._children.clear()

    # -- chaos -------------------------------------------------------------------------

    def _chaos_step(self, rng: "random.Random", state: dict[str, Any]) -> None:
        """SIGKILL a live worker on the seeded schedule (prefer mid-interval)."""
        if state["kills_left"] <= 0 or time.monotonic() < state["next_kill"]:
            return
        live = {
            worker_id: child
            for worker_id, child in self._children.items()
            if child.poll() is None
        }
        if not live:
            return
        # Killing a worker that currently holds a claim is a guaranteed
        # mid-interval kill — the interesting case for straggler re-execution.
        holding = sorted(
            {claim.worker for claim in self.claims.claims().values()} & set(live)
        )
        victims = holding if holding else sorted(live)
        victim = rng.choice(victims)
        try:
            os.kill(live[victim].pid, signal.SIGKILL)
        except OSError:
            return
        state["kills_left"] -= 1
        state["next_kill"] = time.monotonic() + rng.uniform(
            self.chaos.min_delay, self.chaos.max_delay
        )

    # -- committing --------------------------------------------------------------------

    def _commit_ready(self, accumulator: CampaignAccumulator) -> int:
        """Fold every commit-ready staged record into the store, in order."""
        staged = self.staging.staged()
        committed = 0
        next_interval = self.store.next_interval
        # A straggler may re-deliver an interval that already committed
        # (claimed before the commit, staged after).  The duplicate must be
        # byte-identical to the committed line; assert, then drop.
        for interval in sorted(staged):
            if interval >= next_interval:
                break
            _, line = self.staging.load(interval)
            if line != committed_line(self.store, interval):
                raise DispatchError(
                    f"re-executed interval {interval} disagrees with its "
                    f"committed record; the store or a worker is corrupt"
                )
            self.staging.discard(interval)
        while True:
            next_interval = self.store.next_interval
            if next_interval >= self.spec.intervals or next_interval not in staged:
                break
            record, _ = self.staging.load(next_interval)
            self.store.append(record)
            accumulator.fold(record)
            self.staging.discard(next_interval)
            self.claims.release(next_interval)
            committed += 1
            self._emit(
                IntervalCommitted(
                    interval=next_interval,
                    intervals=self.spec.intervals,
                    record=record,
                )
            )
        return committed

    def _cleanup(self) -> None:
        shutil.rmtree(self.dispatch_dir, ignore_errors=True)

    # -- driving -----------------------------------------------------------------------

    def run(self) -> CampaignRunOutcome:
        """Dispatch until the campaign completes; byte-identical store out.

        Safe to interrupt (SIGINT) and re-invoke: the store's committed
        prefix is durable, staged results survive in the dispatch directory,
        and a fresh coordinator folds both before spawning new workers.
        """
        # The coordinator is the single writer: repair any torn tail a
        # previous coordinator's death left mid-append.
        self.store.repair_torn_tail()
        accumulator = CampaignAccumulator.from_records(self.spec, self.store.records())
        ran = 0
        rng = self.chaos.delays() if self.chaos is not None else None
        chaos_state = {"kills_left": 0, "next_kill": 0.0}
        if self.chaos is not None:
            chaos_state = {
                "kills_left": self.chaos.kills,
                "next_kill": time.monotonic()
                + rng.uniform(self.chaos.min_delay, self.chaos.max_delay),
            }
        try:
            for _ in range(self.workers):
                self._spawn_worker()
            while accumulator.intervals_folded < self.spec.intervals:
                progressed = self._commit_ready(accumulator)
                ran += progressed
                self._reap_and_respawn()
                if self.chaos is not None:
                    self._chaos_step(rng, chaos_state)
                if not progressed:
                    time.sleep(self.poll)
            summary = accumulator.summary()
            if self.store.summary() != summary:
                self.store.write_summary(summary)
            self._emit(RunComplete(intervals=self.spec.intervals, summary=summary))
        finally:
            self._terminate_workers()
            self.close()
        self._cleanup()
        return CampaignRunOutcome(
            completed=True,
            intervals_run=ran,
            next_interval=self.store.next_interval,
            summary=summary,
        )


def dispatch_campaign(
    run_dir: Path | str,
    spec: CampaignSpec | None = None,
    policy: ExecutionPolicy | None = None,
    workers: int = 2,
    lease: float = DEFAULT_LEASE,
    poll: float = 0.05,
    chaos: ChaosSchedule | None = None,
    on_event: Callable[[CampaignEvent], None] | None = None,
    transport: str = "fs",
    http_host: str = "127.0.0.1",
    http_port: int = 0,
) -> CampaignRunOutcome:
    """Run one campaign to completion across ``workers`` local processes.

    With ``spec`` given, a fresh store is created at ``run_dir`` (or, when a
    store already exists there, the spec is validated against it — the
    resume-a-killed-dispatch path).  ``transport="http"`` serves the run's
    dispatch endpoints and routes the local pool through them (see
    :class:`DispatchCoordinator`).  The finished store is byte-identical to
    a single-host ``repro run`` of the same spec.
    """
    run_dir = Path(run_dir)
    if (run_dir / SPEC_FILE).exists():
        store = RunStore.open(run_dir)
        if spec is not None:
            store.validate_spec(spec)
    else:
        if spec is None:
            raise DispatchError(
                f"{run_dir} holds no run store; pass a spec to create one"
            )
        store = RunStore.create(run_dir, spec)
    coordinator = DispatchCoordinator(
        store,
        policy=policy,
        workers=workers,
        lease=lease,
        poll=poll,
        chaos=chaos,
        on_event=on_event,
        transport=transport,
        http_host=http_host,
        http_port=http_port,
    )
    return coordinator.run()
