"""Congestion scenarios (the ns-2 substitution).

A :class:`CongestionScenario` congests the internal path of a domain by
sharing a bottleneck queue between the monitored packet sequence and
scenario-specific cross-traffic:

* ``"udp-burst"`` — a bursty, high-rate UDP flow periodically saturates the
  bottleneck (the paper's headline scenario: "a bursty, high-rate UDP flow",
  chosen because it "introduced the highest delay variance in the shortest
  time scale").
* ``"tcp-mix"`` — long-lived TCP flows with AIMD sawtooth rates.
* ``"mixed"`` — both of the above.

The output is the per-packet delay series of the monitored sequence, used as
the delay ground truth in the Figure-2 experiments.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.queueing import (
    BottleneckQueue,
    QueueStats,
    TCPSawtoothSource,
    UDPBurstSource,
)
from repro.util.rng import make_rng
from repro.util.validation import check_positive

__all__ = ["CongestionScenario"]

# When the caller does not fix a bottleneck bandwidth, size it so the
# monitored sequence alone uses this fraction of the link; the cross-traffic
# then decides how congested the domain becomes.
_AUTO_MONITORED_SHARE = 0.6


class CongestionScenario:
    """Generates the delay experienced inside a congested domain.

    Parameters
    ----------
    bandwidth_bps:
        Bottleneck capacity; ``None`` auto-sizes it from the monitored load
        (monitored traffic occupies ~60% of the link).
    scenario:
        ``"udp-burst"``, ``"tcp-mix"`` or ``"mixed"``.
    utilization:
        Intensity knob for the cross-traffic.  For the UDP burst it scales the
        burst peak rate; for TCP it scales the aggregate target rate.  Values
        around 1.0 reproduce heavy congestion with multi-millisecond delay
        spikes.
    queue_capacity_packets:
        Tail-drop threshold for cross-traffic packets; bounds the worst-case
        queueing delay.
    """

    def __init__(
        self,
        bandwidth_bps: float | None = None,
        scenario: str = "udp-burst",
        utilization: float = 0.95,
        queue_capacity_packets: int = 2000,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if scenario not in ("udp-burst", "tcp-mix", "mixed"):
            raise ValueError(
                f"scenario must be one of 'udp-burst', 'tcp-mix', 'mixed'; got {scenario!r}"
            )
        if bandwidth_bps is not None:
            check_positive("bandwidth_bps", bandwidth_bps)
        check_positive("utilization", utilization)
        check_positive("queue_capacity_packets", queue_capacity_packets)
        self.bandwidth_bps = bandwidth_bps
        self.scenario = scenario
        self.utilization = float(utilization)
        self.queue_capacity_packets = int(queue_capacity_packets)
        self._rng = make_rng(seed)
        self.last_stats: QueueStats | None = None

    # -- internals ----------------------------------------------------------

    def _resolve_bandwidth(
        self, arrival_times: np.ndarray, packet_size: float
    ) -> float:
        if self.bandwidth_bps is not None:
            return float(self.bandwidth_bps)
        duration = max(float(arrival_times[-1] - arrival_times[0]), 1e-6)
        monitored_load = len(arrival_times) * packet_size * 8.0 / duration
        return monitored_load / _AUTO_MONITORED_SHARE

    def _cross_traffic(
        self, bandwidth_bps: float, start: float, end: float
    ) -> tuple[np.ndarray, np.ndarray]:
        arrivals_parts: list[np.ndarray] = []
        sizes_parts: list[np.ndarray] = []
        if self.scenario in ("udp-burst", "mixed"):
            udp = UDPBurstSource(
                bandwidth_bps=bandwidth_bps,
                peak_fraction=0.9 * self.utilization,
                mean_on_time=0.02,
                mean_off_time=0.03,
                packet_size=1000,
                seed=self._rng,
            )
            arrivals, sizes = udp.arrivals(start, end)
            arrivals_parts.append(arrivals)
            sizes_parts.append(sizes)
        if self.scenario in ("tcp-mix", "mixed"):
            tcp = TCPSawtoothSource(
                bandwidth_bps=bandwidth_bps,
                target_utilization=0.5 * self.utilization,
                flow_count=8,
                rtt=0.04,
                packet_size=1500,
                seed=self._rng,
            )
            arrivals, sizes = tcp.arrivals(start, end)
            arrivals_parts.append(arrivals)
            sizes_parts.append(sizes)
        if not arrivals_parts:
            return np.zeros(0), np.zeros(0)
        return np.concatenate(arrivals_parts), np.concatenate(sizes_parts)

    # -- public API ---------------------------------------------------------

    def monitored_delays(
        self, arrival_times: np.ndarray, packet_size: float = 400.0
    ) -> np.ndarray:
        """Return per-packet delays for the monitored sequence.

        Parameters
        ----------
        arrival_times:
            Times (seconds, sorted) at which the monitored packets enter the
            congested domain.
        packet_size:
            Either a scalar applied to all monitored packets or an array of
            per-packet sizes in bytes.
        """
        arrival_times = np.asarray(arrival_times, dtype=float)
        if len(arrival_times) == 0:
            return np.zeros(0, dtype=float)
        if np.any(np.diff(arrival_times) < 0):
            raise ValueError("arrival_times must be sorted in non-decreasing order")
        sizes = np.asarray(packet_size, dtype=float)
        if sizes.ndim == 0:
            sizes = np.full(len(arrival_times), float(sizes))
        elif len(sizes) != len(arrival_times):
            raise ValueError("packet_size array must match arrival_times in length")

        bandwidth = self._resolve_bandwidth(arrival_times, float(sizes.mean()))
        start = float(arrival_times[0])
        end = float(arrival_times[-1]) + 1e-6
        cross_arrivals, cross_sizes = self._cross_traffic(bandwidth, start, end)
        queue = BottleneckQueue(
            bandwidth_bps=bandwidth, capacity_packets=self.queue_capacity_packets
        )
        delays, stats = queue.run(arrival_times, sizes, cross_arrivals, cross_sizes)
        self.last_stats = stats
        return delays
