"""A minimal discrete-event scheduler.

The congestion simulator and a few tests need ordered event processing with
virtual time.  :class:`EventScheduler` is a classic priority-queue event loop:
events carry a timestamp, a monotone tie-breaking sequence number, and a
callback.  It is intentionally small — the heavy lifting of the reproduction
happens in the queueing and scenario modules built on top of it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventScheduler"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled event: fires ``action`` at virtual ``time``.

    Ordering is by ``(time, sequence)``; the sequence number makes ordering
    total and FIFO among simultaneous events.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)


class EventScheduler:
    """A priority-queue discrete-event loop with virtual time."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time (the timestamp of the last processed event)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events processed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run at virtual ``time``.

        Scheduling in the past (relative to the current virtual time) is a
        logic error in the caller and raises ``ValueError``.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time=float(time), sequence=next(self._counter), action=action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, action)

    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        event.action()
        self._processed += 1
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run the loop until the queue drains, ``until`` is reached, or
        ``max_events`` events have been processed.  Returns the number of
        events processed by this call."""
        processed = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        if until is not None and self._now < until:
            self._now = until
        return processed
