"""Discrete-event simulation substrate: engine, queueing, congestion, scenarios."""

from repro.simulation.congestion import CongestionScenario
from repro.simulation.engine import Event, EventScheduler
from repro.simulation.mesh import MeshObservation, MeshScenario, merge_hop_streams
from repro.simulation.queueing import BottleneckQueue, QueueStats
from repro.simulation.scenario import (
    DomainGroundTruth,
    PathObservation,
    PathScenario,
    SegmentCondition,
)

__all__ = [
    "BottleneckQueue",
    "CongestionScenario",
    "DomainGroundTruth",
    "Event",
    "EventScheduler",
    "MeshObservation",
    "MeshScenario",
    "PathObservation",
    "PathScenario",
    "QueueStats",
    "SegmentCondition",
    "merge_hop_streams",
]
