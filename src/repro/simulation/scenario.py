"""The path scenario: the Figure-1 experiment driver.

A :class:`PathScenario` propagates a packet sequence along a HOP path (by
default the Figure-1 path ``S → L → X → N → D``, HOPs 1..8), applying
per-domain conditions (loss, delay, reordering, optionally preferential
treatment of selected packets) and per-link conditions, and records

* the **observations** each HOP would make — the ordered (packet, time) lists
  fed into the HOP collectors, and
* the **ground truth** — the true per-packet delay and loss introduced by
  every domain, against which the receipt-based estimates are evaluated.

This module contains no VPM logic; it is the substrate that stands in for the
paper's trace-driven methodology (trace + ns-2 delays + Gilbert-Elliott loss).

Scenarios are the engine layer under the declarative experiment API: the
Figure-1 builder is registered as the ``"figure1"`` scenario in
:mod:`repro.api.registry`, per-domain :class:`SegmentCondition` values are
described by :class:`repro.api.ConditionSpec`, and alternative topologies plug
in via :func:`repro.api.register_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.net.batch import PacketBatch
from repro.net.link import InterDomainLink
from repro.net.packet import Packet
from repro.net.topology import Domain, HOP, HOPPath, Topology, figure1_topology
from repro.traffic.delay_models import ConstantDelayModel, DelayModel
from repro.traffic.loss_models import LossModel, NoLossModel
from repro.traffic.reordering import NoReordering, ReorderingModel
from repro.util.rng import make_rng

__all__ = [
    "SegmentCondition",
    "DomainGroundTruth",
    "BatchDomainTruth",
    "PathObservation",
    "BatchPathObservation",
    "PathScenario",
]


@dataclass
class SegmentCondition:
    """The forwarding behaviour of one domain's internal segment.

    Attributes
    ----------
    delay_model:
        Produces the per-packet delay between the domain's ingress and egress
        HOPs.
    loss_model:
        Decides which packets the domain drops internally.
    reordering:
        Additional reordering applied at the egress (on top of any natural
        reordering caused by variable delays).
    preferential_predicate:
        Optional predicate over packets; matching packets are *never dropped*
        and receive ``preferential_delay`` instead of the modelled delay.
        This models a domain that treats an externally predictable set of
        packets preferentially (the sampling-bias attack of Section 3.2 /
        Section 5.1); for honest domains it is ``None``.
    preferential_delay:
        The delay given to preferentially treated packets (seconds).
    drop_predicate:
        Optional predicate over packets; matching packets are always dropped
        inside the domain (on top of the loss model).  Used to model targeted
        attacks such as dropping all marker packets (Section 5.3).
    """

    delay_model: DelayModel = field(default_factory=lambda: ConstantDelayModel(0.5e-3))
    loss_model: LossModel = field(default_factory=NoLossModel)
    reordering: ReorderingModel = field(default_factory=NoReordering)
    preferential_predicate: Callable[[Packet], bool] | None = None
    preferential_delay: float = 0.2e-3
    drop_predicate: Callable[[Packet], bool] | None = None


@dataclass
class DomainGroundTruth:
    """True behaviour of one domain during a scenario run.

    ``delivered`` maps packet uid to (ingress time, egress time); ``lost`` is
    the set of uids dropped inside the domain.
    """

    domain: str
    delivered: dict[int, tuple[float, float]] = field(default_factory=dict)
    lost: set[int] = field(default_factory=set)

    @property
    def offered_packets(self) -> int:
        """Packets that entered the domain."""
        return len(self.delivered) + len(self.lost)

    @property
    def loss_rate(self) -> float:
        """True fraction of entering packets dropped inside the domain."""
        offered = self.offered_packets
        return len(self.lost) / offered if offered else 0.0

    def delays(self) -> np.ndarray:
        """True per-packet delays of the packets the domain delivered."""
        return np.asarray(
            [egress - ingress for ingress, egress in self.delivered.values()],
            dtype=float,
        )

    def delay_quantiles(self, quantiles: Sequence[float]) -> dict[float, float]:
        """True delay quantiles of the delivered packets."""
        delays = self.delays()
        if delays.size == 0:
            return {quantile: 0.0 for quantile in quantiles}
        return {quantile: float(np.quantile(delays, quantile)) for quantile in quantiles}


@dataclass
class BatchDomainTruth:
    """Columnar ground truth of one domain during a batch scenario run.

    The arrays are aligned: ``delivered_uids[i]`` entered the domain at
    ``ingress_times[i]`` and left at ``egress_times[i]``.  ``lost_uids`` holds
    the uids dropped inside the domain.  The accessors mirror
    :class:`DomainGroundTruth`, so evaluation code accepts either.
    """

    domain: str
    delivered_uids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    ingress_times: np.ndarray = field(default_factory=lambda: np.empty(0))
    egress_times: np.ndarray = field(default_factory=lambda: np.empty(0))
    lost_uids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def lost(self) -> set[int]:
        """The set of uids dropped inside the domain (object-path API)."""
        return set(int(uid) for uid in self.lost_uids)

    @property
    def offered_packets(self) -> int:
        """Packets that entered the domain."""
        return len(self.delivered_uids) + len(self.lost_uids)

    @property
    def loss_rate(self) -> float:
        """True fraction of entering packets dropped inside the domain."""
        offered = self.offered_packets
        return len(self.lost_uids) / offered if offered else 0.0

    def delays(self) -> np.ndarray:
        """True per-packet delays of the packets the domain delivered."""
        return self.egress_times - self.ingress_times

    def delay_quantiles(self, quantiles: Sequence[float]) -> dict[float, float]:
        """True delay quantiles of the delivered packets."""
        delays = self.delays()
        if delays.size == 0:
            return {quantile: 0.0 for quantile in quantiles}
        return {quantile: float(np.quantile(delays, quantile)) for quantile in quantiles}


@dataclass
class PathObservation:
    """The result of propagating a packet sequence along a path."""

    path: HOPPath
    observations: dict[int, list[tuple[Packet, float]]]
    domain_truth: dict[str, DomainGroundTruth]
    link_losses: dict[tuple[int, int], set[int]] = field(default_factory=dict)

    def at_hop(self, hop: HOP | int) -> list[tuple[Packet, float]]:
        """The ordered (packet, observation time) list at a HOP."""
        hop_id = hop.hop_id if isinstance(hop, HOP) else hop
        return self.observations[hop_id]

    def packets_observed(self, hop: HOP | int) -> int:
        """Number of packets observed at a HOP."""
        return len(self.at_hop(hop))

    def truth_for(self, domain: Domain | str) -> DomainGroundTruth:
        """Ground truth for one domain."""
        name = domain.name if isinstance(domain, Domain) else domain
        return self.domain_truth[name]


@dataclass
class BatchPathObservation:
    """Columnar result of propagating a packet batch along a path.

    Per HOP, the observation is a (:class:`PacketBatch`, true-times array)
    pair in observation order — exactly what
    :meth:`repro.core.hop.HOPCollector.observe_batch` consumes.  This is the
    representation that lets a scenario drive millions of packets per run.
    """

    path: HOPPath
    batches: dict[int, PacketBatch]
    times: dict[int, np.ndarray]
    domain_truth: dict[str, BatchDomainTruth]
    link_losses: dict[tuple[int, int], set[int]] = field(default_factory=dict)

    def at_hop(self, hop: HOP | int) -> tuple[PacketBatch, np.ndarray]:
        """The (batch, observation times) pair observed at a HOP."""
        hop_id = hop.hop_id if isinstance(hop, HOP) else hop
        return self.batches[hop_id], self.times[hop_id]

    def packets_observed(self, hop: HOP | int) -> int:
        """Number of packets observed at a HOP."""
        return len(self.at_hop(hop)[0])

    def truth_for(self, domain: Domain | str) -> BatchDomainTruth:
        """Ground truth for one domain."""
        name = domain.name if isinstance(domain, Domain) else domain
        return self.domain_truth[name]

    def to_path_observation(self) -> PathObservation:
        """Materialize the object-based observation (for the scalar pipeline).

        Expensive for large batches; intended for cross-checking the two
        representations and for downstream code not yet batch-aware.
        """
        observations: dict[int, list[tuple[Packet, float]]] = {}
        for hop_id, batch in self.batches.items():
            packets = batch.to_packets()
            observations[hop_id] = list(zip(packets, (float(t) for t in self.times[hop_id])))
        domain_truth: dict[str, DomainGroundTruth] = {}
        for name, truth in self.domain_truth.items():
            domain_truth[name] = DomainGroundTruth(
                domain=name,
                delivered={
                    int(uid): (float(ingress), float(egress))
                    for uid, ingress, egress in zip(
                        truth.delivered_uids, truth.ingress_times, truth.egress_times
                    )
                },
                lost=truth.lost,
            )
        return PathObservation(
            path=self.path,
            observations=observations,
            domain_truth=domain_truth,
            link_losses={key: set(value) for key, value in self.link_losses.items()},
        )


class PathScenario:
    """Propagates traffic along a HOP path under configurable conditions.

    Parameters
    ----------
    topology, path:
        The topology and the HOP path to drive.  When omitted, the Figure-1
        topology is built.
    seed:
        Master seed; per-domain and per-link randomness is derived from it.
    """

    def __init__(
        self,
        topology: Topology | None = None,
        path: HOPPath | None = None,
        seed: int = 0,
    ) -> None:
        if (topology is None) != (path is None):
            raise ValueError("provide both topology and path, or neither")
        if topology is None:
            topology, path = figure1_topology()
        self.topology = topology
        self.path = path
        self.seed = int(seed)
        self._segment_conditions: dict[str, SegmentCondition] = {}
        self._rng = make_rng(seed)

    # -- configuration -----------------------------------------------------------

    def configure_domain(self, domain: Domain | str, condition: SegmentCondition) -> None:
        """Set the internal forwarding behaviour of a transit domain."""
        name = domain.name if isinstance(domain, Domain) else domain
        transit_names = {segment[0].name for segment in self.path.domain_segments()}
        if name not in transit_names:
            raise ValueError(
                f"domain {name!r} is not a transit domain of {self.path} "
                f"(transit domains: {sorted(transit_names)})"
            )
        self._segment_conditions[name] = condition

    def configure_link(self, first: HOP | int, second: HOP | int, link: InterDomainLink) -> None:
        """Replace the inter-domain link between two HOPs."""
        self.topology.add_link(self.topology.hop(first), self.topology.hop(second), link)

    def condition_for(self, domain: Domain | str) -> SegmentCondition:
        """The configured (or default) condition of a transit domain."""
        name = domain.name if isinstance(domain, Domain) else domain
        return self._segment_conditions.get(name, SegmentCondition())

    # -- execution ----------------------------------------------------------------

    def run(self, packets: Sequence[Packet]) -> PathObservation:
        """Propagate ``packets`` along the path and record observations."""
        observations: dict[int, list[tuple[Packet, float]]] = {
            hop.hop_id: [] for hop in self.path.hops
        }
        domain_truth: dict[str, DomainGroundTruth] = {
            segment[0].name: DomainGroundTruth(domain=segment[0].name)
            for segment in self.path.domain_segments()
        }
        link_losses: dict[tuple[int, int], set[int]] = {}

        # The source-edge HOP observes packets at their send times.
        current: list[tuple[Packet, float]] = sorted(
            ((packet, packet.send_time) for packet in packets), key=lambda item: item[1]
        )

        hops = self.path.hops
        for index, hop in enumerate(hops):
            observations[hop.hop_id] = list(current)
            if index + 1 >= len(hops):
                break
            next_hop = hops[index + 1]
            if hop.domain == next_hop.domain:
                current = self._traverse_domain(hop.domain, current, domain_truth)
            else:
                current = self._traverse_link(hop, next_hop, current, link_losses)

        return PathObservation(
            path=self.path,
            observations=observations,
            domain_truth=domain_truth,
            link_losses=link_losses,
        )

    def run_batch(self, batch: PacketBatch) -> BatchPathObservation:
        """Propagate a columnar packet batch along the path.

        The batch twin of :meth:`run`: per-domain delays, losses and
        reordering are applied with array operations, and each HOP's
        observation is recorded as a (batch, times) pair.  For honest
        conditions (no per-packet predicates) the simulated outcome — who was
        dropped where and every observation timestamp — is identical to
        :meth:`run` on the equivalent packet list, because both paths consume
        the same RNG streams in the same order.

        ``preferential_predicate`` / ``drop_predicate`` are supported, but in
        batch runs they are called once with the whole :class:`PacketBatch`
        and must return a boolean mask (a per-packet predicate written for
        :class:`Packet` objects belongs to the object path).
        """
        observations: dict[int, PacketBatch] = {}
        observation_times: dict[int, np.ndarray] = {}
        domain_truth: dict[str, BatchDomainTruth] = {
            segment[0].name: BatchDomainTruth(domain=segment[0].name)
            for segment in self.path.domain_segments()
        }
        link_losses: dict[tuple[int, int], set[int]] = {}

        order = np.argsort(batch.send_time, kind="stable")
        current_batch = batch.take(order)
        current_times = current_batch.send_time.copy()

        hops = self.path.hops
        for index, hop in enumerate(hops):
            observations[hop.hop_id] = current_batch
            observation_times[hop.hop_id] = current_times
            if index + 1 >= len(hops):
                break
            next_hop = hops[index + 1]
            if hop.domain == next_hop.domain:
                current_batch, current_times = self._traverse_domain_batch(
                    hop.domain, current_batch, current_times, domain_truth
                )
            else:
                current_batch, current_times = self._traverse_link_batch(
                    hop, next_hop, current_batch, current_times, link_losses
                )

        return BatchPathObservation(
            path=self.path,
            batches=observations,
            times=observation_times,
            domain_truth=domain_truth,
            link_losses=link_losses,
        )

    # -- internals ------------------------------------------------------------------

    @staticmethod
    def _predicate_mask(predicate, batch: PacketBatch, name: str) -> np.ndarray:
        """Evaluate a batch predicate and validate the returned mask."""
        mask = np.asarray(predicate(batch))
        if mask.dtype != np.bool_ or mask.shape != (len(batch),):
            raise TypeError(
                f"{name} must map a PacketBatch to a boolean mask of shape "
                f"({len(batch)},); got dtype {mask.dtype}, shape {mask.shape}. "
                "Per-packet predicates belong to PathScenario.run()."
            )
        return mask

    def domain_effects_batch(
        self, condition: SegmentCondition, batch: PacketBatch, arrival_times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply a domain condition to one contiguous span of arrivals.

        Returns ``(lost_mask, egress_times)``.  Consumes each model's RNG
        sequentially in arrival order, so feeding a stream through this in
        consecutive chunks draws exactly what one whole-stream call would —
        the contract the streaming engine (:mod:`repro.engine`) builds on.
        """
        count = len(batch)
        delays = np.asarray(condition.delay_model.delays(arrival_times), dtype=float)
        if len(delays) != count:
            raise ValueError(
                f"delay model returned {len(delays)} delays for {count} packets"
            )

        if condition.preferential_predicate is not None:
            preferential = self._predicate_mask(
                condition.preferential_predicate, batch, "preferential_predicate"
            )
        else:
            preferential = np.zeros(count, dtype=bool)
        if condition.drop_predicate is not None:
            targeted = self._predicate_mask(condition.drop_predicate, batch, "drop_predicate")
        else:
            targeted = np.zeros(count, dtype=bool)

        if preferential.any() or targeted.any():
            # Mirror the scalar path's draw order exactly: the loss model is
            # only consulted for packets that are neither preferential nor
            # already dropped by the targeted predicate.
            lost = targeted.copy()
            loss_model = condition.loss_model
            for position in np.flatnonzero(~(preferential | targeted)):
                if loss_model.drops(int(position)):
                    lost[position] = True
        else:
            lost = condition.loss_model.drops_batch(0, count)

        egress_times = np.where(
            preferential, arrival_times + condition.preferential_delay, arrival_times + delays
        )
        return lost, egress_times

    def _traverse_domain_batch(
        self,
        domain: Domain,
        batch: PacketBatch,
        arrival_times: np.ndarray,
        domain_truth: dict[str, BatchDomainTruth],
    ) -> tuple[PacketBatch, np.ndarray]:
        condition = self.condition_for(domain)
        truth = domain_truth[domain.name]
        count = len(batch)
        if count == 0:
            return batch, arrival_times

        lost, egress_times = self.domain_effects_batch(condition, batch, arrival_times)
        delivered = ~lost

        truth.lost_uids = np.concatenate([truth.lost_uids, batch.uid[lost]])
        truth.delivered_uids = np.concatenate([truth.delivered_uids, batch.uid[delivered]])
        truth.ingress_times = np.concatenate([truth.ingress_times, arrival_times[delivered]])
        truth.egress_times = np.concatenate([truth.egress_times, egress_times[delivered]])

        survivors = np.flatnonzero(delivered)
        survivor_egress = egress_times[survivors]
        # Natural reordering from variable delays, then any extra reordering.
        sort_order = np.argsort(survivor_egress, kind="stable")
        survivors = survivors[sort_order]
        survivor_egress = survivor_egress[sort_order]
        reorder, perturbed_times = condition.reordering.apply(survivor_egress)
        reorder = np.asarray(reorder)
        return (
            batch.take(survivors[reorder]),
            np.asarray(perturbed_times, dtype=np.float64),
        )

    def _traverse_link_batch(
        self,
        upstream: HOP,
        downstream: HOP,
        batch: PacketBatch,
        arrival_times: np.ndarray,
        link_losses: dict[tuple[int, int], set[int]],
    ) -> tuple[PacketBatch, np.ndarray]:
        link = self.topology.link_between(upstream, downstream)
        key = (upstream.hop_id, downstream.hop_id)
        lost = link_losses.setdefault(key, set())
        delivered, far_times = link.transfer_batch(arrival_times)
        lost.update(int(uid) for uid in batch.uid[~delivered])
        survivors = np.flatnonzero(delivered)
        sort_order = np.argsort(far_times, kind="stable")
        return batch.take(survivors[sort_order]), far_times[sort_order]

    def _traverse_domain(
        self,
        domain: Domain,
        arrivals: list[tuple[Packet, float]],
        domain_truth: dict[str, DomainGroundTruth],
    ) -> list[tuple[Packet, float]]:
        condition = self.condition_for(domain)
        truth = domain_truth[domain.name]
        if not arrivals:
            return []

        arrival_times = np.asarray([time for _, time in arrivals], dtype=float)
        delays = np.asarray(condition.delay_model.delays(arrival_times), dtype=float)
        if len(delays) != len(arrivals):
            raise ValueError(
                f"delay model returned {len(delays)} delays for {len(arrivals)} packets"
            )

        survivors: list[tuple[Packet, float]] = []
        predicate = condition.preferential_predicate
        drop_predicate = condition.drop_predicate
        loss_model = condition.loss_model
        for position, (packet, ingress_time) in enumerate(arrivals):
            preferential = predicate is not None and predicate(packet)
            targeted_drop = drop_predicate is not None and drop_predicate(packet)
            if targeted_drop or (not preferential and loss_model.drops(position)):
                truth.lost.add(packet.uid)
                continue
            delay = condition.preferential_delay if preferential else float(delays[position])
            egress_time = ingress_time + delay
            truth.delivered[packet.uid] = (ingress_time, egress_time)
            survivors.append((packet, egress_time))

        # Natural reordering from variable delays, then any extra reordering.
        survivors.sort(key=lambda item: item[1])
        egress_times = np.asarray([time for _, time in survivors], dtype=float)
        order, perturbed_times = condition.reordering.apply(egress_times)
        return [
            (survivors[int(original_index)][0], float(perturbed_times[output_index]))
            for output_index, original_index in enumerate(order)
        ]

    def _traverse_link(
        self,
        upstream: HOP,
        downstream: HOP,
        arrivals: list[tuple[Packet, float]],
        link_losses: dict[tuple[int, int], set[int]],
    ) -> list[tuple[Packet, float]]:
        link = self.topology.link_between(upstream, downstream)
        key = (upstream.hop_id, downstream.hop_id)
        lost = link_losses.setdefault(key, set())
        transferred: list[tuple[Packet, float]] = []
        for packet, handoff_time in arrivals:
            arrival = link.transfer(handoff_time)
            if arrival is None:
                lost.add(packet.uid)
                continue
            transferred.append((packet, arrival))
        transferred.sort(key=lambda item: item[1])
        return transferred
