"""The mesh scenario: many HOP paths over one shared topology.

A :class:`MeshScenario` drives N paths of a topology at once.  Each path's
traffic propagates through its own :class:`PathScenario` — with its *own*
per-(path, domain) condition models, so a path's simulated outcome is
bit-identical to running it in isolation — and every HOP's observation stream
is the timestamp-ordered union of all paths crossing it (stable merge, ties
broken by path order).  That union is what a shared HOP's collector actually
sees in the paper's mesh setting; the per-(prefix-pair) classification inside
:class:`~repro.core.hop.HOPCollector` then recovers per-path receipts that
byte-match the isolated runs (the mesh/isolation parity property).

Per-path condition models (rather than one shared model applied to the
union) are a deliberate modelling choice: the stationary delay/loss models
are statistically exchangeable across the split, and per-path independence
is what makes mesh receipts exactly reconcilable with single-path runs —
the foundation of the conformance test subsystem.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.net.batch import PacketBatch
from repro.net.topology import Domain, HOP, HOPPath, Topology
from repro.simulation.scenario import (
    BatchDomainTruth,
    BatchPathObservation,
    PathScenario,
    SegmentCondition,
)

__all__ = ["MeshObservation", "MeshScenario", "merge_hop_streams"]


def merge_hop_streams(
    spans: Sequence[tuple[PacketBatch, np.ndarray]],
) -> tuple[PacketBatch, np.ndarray]:
    """Stable timestamp merge of several paths' observation spans at one HOP.

    Spans are concatenated in the order given (path order) and stable-sorted
    by observation time, so equal timestamps keep path order — and, crucially,
    each path's packets keep their relative order, which is why per-path
    collector state is independent of how the paths interleave.
    """
    if len(spans) == 1:
        return spans[0]
    batch = PacketBatch.concat([entry[0] for entry in spans])
    times = np.concatenate([entry[1] for entry in spans])
    order = np.argsort(times, kind="stable")
    return batch.take(order), times[order]


@dataclass
class MeshObservation:
    """The result of propagating every path's traffic through a mesh.

    ``hop_batches``/``hop_times`` hold each HOP's merged observation union;
    ``path_observations`` keeps the per-path batch observations (including
    per-(path, domain) ground truth) in path order.
    """

    paths: tuple[HOPPath, ...]
    path_observations: tuple[BatchPathObservation, ...]
    hop_batches: dict[int, PacketBatch] = field(default_factory=dict)
    hop_times: dict[int, np.ndarray] = field(default_factory=dict)

    def at_hop(self, hop: HOP | int) -> tuple[PacketBatch, np.ndarray]:
        """The merged (batch, observation times) union observed at a HOP."""
        hop_id = hop.hop_id if isinstance(hop, HOP) else hop
        return self.hop_batches[hop_id], self.hop_times[hop_id]

    def observation_for(self, path_index: int) -> BatchPathObservation:
        """One path's isolated batch observation."""
        return self.path_observations[path_index]

    def truth_for(self, path_index: int, domain: Domain | str) -> BatchDomainTruth:
        """Ground truth of one domain on one path."""
        return self.path_observations[path_index].truth_for(domain)


class MeshScenario:
    """Propagates N paths' traffic over one shared topology.

    Parameters
    ----------
    topology, paths:
        The shared topology and the HOP paths to drive; prefix pairs must be
        distinct (they are what classifies shared-HOP traffic back into
        paths).
    seed:
        Base seed handed to every per-path :class:`PathScenario`.

    Conditions are configured per domain via a *factory* called once per
    crossing path (:meth:`configure_domain`), because condition models carry
    RNG state and each path must consume an independent stream — see the
    module docstring.
    """

    def __init__(
        self,
        topology: Topology | None = None,
        paths: Sequence[HOPPath] | None = None,
        seed: int = 0,
    ) -> None:
        if (topology is None) != (paths is None):
            raise ValueError("provide both topology and paths, or neither")
        if topology is None:
            from repro.net.topology import generate_mesh_topology

            topology, paths = generate_mesh_topology(seed=seed)
        paths = tuple(paths)
        if not paths:
            raise ValueError("a mesh scenario needs at least one path")
        pairs = [path.prefix_pair for path in paths]
        if len(set(pairs)) != len(pairs):
            raise ValueError(
                "mesh paths must have distinct prefix pairs (they classify "
                "shared-HOP traffic back into paths)"
            )
        self.topology = topology
        self.paths = paths
        self.seed = int(seed)
        self.path_scenarios: tuple[PathScenario, ...] = tuple(
            PathScenario(topology, path, seed=seed) for path in paths
        )

    # -- configuration -----------------------------------------------------------------

    def transit_domain_names(self) -> tuple[str, ...]:
        """Names of all domains that are transit on at least one path, sorted."""
        names = {
            segment[0].name
            for path in self.paths
            for segment in path.domain_segments()
        }
        return tuple(sorted(names))

    def crossing_path_indices(self, domain: Domain | str) -> tuple[int, ...]:
        """Indices of the paths on which ``domain`` is a transit domain."""
        name = domain.name if isinstance(domain, Domain) else domain
        return tuple(
            index
            for index, path in enumerate(self.paths)
            if any(segment[0].name == name for segment in path.domain_segments())
        )

    def configure_domain(
        self,
        domain: Domain | str,
        condition_factory: Callable[[int], SegmentCondition],
    ) -> None:
        """Install a domain's forwarding behaviour on every crossing path.

        ``condition_factory(path_index)`` must return a *fresh*
        :class:`SegmentCondition` per call — per-path model instances are what
        keep each path's RNG stream independent of which other paths run.
        """
        indices = self.crossing_path_indices(domain)
        name = domain.name if isinstance(domain, Domain) else domain
        if not indices:
            known = ", ".join(self.transit_domain_names()) or "<none>"
            raise ValueError(
                f"domain {name!r} is a transit domain of no mesh path "
                f"(transit domains: {known})"
            )
        for index in indices:
            self.path_scenarios[index].configure_domain(
                name, condition_factory(index)
            )

    def override_domain(self, domain: Domain | str, **overrides) -> None:
        """Apply :class:`SegmentCondition` field overrides on every crossing path.

        Used for condition-role adversaries (marker dropping, biased
        treatment), whose stateless predicates may be shared across paths.
        """
        indices = self.crossing_path_indices(domain)
        if not indices:
            name = domain.name if isinstance(domain, Domain) else domain
            known = ", ".join(self.transit_domain_names()) or "<none>"
            raise ValueError(
                f"domain {name!r} is a transit domain of no mesh path, so its "
                f"forwarding behaviour cannot be overridden "
                f"(transit domains: {known})"
            )
        for index in indices:
            scenario = self.path_scenarios[index]
            scenario.configure_domain(
                domain, dataclasses.replace(scenario.condition_for(domain), **overrides)
            )

    # -- execution ---------------------------------------------------------------------

    def run_batch(self, batches: Sequence[PacketBatch]) -> MeshObservation:
        """Propagate one batch per path and merge the per-HOP observations.

        ``batches[i]`` is path ``i``'s source traffic (its packets must carry
        addresses inside path ``i``'s prefix pair).  Each path propagates
        independently; every HOP's observation union is then merged
        timestamp-stably across the paths crossing it.
        """
        if len(batches) != len(self.paths):
            raise ValueError(
                f"expected {len(self.paths)} batches (one per path), "
                f"got {len(batches)}"
            )
        observations = tuple(
            scenario.run_batch(batch)
            for scenario, batch in zip(self.path_scenarios, batches)
        )
        hop_batches: dict[int, PacketBatch] = {}
        hop_times: dict[int, np.ndarray] = {}
        spans_by_hop: dict[int, list[tuple[PacketBatch, np.ndarray]]] = {}
        for observation in observations:
            for hop_id, batch in observation.batches.items():
                spans_by_hop.setdefault(hop_id, []).append(
                    (batch, observation.times[hop_id])
                )
        for hop_id, spans in spans_by_hop.items():
            hop_batches[hop_id], hop_times[hop_id] = merge_hop_streams(spans)
        return MeshObservation(
            paths=self.paths,
            path_observations=observations,
            hop_batches=hop_batches,
            hop_times=hop_times,
        )
