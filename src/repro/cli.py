"""The ``repro`` command-line interface.

Campaigns are the protocol's unit of accountability — a spec is contracted,
run over N intervals, and its durable store is what a customer audits later.
The CLI covers that whole lifecycle plus the repo's golden-fixture workflow:

* ``repro run spec.json`` — create a run store and execute the campaign,
  checkpointing after every interval; safe to kill at any instant.
* ``repro resume runs/<id>`` — continue a (possibly killed) run from its last
  completed interval; the finished store is byte-identical to an
  uninterrupted run, whatever engine either invocation used.
* ``repro report runs/<id>`` — the campaign SLA verdict table (per-interval
  history + campaign-level pooled statistics and verdicts); ``--json`` emits
  the byte-stable machine-readable report the service API and dashboard
  consume (:func:`repro.service.report.run_report`).
* ``repro compare runs/<a> runs/<b> ...`` — per-domain statistics side by
  side across runs; sketch-tier runs are annotated with their guaranteed
  quantile error bound so precision differences are visible.
* ``repro list [--runs-dir]`` — every run store under a root, with progress
  and campaign SLA verdicts (the same scan the service's ``RunIndex`` uses).
* ``repro serve`` — the measurement service: HTTP API + job queue + browser
  dashboard over a store root (see :mod:`repro.service`).
* ``repro regen-goldens`` — regenerate the conformance golden fixtures, or
  (``--check``) regenerate into a scratch directory and diff against the
  committed ones, failing with a readable diff on drift.

Engine selection (``--engine``, ``--shards``, ``--chunk-size``,
``--checkpoint-every``, or one declarative ``--policy policy.json`` — an
:class:`~repro.api.spec.ExecutionPolicy`) is an execution-only knob: the
engines produce byte-identical results, so a store written by one engine
resumes and verifies under any other.
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, NoReturn, Sequence

from repro.api.spec import CampaignSpec, ExecutionPolicy, MeshSpec
from repro.engine.campaign import (
    CampaignAccumulator,
    CampaignEvent,
    CampaignRunner,
    CheckpointWritten,
    IntervalCommitted,
)
from repro.store import RunStore, RunStoreError, stable_json

__all__ = ["main"]


def _fail(message: str) -> NoReturn:
    raise SystemExit(f"repro: error: {message}")


def _build_policy(spec: CampaignSpec, args: argparse.Namespace) -> ExecutionPolicy:
    """Build the run's :class:`ExecutionPolicy` and validate it against the
    spec's cell, before any work (and before a store is created)."""
    knobs_given = (
        args.engine is not None
        or args.shards != 1
        or args.chunk_size is not None
        or args.throttle != 0.0
        or args.checkpoint_every is not None
    )
    if args.policy is not None:
        if knobs_given:
            _fail(
                "pass either --policy or the individual --engine/--shards/"
                "--chunk-size/--throttle/--checkpoint-every knobs, not both"
            )
        policy_path = Path(args.policy)
        if not policy_path.exists():
            _fail(f"policy file {args.policy} does not exist")
        try:
            policy = ExecutionPolicy.from_json(policy_path.read_text())
        except (ValueError, json.JSONDecodeError) as exc:
            _fail(f"cannot load execution policy from {args.policy}: {exc}")
    else:
        try:
            policy = ExecutionPolicy(
                engine=args.engine,
                shards=args.shards,
                chunk_size=args.chunk_size,
                throttle=args.throttle,
                checkpoint_every=args.checkpoint_every,
            )
        except ValueError as exc:
            _fail(str(exc))
    if isinstance(spec.cell, MeshSpec) and policy.engine == "scalar":
        _fail(
            f"campaign {spec.name!r} runs a mesh cell, which has no scalar "
            f"engine; use --engine batch or --engine streaming"
        )
    effective = policy.engine or spec.cell.engine
    if effective != "streaming" and (
        policy.shards != 1
        or policy.chunk_size is not None
        or policy.checkpoint_every is not None
    ):
        _fail(
            f"--shards/--chunk-size/--checkpoint-every apply to the streaming "
            f"engine only (this run executes on {effective!r}; add --engine "
            f"streaming)"
        )
    try:
        return policy.bind(spec.cell)
    except ValueError as exc:
        _fail(str(exc))


def _load_spec(path: str) -> CampaignSpec:
    spec_path = Path(path)
    if not spec_path.exists():
        _fail(f"spec file {path} does not exist")
    try:
        return CampaignSpec.from_json(spec_path.read_text())
    except (ValueError, json.JSONDecodeError) as exc:
        _fail(f"cannot load campaign spec from {path}: {exc}")


def _execution_knobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=("batch", "scalar", "streaming"),
        default=None,
        help="execution-only engine override (results are byte-identical)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="process-parallel shards (streaming engine only)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="trace packets per streaming chunk",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="persist a mid-interval stream checkpoint every N chunks "
        "(streaming engine, shards=1); a killed run resumes from the last "
        "chunk boundary instead of the interval start",
    )
    parser.add_argument(
        "--policy",
        default=None,
        metavar="POLICY.JSON",
        help="load every execution knob from an ExecutionPolicy JSON file "
        "(mutually exclusive with the individual knobs above)",
    )
    parser.add_argument(
        "--max-intervals",
        type=int,
        default=None,
        metavar="K",
        help="stop after K further intervals (deterministic partial run; "
        "resume later with `repro resume`)",
    )
    parser.add_argument(
        "--throttle",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep after each interval checkpoint (lets a test harness kill "
        "the run mid-campaign deterministically)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-interval progress"
    )


def _drive(runner: CampaignRunner, args: argparse.Namespace, store: RunStore) -> int:
    spec = runner.spec
    throttle = runner.policy.throttle

    def progress(event: CampaignEvent) -> None:
        if not isinstance(event, IntervalCommitted):
            if isinstance(event, CheckpointWritten) and not args.quiet:
                print(
                    f"  checkpoint: interval {event.interval + 1} at chunk "
                    f"{event.chunk_index}",
                    flush=True,
                )
            return
        record = event.record
        if throttle > 0:
            # The record is already durably checkpointed; sleeping here gives
            # a kill signal a deterministic window between intervals.
            time.sleep(throttle)
        if args.quiet:
            return
        verdicts = record["verdicts"]
        flags = " ".join(
            f"{domain}:{'ok' if verdict['accepted'] else 'REJECTED'}"
            if verdict["accepted"] is not None
            else f"{domain}:unverified"
            for domain, verdict in sorted(verdicts.items())
        )
        print(
            f"interval {record['interval'] + 1}/{spec.intervals} done "
            f"[receipts {record['receipts_digest'][:12]}] {flags}",
            flush=True,
        )

    try:
        outcome = runner.run(max_intervals=args.max_intervals, on_event=progress)
    except KeyboardInterrupt:
        print(
            f"\ninterrupted after {runner.next_interval} completed interval(s); "
            f"continue with: repro resume {store.path}",
            file=sys.stderr,
        )
        return 130
    if outcome.completed:
        if not args.quiet:
            print(f"campaign complete: {store.path} ({spec.intervals} intervals)")
            _print_report(store)
    else:
        print(
            f"stopped after {outcome.next_interval}/{spec.intervals} intervals; "
            f"continue with: repro resume {store.path}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    if args.run_dir is not None:
        run_dir = Path(args.run_dir)
    else:
        run_id = f"{spec.name}-{spec.spec_hash()[:10]}"
        run_dir = Path(args.runs_dir) / run_id
    policy = _build_policy(spec, args)
    try:
        store = RunStore.create(run_dir, spec)
    except RunStoreError as exc:
        _fail(str(exc))
    if not args.quiet:
        print(f"run store: {run_dir} (spec hash {spec.spec_hash()[:12]})")
    runner = CampaignRunner(spec, store, policy=policy)
    return _drive(runner, args, store)


def _http_worker(args: argparse.Namespace) -> int:
    """The ``--worker-only --transport http`` body: a mount-less worker.

    Everything but the coordinator URL, run id and worker identity is
    rejected — the spec, execution policy and lease all come from the
    coordinator's config endpoint, so every worker in the pool is guaranteed
    to compute under the coordinator's exact terms.
    """
    from repro.dist.dispatch import DispatchError, DispatchWorker
    from repro.dist.net import HTTPTransport

    if args.coordinator is None or args.run_id is None:
        _fail(
            "--worker-only --transport http needs --coordinator URL and "
            "--run-id (printed by the coordinator at startup)"
        )
    if args.run_dir is not None:
        _fail(
            "an HTTP worker shares no filesystem with the coordinator; drop "
            "the RUN_DIR argument"
        )
    if args.spec is not None:
        _fail("--spec applies to the coordinator; HTTP workers fetch it from it")
    if args.lease is not None:
        _fail("the lease is coordinator-defined under --transport http")
    if args.chaos_seed is not None or args.chaos_kills:
        _fail("--chaos-seed/--chaos-kills apply to the coordinator only")
    knobs_given = (
        args.engine is not None
        or args.shards != 1
        or args.chunk_size is not None
        or args.throttle != 0.0
        or args.checkpoint_every is not None
        or args.policy is not None
    )
    if knobs_given:
        _fail(
            "execution knobs apply to the coordinator; HTTP workers compute "
            "under the policy its config endpoint serves"
        )
    try:
        transport = HTTPTransport(
            args.coordinator, args.run_id, worker_id=args.worker_id
        )
        worker = DispatchWorker(transport)
        computed = worker.run()
    except DispatchError as exc:
        _fail(str(exc))
    if not args.quiet:
        print(f"worker {worker.worker_id}: computed {computed} interval(s)")
    return 0


def _cmd_dispatch(args: argparse.Namespace) -> int:
    from repro.dist.dispatch import (
        DEFAULT_LEASE,
        ChaosSchedule,
        DispatchCoordinator,
        DispatchError,
        DispatchWorker,
        validate_dispatch_policy,
    )

    if args.worker_only and args.transport == "http":
        return _http_worker(args)
    if args.coordinator is not None or args.run_id is not None:
        _fail(
            "--coordinator/--run-id describe a remote coordinator and apply "
            "to `--worker-only --transport http` workers only"
        )
    if args.run_dir is None:
        _fail(
            "dispatch needs the run-store directory (RUN_DIR) except for "
            "`--worker-only --transport http` workers"
        )
    run_dir = Path(args.run_dir).resolve()
    if args.spec is not None and not (run_dir / "spec.json").exists():
        spec = _load_spec(args.spec)
        try:
            store = RunStore.create(run_dir, spec)
        except RunStoreError as exc:
            _fail(str(exc))
        if not args.quiet:
            print(f"run store: {run_dir} (spec hash {spec.spec_hash()[:12]})")
    else:
        try:
            store = RunStore.open(run_dir)
        except RunStoreError as exc:
            _fail(str(exc))
        if args.spec is not None:
            try:
                store.validate_spec(_load_spec(args.spec))
            except RunStoreError as exc:
                _fail(str(exc))
    lease = args.lease if args.lease is not None else DEFAULT_LEASE
    if lease <= 0:
        _fail(f"--lease must be > 0 seconds, got {lease}")
    if args.max_intervals is not None:
        _fail(
            "dispatch runs a campaign to completion; --max-intervals applies "
            "to `repro run`/`repro resume`"
        )
    policy = _build_policy(store.spec(), args)
    try:
        policy = validate_dispatch_policy(store.spec(), policy)
    except ValueError as exc:
        _fail(str(exc))

    if args.worker_only:
        if args.chaos_seed is not None or args.chaos_kills:
            _fail("--chaos-seed/--chaos-kills apply to the coordinator only")
        worker = DispatchWorker(
            run_dir, policy=policy, worker_id=args.worker_id, lease=lease
        )
        computed = worker.run()
        if not args.quiet:
            print(f"worker {worker.worker_id}: computed {computed} interval(s)")
        return 0

    if args.chaos_kills and args.chaos_seed is None:
        _fail("--chaos-kills needs --chaos-seed so the kill schedule reproduces")
    chaos = None
    if args.chaos_seed is not None:
        chaos = ChaosSchedule(seed=args.chaos_seed, kills=args.chaos_kills)
    spec = store.spec()

    def progress(event: CampaignEvent) -> None:
        if args.quiet or not isinstance(event, IntervalCommitted):
            return
        print(
            f"interval {event.interval + 1}/{spec.intervals} committed "
            f"[receipts {event.record['receipts_digest'][:12]}]",
            flush=True,
        )

    coordinator = DispatchCoordinator(
        store,
        policy=policy,
        workers=args.workers,
        lease=lease,
        chaos=chaos,
        on_event=progress,
        transport=args.transport,
        http_host=args.http_host,
        http_port=args.http_port,
    )
    if coordinator.http_url is not None and not args.quiet:
        print(
            f"dispatch coordinator: {coordinator.http_url}/api/v1/dispatch/"
            f"{coordinator.run_id} (workers connect with: repro dispatch "
            f"--worker-only --transport http --coordinator "
            f"{coordinator.http_url} --run-id {coordinator.run_id})",
            flush=True,
        )
    try:
        coordinator.run()
    except KeyboardInterrupt:
        print(
            f"\ninterrupted after {store.next_interval} committed interval(s); "
            f"continue with: repro dispatch {store.path}",
            file=sys.stderr,
        )
        return 130
    except DispatchError as exc:
        _fail(str(exc))
    if not args.quiet:
        print(f"campaign complete: {store.path} ({spec.intervals} intervals)")
        _print_report(store)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    try:
        store = RunStore.open(args.run_dir)
    except RunStoreError as exc:
        _fail(str(exc))
    policy = _build_policy(store.spec(), args)
    runner = CampaignRunner.resume(store, policy=policy)
    if not args.quiet:
        print(
            f"resuming {store.path} from interval "
            f"{runner.next_interval + 1}/{runner.spec.intervals}"
        )
    return _drive(runner, args, store)


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(str(header).ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _print_report(store: RunStore) -> None:
    spec = store.spec()
    records = store.records()
    accumulator = CampaignAccumulator.from_records(spec, records)
    summary = accumulator.summary()
    persisted = store.summary()
    sla = spec.sla

    print(f"campaign {spec.name!r}: {len(records)}/{spec.intervals} intervals "
          f"(spec hash {store.spec_hash[:12]})")
    if sla is not None:
        print(
            f"SLA {sla.name!r}: delay <= {sla.delay_bound * 1e3:g} ms at "
            f"q={sla.delay_quantile:g}, loss <= {sla.loss_bound * 100:g} %"
        )

    rows = []
    for record in records:
        for domain, estimate in sorted(record["estimates"].items()):
            verdict = record["verdicts"][domain]
            quantile_key = repr(float(sla.delay_quantile)) if sla is not None else None
            delay_text = "n/a"
            quantile_payload = estimate["quantiles"]
            if quantile_payload:
                key = (
                    quantile_key
                    if quantile_key in quantile_payload
                    else sorted(quantile_payload)[0]
                )
                delay_text = f"{quantile_payload[key]['estimate'] * 1e3:.3f}"
            rows.append(
                (
                    record["interval"],
                    domain,
                    delay_text,
                    f"{estimate['loss_rate'] * 100:.3f}",
                    {True: "accepted", False: "REJECTED", None: "unverified"}[
                        verdict["accepted"]
                    ],
                    {True: "ok", False: "VIOLATED", None: "-"}[
                        verdict["sla_compliant"]
                    ],
                )
            )
    print()
    print(
        _format_table(
            ("interval", "domain", "delay[ms]", "loss[%]", "receipts", "sla"), rows
        )
    )

    print()
    campaign_rows = []
    sketch_tiers = set()
    for domain, entry in sorted(summary["domains"].items()):
        delay_text = "n/a"
        if entry["pooled_quantiles"]:
            key = (
                repr(float(sla.delay_quantile))
                if sla is not None and repr(float(sla.delay_quantile)) in entry["pooled_quantiles"]
                else sorted(entry["pooled_quantiles"])[0]
            )
            payload = entry["pooled_quantiles"][key]
            delay_text = f"{payload['estimate'] * 1e3:.3f}"
            if entry.get("estimation") is not None:
                # Sketch estimates are honest about their guaranteed error.
                delay_text += f" ±{(payload['upper'] - payload['estimate']) * 1e3:.3f}"
        if entry.get("estimation") is not None:
            tier = entry["estimation"]
            sketch_tiers.add((tier["sketch_size"], tier["relative_error_bound"]))
        campaign_rows.append(
            (
                domain,
                entry["delay_sample_count"],
                delay_text,
                f"{entry['loss_rate'] * 100:.3f}",
                f"{entry['acceptance_rate'] * 100:.0f}%",
                {True: "COMPLIANT", False: "IN VIOLATION", None: "-"}[
                    entry["sla_compliant"]
                ],
            )
        )
    print(
        _format_table(
            ("domain", "samples", "pooled delay[ms]", "loss[%]", "accepted", "sla verdict"),
            campaign_rows,
        )
    )
    for size, bound in sorted(sketch_tiers):
        print(
            f"estimation tier: sketch (size {size}, guaranteed relative "
            f"error <= {bound:.3%})"
        )

    if persisted is not None and persisted != summary:
        print(
            "\nWARNING: persisted summary.json disagrees with the summary "
            "recomputed from the records — the store has been edited",
            file=sys.stderr,
        )


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        store = RunStore.open(args.run_dir)
    except RunStoreError as exc:
        _fail(str(exc))
    if args.json:
        from repro.service.report import run_report

        # stable_json makes the emitted bytes a pure function of the store:
        # CI, the dashboard and scripts all diff this exact serialization.
        print(stable_json(run_report(store)))
        return 0
    _print_report(store)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.service.report import compare_runs

    if len(args.run_dirs) < 2:
        _fail("compare needs at least two run stores")
    try:
        stores = [RunStore.open(run_dir) for run_dir in args.run_dirs]
    except RunStoreError as exc:
        _fail(str(exc))
    payload = compare_runs(stores)
    if args.json:
        print(stable_json(payload))
        return 0
    for run in payload["runs"]:
        state = "complete" if run["intervals"]["complete"] else "in progress"
        verdict = {True: "COMPLIANT", False: "IN VIOLATION", None: "-"}[
            run["sla_compliant"]
        ]
        print(
            f"run {run['run']!r}: campaign {run['name']!r}, "
            f"{run['intervals']['completed']}/{run['intervals']['total']} "
            f"intervals ({state}), sla {verdict}"
        )
    for domain, per_run in sorted(payload["domains"].items()):
        rows = []
        for run_id, entry in per_run.items():
            delay_text = "n/a"
            if entry["pooled_quantiles"]:
                key = sorted(entry["pooled_quantiles"])[0]
                quantile = entry["pooled_quantiles"][key]
                delay_text = f"{quantile['estimate'] * 1e3:.3f}"
                if entry.get("estimation") is not None:
                    delay_text += (
                        f" ±{(quantile['upper'] - quantile['estimate']) * 1e3:.3f}"
                    )
            tier = entry.get("estimation")
            tier_text = (
                f"sketch ±{tier['relative_error_bound']:.3%}"
                if tier is not None
                else "exact"
            )
            rows.append(
                (
                    run_id,
                    entry["delay_sample_count"],
                    delay_text,
                    f"{entry['loss_rate'] * 100:.3f}",
                    f"{entry['acceptance_rate'] * 100:.0f}%",
                    tier_text,
                    {True: "COMPLIANT", False: "IN VIOLATION", None: "-"}[
                        entry["sla_compliant"]
                    ],
                )
            )
        print()
        print(f"domain {domain}:")
        print(
            _format_table(
                (
                    "run",
                    "samples",
                    "delay[ms]",
                    "loss[%]",
                    "accepted",
                    "estimation",
                    "sla verdict",
                ),
                rows,
            )
        )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.service.index import RunIndex

    root = Path(args.runs_dir)
    entries = RunIndex(root).entries()
    if args.json:
        print(stable_json({"runs": [entry.to_dict() for entry in entries]}))
        return 0
    if not entries:
        print(f"no run stores under {root}")
        return 0
    rows = [
        (
            entry.run_id,
            entry.name,
            f"{entry.completed}/{entry.intervals}",
            "complete" if entry.complete else "in progress",
            {True: "COMPLIANT", False: "IN VIOLATION", None: "-"}[
                entry.sla_compliant
            ],
            entry.spec_hash[:12],
        )
        for entry in entries
    ]
    print(
        _format_table(
            ("run", "campaign", "intervals", "state", "sla verdict", "spec hash"),
            rows,
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import serve

    if args.port < 0 or args.port > 65535:
        _fail(f"--port must be in [0, 65535], got {args.port}")
    if args.workers < 1:
        _fail(f"--workers must be >= 1, got {args.workers}")
    if args.dispatch_workers < 1:
        _fail(f"--dispatch-workers must be >= 1, got {args.dispatch_workers}")
    serve(
        store_root=args.store_root,
        host=args.host,
        port=args.port,
        workers=args.workers,
        execution=args.execution,
        dispatch_workers=args.dispatch_workers,
        quiet=args.quiet,
    )
    return 0


def _find_conformance_dir() -> Path:
    """Locate tests/conformance by walking up from the working directory."""
    probe = Path.cwd().resolve()
    for candidate in (probe, *probe.parents):
        conformance = candidate / "tests" / "conformance"
        if (conformance / "scenarios.py").exists():
            return conformance
    _fail(
        "cannot find tests/conformance above the current directory; "
        "run from a repository checkout"
    )


def _regen_into(target: Path, conformance: Path) -> int:
    environment = dict(os.environ)
    environment["REPRO_GOLDEN_DIR"] = str(target)
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(conformance),
            "-q",
            "--regen-goldens",
        ],
        cwd=conformance.parent.parent,
        env=environment,
    )
    return completed.returncode


def _cmd_regen_goldens(args: argparse.Namespace) -> int:
    conformance = _find_conformance_dir()
    committed = conformance / "goldens"

    if args.check:
        with tempfile.TemporaryDirectory(prefix="repro-goldens-") as scratch:
            target = Path(scratch) / "goldens"
            target.mkdir()
            status = _regen_into(target, conformance)
            if status != 0:
                _fail(f"golden regeneration failed (pytest exit {status})")
            drift = _diff_golden_dirs(committed, target)
            if drift:
                print(drift)
                print(
                    "\ngolden drift detected: the committed conformance goldens "
                    "no longer reproduce; regenerate with `repro regen-goldens` "
                    "and review the diff",
                    file=sys.stderr,
                )
                return 1
            print(f"goldens reproduce: {committed} matches a fresh regeneration")
            return 0

    target = Path(args.out) if args.out else committed
    target.mkdir(parents=True, exist_ok=True)
    status = _regen_into(target, conformance)
    if status != 0:
        _fail(f"golden regeneration failed (pytest exit {status})")
    print(f"goldens regenerated into {target}")
    return 0


def _diff_golden_dirs(committed: Path, fresh: Path) -> str:
    """A readable unified diff between two golden directories ('' when equal)."""
    chunks: list[str] = []
    names = sorted(
        {path.name for path in committed.glob("*.json")}
        | {path.name for path in fresh.glob("*.json")}
    )
    for name in names:
        committed_path = committed / name
        fresh_path = fresh / name
        committed_lines = (
            committed_path.read_text().splitlines(keepends=True)
            if committed_path.exists()
            else []
        )
        fresh_lines = (
            fresh_path.read_text().splitlines(keepends=True)
            if fresh_path.exists()
            else []
        )
        if committed_lines == fresh_lines:
            continue
        chunks.append(
            "".join(
                difflib.unified_diff(
                    committed_lines,
                    fresh_lines,
                    fromfile=f"committed/{name}",
                    tofile=f"regenerated/{name}",
                )
            )
        )
    return "\n".join(chunks)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Verifiable network-performance measurement campaigns "
        "(checkpointable runs, durable stores, conformance goldens).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run a campaign spec into a fresh run store"
    )
    run_parser.add_argument("spec", help="path to a CampaignSpec JSON file")
    run_parser.add_argument(
        "--runs-dir",
        default="runs",
        help="directory holding run stores (default: ./runs)",
    )
    run_parser.add_argument(
        "--run-dir",
        default=None,
        help="explicit run-store directory (overrides --runs-dir/<id>)",
    )
    _execution_knobs(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    resume_parser = commands.add_parser(
        "resume", help="continue a (possibly killed) run from its store"
    )
    resume_parser.add_argument("run_dir", help="the run-store directory")
    _execution_knobs(resume_parser)
    resume_parser.set_defaults(handler=_cmd_resume)

    dispatch_parser = commands.add_parser(
        "dispatch",
        help="run a campaign across a pool of workers (distributed dispatch); "
        "the finished store is byte-identical to a single-host `repro run`",
    )
    dispatch_parser.add_argument(
        "run_dir",
        nargs="?",
        default=None,
        help="the run-store directory (shared by every worker and the "
        "coordinator; create it here with --spec if it does not exist yet). "
        "Omitted for `--worker-only --transport http` workers, which need "
        "no filesystem access at all",
    )
    dispatch_parser.add_argument(
        "--spec",
        default=None,
        metavar="SPEC.JSON",
        help="create the run store from this CampaignSpec when RUN_DIR holds "
        "none (validated against the store otherwise)",
    )
    dispatch_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="local worker processes to spawn (default: 2; 0 = commit-only "
        "coordinator fed by --worker-only processes on other hosts)",
    )
    dispatch_parser.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="interval claim lease; a worker that stops heartbeating for this "
        "long is presumed dead and its interval is re-claimed (default: 30; "
        "under --transport http the coordinator defines it for every worker)",
    )
    dispatch_parser.add_argument(
        "--transport",
        choices=("fs", "http"),
        default="fs",
        help="how workers reach the coordinator: 'fs' = the shared run "
        "directory (claim files + staged files), 'http' = the versioned "
        "service API (coordinator-clock leases, digest-checked uploads, no "
        "shared filesystem)",
    )
    dispatch_parser.add_argument(
        "--coordinator",
        default=None,
        metavar="URL",
        help="the coordinator's base URL (with --worker-only --transport "
        "http; printed by the coordinator at startup)",
    )
    dispatch_parser.add_argument(
        "--run-id",
        default=None,
        help="the dispatching run's id on the coordinator (with "
        "--worker-only --transport http)",
    )
    dispatch_parser.add_argument(
        "--http-host",
        default="127.0.0.1",
        metavar="HOST",
        help="bind address for the coordinator's dispatch endpoints under "
        "--transport http (default: 127.0.0.1; use 0.0.0.0 for remote "
        "workers)",
    )
    dispatch_parser.add_argument(
        "--http-port",
        type=int,
        default=0,
        metavar="PORT",
        help="bind port for the coordinator's dispatch endpoints under "
        "--transport http (default: 0 = ephemeral)",
    )
    dispatch_parser.add_argument(
        "--worker-only",
        action="store_true",
        help="run one claim/compute/stage worker against RUN_DIR and exit "
        "when no work remains (the remote-host role; a coordinator elsewhere "
        "commits)",
    )
    dispatch_parser.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity for claims (default: <host>-<pid>)",
    )
    dispatch_parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="chaos hook: SIGKILL local workers mid-interval on a seeded, "
        "reproducible schedule (testing/CI)",
    )
    dispatch_parser.add_argument(
        "--chaos-kills",
        type=int,
        default=0,
        metavar="K",
        help="number of chaos kills to deliver (requires --chaos-seed)",
    )
    _execution_knobs(dispatch_parser)
    dispatch_parser.set_defaults(handler=_cmd_dispatch)

    report_parser = commands.add_parser(
        "report", help="print the campaign SLA verdict table for a run store"
    )
    report_parser.add_argument("run_dir", help="the run-store directory")
    report_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the byte-stable machine-readable report (the same "
        "serialization the service API and dashboard consume)",
    )
    report_parser.set_defaults(handler=_cmd_report)

    compare_parser = commands.add_parser(
        "compare",
        help="compare per-domain campaign statistics across run stores "
        "(sketch-tier runs are annotated with their error bound)",
    )
    compare_parser.add_argument(
        "run_dirs", nargs="+", metavar="RUN_DIR", help="two or more run stores"
    )
    compare_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    compare_parser.set_defaults(handler=_cmd_compare)

    list_parser = commands.add_parser(
        "list", help="list every run store under a runs directory"
    )
    list_parser.add_argument(
        "--runs-dir",
        default="runs",
        help="directory holding run stores (default: ./runs)",
    )
    list_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    list_parser.set_defaults(handler=_cmd_list)

    serve_parser = commands.add_parser(
        "serve",
        help="run the measurement service (HTTP API + job queue + dashboard) "
        "over a store root",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8642, help="bind port (default: 8642; 0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--store-root",
        default="runs",
        help="directory holding run stores (default: ./runs; created if missing)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent campaign workers (default: 2)",
    )
    serve_parser.add_argument(
        "--execution",
        choices=("subprocess", "inprocess", "dispatch", "dispatch_http"),
        default="subprocess",
        help="run campaigns as kill-safe `repro resume` subprocesses (default), "
        "in worker threads, or as distributed `repro dispatch` coordinators "
        "(dispatch_http routes the worker pool through the HTTP dispatch "
        "protocol instead of the shared filesystem)",
    )
    serve_parser.add_argument(
        "--dispatch-workers",
        type=int,
        default=2,
        help="worker processes per campaign under --execution dispatch "
        "(default: 2)",
    )
    serve_parser.add_argument(
        "--quiet", action="store_true", help="suppress the startup banner"
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    regen_parser = commands.add_parser(
        "regen-goldens",
        help="regenerate the conformance golden fixtures (or --check for drift)",
    )
    regen_parser.add_argument(
        "--out",
        default=None,
        help="write regenerated goldens here instead of tests/conformance/goldens",
    )
    regen_parser.add_argument(
        "--check",
        action="store_true",
        help="regenerate into a scratch directory and fail with a diff if the "
        "committed goldens no longer reproduce",
    )
    regen_parser.set_defaults(handler=_cmd_regen_goldens)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
