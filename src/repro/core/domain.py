"""A domain's participation in VPM.

A :class:`DomainAgent` owns the HOP collectors and processors of one domain's
hand-off points on one path, feeds them the traffic the domain observes, and
produces the domain's receipts for dissemination.  Honest domains report the
collectors' output verbatim; adversarial behaviours (Section 2.1's threat
model) are modelled by the strategies in :mod:`repro.adversary`, which hook
the :meth:`DomainAgent.transform_report` extension point to fabricate or
distort receipts *after* honest collection — exactly the capability the threat
model grants a lying domain (it can misreport what it observed, but it cannot
observe traffic it never saw).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.hop import HOPCollector, HOPConfig, HOPProcessor, HOPReport
from repro.net.topology import Domain, HOPPath
from repro.simulation.scenario import BatchPathObservation, PathObservation

__all__ = ["DomainAgent"]


class DomainAgent:
    """Runs VPM at every HOP a domain exposes on one or more paths.

    Parameters
    ----------
    domain:
        The domain this agent acts for.
    path:
        The HOP path the agent monitors, or — in a mesh — the sequence of
        paths crossing the domain.  Each of the domain's HOPs gets exactly one
        collector, with every path through that HOP registered on it, so a
        shared HOP's collector classifies the interleaved traffic union back
        into per-(prefix-pair) state.
    config:
        The HOP configuration applied to all of the domain's HOPs on the path
        (per-HOP overrides can be passed via ``per_hop_config``).
    max_diff:
        The MaxDiff value written into this domain's PathIDs (assumed agreed
        with each neighbor across the corresponding inter-domain link).
    per_hop_config:
        Optional mapping of HOP id to a :class:`HOPConfig` overriding
        ``config`` for that HOP.
    """

    def __init__(
        self,
        domain: Domain | str,
        path: HOPPath | Sequence[HOPPath],
        config: HOPConfig | None = None,
        max_diff: float = 1e-3,
        per_hop_config: dict[int, HOPConfig] | None = None,
    ) -> None:
        name = domain.name if isinstance(domain, Domain) else domain
        paths = (path,) if isinstance(path, HOPPath) else tuple(path)
        if not paths:
            raise ValueError(f"domain {name!r} was given no paths to monitor")
        hops = []
        for entry in paths:
            for hop in entry.hops_of(name):
                if all(existing.hop_id != hop.hop_id for existing in hops):
                    hops.append(hop)
        if not hops:
            described = ", ".join(str(entry) for entry in paths)
            raise ValueError(f"domain {name!r} has no HOPs on {described}")
        self.domain_name = name
        self.path = paths[0]
        self.paths = paths
        self.config = config or HOPConfig()
        self.max_diff = float(max_diff)
        per_hop_config = per_hop_config or {}

        self._collectors: dict[int, HOPCollector] = {}
        self._processors: dict[int, HOPProcessor] = {}
        for hop in hops:
            hop_config = per_hop_config.get(hop.hop_id, self.config)
            collector = HOPCollector(hop, hop_config)
            for entry in paths:
                if any(candidate.hop_id == hop.hop_id for candidate in entry.hops):
                    collector.register_path(entry, max_diff=self.max_diff)
            self._collectors[hop.hop_id] = collector
            self._processors[hop.hop_id] = HOPProcessor(collector)

    # -- observation -----------------------------------------------------------

    @property
    def hop_ids(self) -> tuple[int, ...]:
        """The HOPs this agent operates, in path order."""
        return tuple(sorted(self._collectors))

    def collector(self, hop_id: int) -> HOPCollector:
        """The collector running at one of the domain's HOPs."""
        return self._collectors[hop_id]

    def replace_collector(self, hop_id: int, collector: HOPCollector) -> None:
        """Install a collector (e.g. merged shard state) at one of the HOPs.

        The shard-parallel streaming engine merges per-shard collector states
        into one collector per HOP and installs it here before reports are
        generated; the replacement gets a fresh processor.
        """
        if hop_id not in self._collectors:
            raise KeyError(f"domain {self.domain_name!r} has no HOP {hop_id}")
        self._collectors[hop_id] = collector
        self._processors[hop_id] = HOPProcessor(collector)

    def observe(self, observation: PathObservation | BatchPathObservation) -> None:
        """Feed each of the domain's HOPs the traffic it observed.

        Accepts either the object-based observation (fed through the scalar
        per-packet path) or a :class:`BatchPathObservation` (fed through the
        vectorized collector fast path); both leave the collectors in the
        same state.
        """
        if isinstance(observation, BatchPathObservation):
            for hop_id, collector in self._collectors.items():
                batch, times = observation.at_hop(hop_id)
                collector.observe_batch(batch, times)
            return
        for hop_id, collector in self._collectors.items():
            collector.observe_sequence(observation.at_hop(hop_id))

    # -- reporting ----------------------------------------------------------------

    def transform_report(self, report: HOPReport) -> HOPReport:
        """Hook for adversarial behaviours; honest domains return the report as is."""
        return report

    def reports(self, flush: bool = True) -> dict[int, HOPReport]:
        """Produce (and possibly transform) this domain's receipts per HOP."""
        produced: dict[int, HOPReport] = {}
        for hop_id, processor in self._processors.items():
            report = processor.generate_report(flush=flush)
            produced[hop_id] = self.transform_report(report)
        return produced

    def __repr__(self) -> str:
        return f"DomainAgent(domain={self.domain_name!r}, hops={list(self.hop_ids)})"
