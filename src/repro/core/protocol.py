"""End-to-end VPM orchestration over one HOP path.

:class:`VPMSession` wires the pieces together for one measurement interval:

1. each participating domain runs a :class:`~repro.core.domain.DomainAgent`
   over the traffic its HOPs observed (a :class:`PathObservation` produced by
   the path scenario);
2. the domains' receipts are disseminated (Assumption 2 of the paper: an
   authenticated channel exists; here an in-memory
   :class:`~repro.reporting.dissemination.ReceiptBus`);
3. any domain can instantiate a :class:`~repro.core.verifier.Verifier` over
   the receipts it is entitled to see and estimate/verify its neighbors.

The session also exposes the resource accounting needed by the Section 7.1
overhead analysis (receipt bytes per observed byte, buffer occupancies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.domain import DomainAgent
from repro.core.hop import HOPConfig, HOPReport
from repro.core.verifier import DomainPerformance, VerificationResult, Verifier
from repro.net.prefixes import PrefixPair
from repro.net.topology import Domain, HOPPath
from repro.reporting.dissemination import MeshReceiptBus, ReceiptBus
from repro.simulation.mesh import MeshObservation
from repro.simulation.scenario import BatchPathObservation, PathObservation

__all__ = ["MeshSession", "SessionOverhead", "VPMSession"]


@dataclass(frozen=True)
class SessionOverhead:
    """Aggregate resource accounting of one measurement interval."""

    observed_packets: int
    observed_bytes: int
    receipt_bytes: int
    max_temp_buffer_packets: int

    @property
    def receipt_bytes_per_packet(self) -> float:
        """Receipt bytes produced per observed packet (Section 7.1's 0.2 B/pkt)."""
        return self.receipt_bytes / self.observed_packets if self.observed_packets else 0.0

    @property
    def bandwidth_overhead(self) -> float:
        """Receipt bytes relative to observed traffic bytes (the 0.046% figure)."""
        return self.receipt_bytes / self.observed_bytes if self.observed_bytes else 0.0


def _session_overhead(
    agents: Mapping[str, DomainAgent], last_reports: Mapping[int, HOPReport]
) -> SessionOverhead:
    """Aggregate resource accounting over a session's agents and last reports.

    Shared by the single-path and mesh sessions so overhead accounting cannot
    drift between them.
    """
    observed_packets = 0
    observed_bytes = 0
    max_buffer = 0
    for agent in agents.values():
        for hop_id in agent.hop_ids:
            collector = agent.collector(hop_id)
            observed_packets += collector.observed_packets
            observed_bytes += collector.observed_bytes
            max_buffer = max(max_buffer, collector.max_temp_buffer_occupancy)
    receipt_bytes = sum(report.wire_bytes for report in last_reports.values())
    return SessionOverhead(
        observed_packets=observed_packets,
        observed_bytes=observed_bytes,
        receipt_bytes=receipt_bytes,
        max_temp_buffer_packets=max_buffer,
    )


class VPMSession:
    """Runs VPM for one measurement interval on one path.

    Parameters
    ----------
    path:
        The HOP path being monitored.
    configs:
        Either a single :class:`HOPConfig` applied to every domain on the
        path, or a mapping of domain name to the :class:`HOPConfig` the
        domain uses for its HOPs; domains absent from the mapping use the
        default config.  A domain mapped to ``None`` has *not deployed VPM*
        and produces no receipts (the partial-deployment scenario of
        Section 8).
    agents:
        Optional pre-built agents (e.g. adversarial ones from
        :mod:`repro.adversary`) keyed by domain name; they override the
        default honest agents.
    max_diff:
        The MaxDiff written into all PathIDs (assumed uniform across links
        unless agents are built by hand).
    """

    def __init__(
        self,
        path: HOPPath,
        configs: Mapping[str, HOPConfig | None] | HOPConfig | None = None,
        agents: Mapping[str, DomainAgent] | None = None,
        max_diff: float = 1e-3,
    ) -> None:
        self.path = path
        self.max_diff = float(max_diff)
        if isinstance(configs, HOPConfig):
            configs = {domain.name: configs for domain in path.domains}
        configs = dict(configs or {})
        agents = dict(agents or {})

        self.agents: dict[str, DomainAgent] = {}
        for domain in path.domains:
            name = domain.name
            if name in agents:
                self.agents[name] = agents[name]
                continue
            if name in configs and configs[name] is None:
                continue  # domain has not deployed VPM
            config = configs.get(name) or HOPConfig()
            self.agents[name] = DomainAgent(
                domain, path, config=config, max_diff=self.max_diff
            )

        self.bus = ReceiptBus(path)
        self._last_reports: dict[int, HOPReport] = {}
        self._last_observation: PathObservation | BatchPathObservation | None = None

    # -- execution --------------------------------------------------------------------

    def run(
        self, observation: PathObservation | BatchPathObservation
    ) -> dict[int, HOPReport]:
        """Feed one interval's observations to every agent and collect reports.

        A :class:`BatchPathObservation` (from :meth:`PathScenario.run_batch`)
        drives the vectorized collector fast path; the object-based
        observation drives the scalar path.  Receipts are identical either
        way.
        """
        self._last_observation = observation
        for agent in self.agents.values():
            agent.observe(observation)
        return self.collect_reports()

    def collect_reports(self) -> dict[int, HOPReport]:
        """Generate, transform and publish reports from already-fed collectors.

        The back half of :meth:`run`, exposed separately for execution engines
        that feed the collectors incrementally (the streaming engine drives
        chunks through every agent's collectors itself, then calls this once
        at end of stream).
        """
        reports: dict[int, HOPReport] = {}
        for agent in self.agents.values():
            for hop_id, report in agent.reports(flush=True).items():
                reports[hop_id] = report
                self.bus.publish(agent.domain_name, report)
        self._last_reports = reports
        return reports

    # -- verification helpers ------------------------------------------------------------

    def verifier_for(
        self, observer: Domain | str, quantiles: Sequence[float] | None = None
    ) -> Verifier:
        """Build a verifier over the receipts ``observer`` is entitled to see.

        Receipts are only made available to domains that observed the
        corresponding traffic; every domain on the path qualifies, so the
        distinction only matters for off-path observers (who get nothing).
        ``quantiles`` overrides the delay quantiles the verifier estimates.
        """
        if quantiles is not None:
            verifier = Verifier(self.path, quantiles=quantiles)
        else:
            verifier = Verifier(self.path)
        verifier.add_reports(self.bus.reports_visible_to(observer))
        return verifier

    def estimate(self, observer: Domain | str, target: Domain | str) -> DomainPerformance:
        """One-call estimation of ``target``'s performance by ``observer``."""
        return self.verifier_for(observer).estimate_domain(target)

    def verify(self, observer: Domain | str, target: Domain | str) -> VerificationResult:
        """One-call verification of ``target``'s receipts by ``observer``."""
        return self.verifier_for(observer).verify_domain(target)

    # -- accounting ----------------------------------------------------------------------

    def overhead(self) -> SessionOverhead:
        """Resource accounting for the last interval."""
        return _session_overhead(self.agents, self._last_reports)


class MeshSession:
    """Runs VPM for one measurement interval over a mesh of paths.

    The mesh twin of :class:`VPMSession`: one :class:`DomainAgent` per
    participating domain, each owning *one collector per HOP* with every path
    through that HOP registered — so a shared HOP's collector classifies the
    interleaved traffic union back into per-(prefix-pair) state, and the
    receipts it reports for each pair byte-match an isolated single-path run.
    Verification is per path: :meth:`verifier_for` hands an observer a
    standard :class:`~repro.core.verifier.Verifier` over one path's receipts
    only (each shared HOP's report sliced to the pair).

    Parameters
    ----------
    paths:
        The mesh's HOP paths (distinct prefix pairs).
    configs:
        A single :class:`HOPConfig` for every domain, or a mapping of domain
        name to config; a domain mapped to ``None`` has not deployed VPM.
    agents:
        Pre-built agents (e.g. :class:`~repro.adversary.lying.MeshLyingDomainAgent`)
        keyed by domain name, overriding the default honest agents.
    max_diff:
        The MaxDiff written into all PathIDs.
    """

    def __init__(
        self,
        paths: Sequence[HOPPath],
        configs: Mapping[str, HOPConfig | None] | HOPConfig | None = None,
        agents: Mapping[str, DomainAgent] | None = None,
        max_diff: float = 1e-3,
    ) -> None:
        self.paths = tuple(paths)
        if not self.paths:
            raise ValueError("a mesh session needs at least one path")
        self.max_diff = float(max_diff)

        # Participating domains in deterministic order of first appearance.
        domains: list[Domain] = []
        for path in self.paths:
            for domain in path.domains:
                if all(existing.name != domain.name for existing in domains):
                    domains.append(domain)
        if isinstance(configs, HOPConfig):
            configs = {domain.name: configs for domain in domains}
        configs = dict(configs or {})
        agents = dict(agents or {})

        self.agents: dict[str, DomainAgent] = {}
        for domain in domains:
            name = domain.name
            if name in agents:
                self.agents[name] = agents[name]
                continue
            if name in configs and configs[name] is None:
                continue  # domain has not deployed VPM
            config = configs.get(name) or HOPConfig()
            crossing = tuple(
                path
                for path in self.paths
                if any(hop.domain.name == name for hop in path.hops)
            )
            self.agents[name] = DomainAgent(
                domain, crossing, config=config, max_diff=self.max_diff
            )

        self.bus = MeshReceiptBus(self.paths)
        self._last_reports: dict[int, HOPReport] = {}

    # -- execution ---------------------------------------------------------------------

    def observe(self, observation: MeshObservation) -> None:
        """Feed every collector its HOP's merged traffic union."""
        for agent in self.agents.values():
            for hop_id in agent.hop_ids:
                batch, times = observation.at_hop(hop_id)
                agent.collector(hop_id).observe_batch(batch, times)

    def run(self, observation: MeshObservation) -> dict[int, HOPReport]:
        """Observe one interval's mesh traffic and collect all reports."""
        self.observe(observation)
        return self.collect_reports()

    def collect_reports(self) -> dict[int, HOPReport]:
        """Generate, transform and publish reports from already-fed collectors."""
        reports: dict[int, HOPReport] = {}
        for agent in self.agents.values():
            for hop_id, report in agent.reports(flush=True).items():
                reports[hop_id] = report
                self.bus.publish(agent.domain_name, report)
        self._last_reports = reports
        return reports

    # -- verification helpers ----------------------------------------------------------

    def path_for(self, path: HOPPath | PrefixPair | int) -> HOPPath:
        """Resolve a path reference (path, prefix pair, or path index)."""
        if isinstance(path, HOPPath):
            return path
        if isinstance(path, PrefixPair):
            return self.bus.path_for(path)
        return self.paths[path]

    def verifier_for(
        self,
        observer: Domain | str,
        path: HOPPath | PrefixPair | int,
        quantiles: Sequence[float] | None = None,
    ) -> Verifier:
        """A per-path verifier over the receipts ``observer`` may see.

        The verifier is the ordinary single-path one — cross-path reasoning
        happens a level up (:func:`repro.analysis.localization.triangulate_suspects`
        over the per-path verdicts).
        """
        resolved = self.path_for(path)
        if quantiles is not None:
            verifier = Verifier(resolved, quantiles=quantiles)
        else:
            verifier = Verifier(resolved)
        verifier.add_reports(
            self.bus.reports_visible_to(observer, resolved.prefix_pair)
        )
        return verifier

    # -- accounting --------------------------------------------------------------------

    def overhead(self) -> SessionOverhead:
        """Resource accounting for the last interval, summed over all HOPs."""
        return _session_overhead(self.agents, self._last_reports)
