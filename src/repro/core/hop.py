"""The HOP collector and processor modules (Section 7's implementation model).

The paper implements HOP functionality "as part of a NetFlow-like monitoring
platform that operates partly in the router's data-plane and partly in its
control plane":

* the **collector** module (:class:`HOPCollector`) handles per-packet
  operations — path classification, digest computation, the delay sampler's
  temporary buffer and the aggregator's per-aggregate state — and corresponds
  to the data-plane/monitoring-cache half;
* the **processor** module (:class:`HOPProcessor`) periodically reads the
  collector's state and turns it into disseminable receipts — the
  control-plane half.

Resource counters (packets processed, buffer occupancies, receipt bytes) are
exposed so the overhead model of Section 7.1 can be evaluated against the
running implementation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.aggregation import Aggregator, AggregatorConfig
from repro.core.receipts import AggregateReceipt, PathID, SampleReceipt
from repro.core.sampling import DelaySampler, SamplerConfig
from repro.net.batch import PacketBatch
from repro.net.hashing import PacketDigester
from repro.net.packet import Packet
from repro.net.topology import HOP, HOPPath

__all__ = ["HOPConfig", "HOPReport", "HOPCollector", "HOPProcessor"]


@dataclass(frozen=True)
class HOPConfig:
    """Per-HOP configuration: the locally tunable knobs of the protocol.

    Every field except ``digester`` and ``sampler.marker_rate`` is a local
    choice; the digest parameters and the marker rate are protocol-wide
    constants that all HOPs of a path must share.
    """

    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    aggregator: AggregatorConfig = field(default_factory=AggregatorConfig)
    digester: PacketDigester = field(default_factory=PacketDigester)


@dataclass
class _PathState:
    """Collector state for one active path."""

    path_id: PathID
    sampler: DelaySampler
    aggregator: Aggregator
    observed_packets: int = 0
    observed_bytes: int = 0


@dataclass(frozen=True)
class HOPReport:
    """All receipts produced by one HOP for one reporting period."""

    hop_id: int
    sample_receipts: tuple[SampleReceipt, ...] = ()
    aggregate_receipts: tuple[AggregateReceipt, ...] = ()

    @property
    def wire_bytes(self) -> int:
        """Total dissemination size of the report."""
        return sum(receipt.wire_bytes for receipt in self.sample_receipts) + sum(
            receipt.wire_bytes for receipt in self.aggregate_receipts
        )


class HOPCollector:
    """The data-plane half of a HOP: per-packet processing and state.

    Parameters
    ----------
    hop:
        The topological HOP this collector runs at (provides the local clock
        and the HOP id written into PathIDs).
    config:
        The HOP's sampling/aggregation configuration.
    """

    def __init__(self, hop: HOP, config: HOPConfig | None = None) -> None:
        self.hop = hop
        self.config = config or HOPConfig()
        self._paths: dict[object, _PathState] = {}
        self._classifier_cache: dict[tuple[int, int], _PathState | None] = {}
        self._unclassified_packets = 0

    # -- path registration -----------------------------------------------------

    def register_path(self, path: HOPPath, max_diff: float = 1e-3) -> PathID:
        """Register an active path crossing this HOP.

        ``max_diff`` is the MaxDiff agreed for this HOP's adjacent
        inter-domain link (the upstream link for an ingress HOP, the
        downstream link for an egress HOP).
        """
        position = None
        for index, hop in enumerate(path.hops):
            if hop == self.hop:
                position = index
                break
        if position is None:
            raise ValueError(f"{self.hop} is not on path {path}")
        previous_hop = path.hops[position - 1].hop_id if position > 0 else None
        next_hop = (
            path.hops[position + 1].hop_id if position + 1 < len(path.hops) else None
        )
        path_id = PathID(
            prefix_pair=path.prefix_pair,
            reporting_hop=self.hop.hop_id,
            previous_hop=previous_hop,
            next_hop=next_hop,
            max_diff=max_diff,
        )
        self._paths[path.prefix_pair] = _PathState(
            path_id=path_id,
            sampler=DelaySampler(self.config.sampler),
            aggregator=Aggregator(self.config.aggregator),
        )
        self._classifier_cache.clear()
        return path_id

    # -- per-packet processing ---------------------------------------------------

    def _classify(self, packet: Packet) -> _PathState | None:
        key = (packet.headers.src_ip, packet.headers.dst_ip)
        if key in self._classifier_cache:
            return self._classifier_cache[key]
        state: _PathState | None = None
        for prefix_pair, candidate in self._paths.items():
            if prefix_pair.matches(packet.headers.src_ip, packet.headers.dst_ip):
                state = candidate
                break
        self._classifier_cache[key] = state
        return state

    def observe(self, packet: Packet, true_time: float) -> None:
        """Process one packet observed at this HOP at ``true_time``.

        The packet is classified into its path, digested once, and fed to both
        the delay sampler and the aggregator with the HOP's *local* timestamp.
        Packets that match no registered path are counted and ignored, as a
        real collector would treat traffic it is not configured to monitor.
        """
        state = self._classify(packet)
        if state is None:
            self._unclassified_packets += 1
            return
        local_time = self.hop.clock.read(true_time)
        digest = self.config.digester.digest(packet)
        state.sampler.observe(digest, local_time)
        state.aggregator.observe(digest, local_time)
        state.observed_packets += 1
        state.observed_bytes += packet.size

    def observe_sequence(self, observations: list[tuple[Packet, float]]) -> None:
        """Convenience wrapper: observe an already-ordered (packet, time) list."""
        for packet, true_time in observations:
            self.observe(packet, true_time)

    def observe_batch(self, batch: PacketBatch, true_times=None) -> int:
        """Vectorized :meth:`observe` over a columnar packet batch.

        Classification, digest computation, marker decisions and cutting-point
        selection all run as array operations; the per-path samplers and
        aggregators are fed index-selected sub-arrays in observation order, so
        the collector ends up in exactly the state the scalar loop would
        produce (cross-checked by the batch-parity property tests).

        Parameters
        ----------
        batch:
            The packets observed at this HOP, in observation order.
        true_times:
            True observation times; defaults to the batch's send times (the
            right choice for a source-edge HOP).

        Returns the number of packets that matched a registered path.
        """
        if true_times is None:
            time_array = batch.send_time
        else:
            time_array = np.asarray(true_times, dtype=np.float64)
            if time_array.shape != (len(batch),) :
                raise ValueError(
                    f"true_times must have shape ({len(batch)},), got {time_array.shape}"
                )
        if len(batch) == 0:
            return 0

        # Vectorized path classification; like the scalar path, the first
        # registered prefix pair that matches claims the packet.
        unclaimed = np.ones(len(batch), dtype=bool)
        path_members: list[tuple[_PathState, np.ndarray]] = []
        for prefix_pair, state in self._paths.items():
            source, destination = prefix_pair.source, prefix_pair.destination
            matches = (
                (batch.src_ip & np.uint32(source.mask)) == np.uint32(source.network)
            ) & (
                (batch.dst_ip & np.uint32(destination.mask)) == np.uint32(destination.network)
            ) & unclaimed
            selected = np.flatnonzero(matches)
            if not len(selected):
                continue
            unclaimed[selected] = False
            path_members.append((state, selected))
            if not unclaimed.any():
                break
        self._unclassified_packets += int(unclaimed.sum())
        if not path_members:
            return 0

        # One clock read per classified packet, in observation order — the
        # same draw order as the scalar loop even when the clock has RNG
        # jitter and several paths interleave.
        classified_positions = np.flatnonzero(~unclaimed)
        local_times = np.empty(len(batch), dtype=np.float64)
        local_times[classified_positions] = self.hop.clock.read_batch(
            time_array[classified_positions]
        )

        digests = self.config.digester.digest_batch(batch)
        classified = 0
        for state, selected in path_members:
            classified += len(selected)
            state.sampler.observe_batch(digests[selected], local_times[selected])
            state.aggregator.observe_batch(digests[selected], local_times[selected])
            state.observed_packets += len(selected)
            state.observed_bytes += int(batch.length[selected].sum(dtype=np.int64))
        return classified

    # -- merging ----------------------------------------------------------------

    def merge(self, other: "HOPCollector") -> "HOPCollector":
        """Fold ``other``'s collector state into this one, in stream order.

        ``other`` must be a collector for the *same HOP and configuration*
        that observed the packets following this collector's in each path's
        stream (shard-parallel execution over contiguous spans).  Per-path
        delay samplers and aggregators merge exactly
        (:meth:`~repro.core.sampling.DelaySampler.merge`,
        :meth:`~repro.core.aggregation.Aggregator.merge`), so reports
        generated from the merged collector equal a single whole-stream run's.
        Associative; ``other`` is consumed.  Returns ``self``.
        """
        if other.hop != self.hop:
            raise ValueError(f"cannot merge collectors of {self.hop} and {other.hop}")
        if other.config != self.config:
            raise ValueError("cannot merge collectors with different configurations")
        if set(other._paths) != set(self._paths):
            raise ValueError("cannot merge collectors with different registered paths")
        for prefix_pair, state in self._paths.items():
            other_state = other._paths[prefix_pair]
            if other_state.path_id != state.path_id:
                raise ValueError(f"PathID mismatch for {prefix_pair}")
            state.sampler.merge(other_state.sampler)
            state.aggregator.merge(other_state.aggregator)
            state.observed_packets += other_state.observed_packets
            state.observed_bytes += other_state.observed_bytes
        self._unclassified_packets += other._unclassified_packets
        return self

    def state_digest(self) -> str:
        """A stable hex digest of all per-path collector state.

        Equal digests mean bit-identical samplers, aggregators and counters;
        used by the conformance and shard-parity tests to assert that merged
        shard state reproduces the single-process run.
        """
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(repr((self.hop.hop_id, self._unclassified_packets)).encode())
        for prefix_pair in sorted(self._paths, key=str):
            state = self._paths[prefix_pair]
            hasher.update(
                repr(
                    (
                        str(prefix_pair),
                        state.observed_packets,
                        state.observed_bytes,
                        state.sampler.state_digest(),
                        state.aggregator.state_digest(),
                    )
                ).encode()
            )
        return hasher.hexdigest()

    # -- state access ---------------------------------------------------------------

    def path_state(self, path: HOPPath | PathID) -> _PathState:
        """Return the internal state for a registered path (mainly for tests)."""
        prefix_pair = (
            path.prefix_pair if isinstance(path, (HOPPath, PathID)) else path
        )
        return self._paths[prefix_pair]

    @property
    def active_paths(self) -> int:
        """Number of registered (active) paths."""
        return len(self._paths)

    @property
    def observed_packets(self) -> int:
        """Total packets observed across all registered paths."""
        return sum(state.observed_packets for state in self._paths.values())

    @property
    def observed_bytes(self) -> int:
        """Total bytes observed across all registered paths."""
        return sum(state.observed_bytes for state in self._paths.values())

    @property
    def unclassified_packets(self) -> int:
        """Packets that matched no registered path."""
        return self._unclassified_packets

    @property
    def max_temp_buffer_occupancy(self) -> int:
        """Largest delay-sampling temporary-buffer occupancy (packets)."""
        return max(
            (state.sampler.max_buffer_occupancy for state in self._paths.values()),
            default=0,
        )

    def states(self) -> list[_PathState]:
        """All per-path states (used by the processor)."""
        return list(self._paths.values())


class HOPProcessor:
    """The control-plane half of a HOP: turns collector state into receipts."""

    def __init__(self, collector: HOPCollector) -> None:
        self.collector = collector
        self._reports_generated = 0
        self._bytes_reported = 0

    def generate_report(self, flush: bool = False) -> HOPReport:
        """Read the collector's state and produce this period's receipts.

        ``flush`` closes every open aggregate first; use it at the end of a
        simulation or measurement interval so the final partial aggregate is
        reported too.
        """
        sample_receipts: list[SampleReceipt] = []
        aggregate_receipts: list[AggregateReceipt] = []
        for state in self.collector.states():
            if flush:
                state.aggregator.flush()
            sample_receipt = state.sampler.receipt(state.path_id)
            if sample_receipt.samples:
                sample_receipts.append(sample_receipt)
            aggregate_receipts.extend(state.aggregator.receipts(state.path_id))
        report = HOPReport(
            hop_id=self.collector.hop.hop_id,
            sample_receipts=tuple(sample_receipts),
            aggregate_receipts=tuple(aggregate_receipts),
        )
        self._reports_generated += 1
        self._bytes_reported += report.wire_bytes
        return report

    @property
    def reports_generated(self) -> int:
        """Number of reporting periods processed."""
        return self._reports_generated

    @property
    def bytes_reported(self) -> int:
        """Total receipt bytes produced so far."""
        return self._bytes_reported
