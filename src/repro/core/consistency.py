"""Receipt-consistency checking (Section 4, "Receipt Consistency").

Two receipts produced for the same traffic by HOPs on opposite ends of the
same inter-domain link must agree:

* **Sample receipts** — for every packet sampled by both HOPs, (1) the two
  receipts carry the same ``MaxDiff`` and (2) the downstream timestamp exceeds
  the upstream timestamp by at most ``MaxDiff``.  A correct inter-domain link
  "does not introduce unpredictable delay".
* **Aggregate receipts** — the packet counts for the same aggregate must be
  equal: a correct inter-domain link "does not introduce packet loss".

When a receipt collector finds inconsistent receipts it discards both and
notifies both neighbors; the liar (if any) is thereby exposed to the neighbor
it implicated.  This module provides the per-pair checks and the per-link
driver used by :class:`repro.core.verifier.Verifier`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.receipts import AggregateReceipt, SampleReceipt

__all__ = [
    "Inconsistency",
    "check_sample_consistency",
    "check_aggregate_consistency",
    "check_link_consistency",
]


@dataclass(frozen=True)
class Inconsistency:
    """A detected disagreement between two neighbors' receipts.

    Attributes
    ----------
    kind:
        One of ``"max-diff-mismatch"``, ``"delay-bound-violation"``,
        ``"count-mismatch"``, ``"missing-downstream"``,
        ``"missing-upstream"``.
    upstream_hop, downstream_hop:
        The HOPs whose receipts disagree (upstream delivers onto the link,
        downstream receives from it).
    pkt_id:
        The packet digest involved, for sample inconsistencies.
    detail:
        Human-readable explanation with the offending values.
    """

    kind: str
    upstream_hop: int
    downstream_hop: int
    pkt_id: int | None = None
    detail: str = ""

    def __str__(self) -> str:
        subject = f" pkt={self.pkt_id:#x}" if self.pkt_id is not None else ""
        return (
            f"[{self.kind}] HOP{self.upstream_hop} -> HOP{self.downstream_hop}"
            f"{subject}: {self.detail}"
        )


def check_sample_consistency(
    upstream: SampleReceipt, downstream: SampleReceipt
) -> list[Inconsistency]:
    """Check two sample receipts for the same traffic across one link.

    Only packets present in *both* receipts are subject to the timing rules;
    a packet sampled upstream but missing downstream is reported as
    ``missing-downstream`` (the link lost it, or someone is lying — the
    ambiguity the paper resolves by having the two neighbors debug the link).
    The reverse direction (``missing-upstream``) is also reported because a
    packet cannot legitimately appear downstream without having been delivered
    upstream.
    """
    findings: list[Inconsistency] = []
    up_hop = upstream.path_id.reporting_hop
    down_hop = downstream.path_id.reporting_hop

    if upstream.path_id.max_diff != downstream.path_id.max_diff:
        findings.append(
            Inconsistency(
                kind="max-diff-mismatch",
                upstream_hop=up_hop,
                downstream_hop=down_hop,
                detail=(
                    f"MaxDiff disagreement: {upstream.path_id.max_diff} (upstream) vs "
                    f"{downstream.path_id.max_diff} (downstream)"
                ),
            )
        )
    max_diff = max(upstream.path_id.max_diff, downstream.path_id.max_diff)

    upstream_records = {record.pkt_id: record for record in upstream.samples}
    downstream_records = {record.pkt_id: record for record in downstream.samples}

    # When the downstream HOP's sampling threshold is higher (it samples a
    # subset), an upstream-only packet is expected, not an inconsistency.
    downstream_samples_superset = (
        upstream.sampling_threshold is None
        or downstream.sampling_threshold is None
        or downstream.sampling_threshold <= upstream.sampling_threshold
    )
    upstream_samples_superset = (
        upstream.sampling_threshold is None
        or downstream.sampling_threshold is None
        or upstream.sampling_threshold <= downstream.sampling_threshold
    )

    for pkt_id, up_record in upstream_records.items():
        down_record = downstream_records.get(pkt_id)
        if down_record is None:
            if downstream_samples_superset:
                findings.append(
                    Inconsistency(
                        kind="missing-downstream",
                        upstream_hop=up_hop,
                        downstream_hop=down_hop,
                        pkt_id=pkt_id,
                        detail="upstream HOP reports delivering a sampled packet the "
                        "downstream HOP does not report receiving",
                    )
                )
            continue
        difference = down_record.time - up_record.time
        if difference > max_diff or difference < 0:
            findings.append(
                Inconsistency(
                    kind="delay-bound-violation",
                    upstream_hop=up_hop,
                    downstream_hop=down_hop,
                    pkt_id=pkt_id,
                    detail=(
                        f"timestamp difference {difference * 1e3:.3f} ms outside "
                        f"[0, MaxDiff={max_diff * 1e3:.3f} ms]"
                    ),
                )
            )
    for pkt_id in downstream_records:
        if pkt_id not in upstream_records and upstream_samples_superset:
            findings.append(
                Inconsistency(
                    kind="missing-upstream",
                    upstream_hop=up_hop,
                    downstream_hop=down_hop,
                    pkt_id=pkt_id,
                    detail="downstream HOP reports receiving a sampled packet the "
                    "upstream HOP does not report delivering",
                )
            )
    return findings


def check_aggregate_consistency(
    upstream: AggregateReceipt, downstream: AggregateReceipt
) -> list[Inconsistency]:
    """Check two aggregate receipts for the same aggregate across one link."""
    findings: list[Inconsistency] = []
    if upstream.pkt_count != downstream.pkt_count:
        findings.append(
            Inconsistency(
                kind="count-mismatch",
                upstream_hop=upstream.path_id.reporting_hop,
                downstream_hop=downstream.path_id.reporting_hop,
                detail=(
                    f"aggregate {upstream.agg_id!r}: upstream delivered "
                    f"{upstream.pkt_count} packets, downstream received "
                    f"{downstream.pkt_count}"
                ),
            )
        )
    return findings


def check_link_consistency(
    upstream_samples: Sequence[SampleReceipt],
    downstream_samples: Sequence[SampleReceipt],
    upstream_aggregates: Sequence[AggregateReceipt] = (),
    downstream_aggregates: Sequence[AggregateReceipt] = (),
    aggregate_pairs: Iterable[tuple[AggregateReceipt, AggregateReceipt]] | None = None,
) -> list[Inconsistency]:
    """Run every applicable consistency check for one inter-domain link.

    ``aggregate_pairs`` — pre-aligned (upstream, downstream) aggregate pairs —
    may be supplied when the two HOPs aggregate at different granularities and
    the caller has already computed the join; otherwise aggregates are matched
    positionally by their ``AggID`` boundaries.
    """
    findings: list[Inconsistency] = []
    from repro.core.receipts import combine_sample_receipts

    if upstream_samples and downstream_samples:
        up = combine_sample_receipts(list(upstream_samples))
        down = combine_sample_receipts(list(downstream_samples))
        findings.extend(check_sample_consistency(up, down))

    if aggregate_pairs is None:
        # Lazy import: the alignment algorithm lives with the partition algebra.
        from repro.core.partition import align_aggregate_receipts

        aggregate_pairs = align_aggregate_receipts(
            list(upstream_aggregates), list(downstream_aggregates)
        )
    for up_receipt, down_receipt in aggregate_pairs:
        findings.extend(check_aggregate_consistency(up_receipt, down_receipt))
    return findings
