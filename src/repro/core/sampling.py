"""Bias-resistant, tunable delay sampling — Algorithm 1 (Section 5).

Each HOP buffers per-packet state (digest and timestamp) only until the next
**marker** packet arrives on the same path.  The marker's digest keys the
sampling function, so which of the buffered packets end up sampled is decided
by traffic the domain has *already forwarded* — a domain cannot treat the
sampled packets preferentially because it does not yet know which they are.

Two thresholds control the mechanism:

* the **marker threshold** ``µ`` is a system-wide constant (every HOP on a
  path must recognize the same markers);
* the **sampling threshold** ``σ`` is a local, per-HOP choice; because a
  packet is sampled when ``SampleFcn(Digest(q), Digest(marker)) > σ``, a HOP
  with a lower ``σ`` samples a *superset* of a HOP with a higher ``σ``
  (Section 5.2's tunability argument).

:class:`DelaySampler` implements the per-path state machine; a HOP holds one
instance per active path (see :class:`repro.core.hop.HOPCollector`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.receipts import PathID, SampleReceipt, SampleRecord
from repro.net.hashing import (
    MASK64,
    as_digest_array,
    rate_for_threshold,
    sample_function,
    sample_function_batch,
    threshold_for_rate,
)
from repro.util.validation import check_fraction

__all__ = ["SamplerConfig", "DelaySampler", "DEFAULT_MARKER_RATE"]

# The marker rate is a protocol-wide constant chosen at design time.  One
# marker per ~1000 packets keeps the temporary buffer at "ten milliseconds or
# so" of traffic for the paper's 100k packets-per-second sequence.
DEFAULT_MARKER_RATE = 0.001


@dataclass(frozen=True)
class SamplerConfig:
    """Configuration of a HOP's delay sampler.

    Attributes
    ----------
    sampling_rate:
        Target fraction of packets sampled overall (the paper sweeps 5%, 1%,
        0.5%, 0.1%).  Because marker packets are always sampled, the local
        threshold ``σ`` is set so that buffered packets are sampled at
        ``sampling_rate - marker_rate``; the total then matches the target.
        Targets at or below the marker rate degrade to "markers only".
    marker_rate:
        Fraction of packets that act as markers; protocol-wide constant ``µ``.
    """

    sampling_rate: float = 0.01
    marker_rate: float = DEFAULT_MARKER_RATE

    def __post_init__(self) -> None:
        check_fraction("sampling_rate", self.sampling_rate)
        check_fraction("marker_rate", self.marker_rate)

    @property
    def sampling_threshold(self) -> int:
        """The 64-bit threshold ``σ`` corresponding to ``sampling_rate``."""
        return threshold_for_rate(max(0.0, self.sampling_rate - self.marker_rate))

    @property
    def marker_threshold(self) -> int:
        """The 64-bit threshold ``µ`` corresponding to ``marker_rate``."""
        return threshold_for_rate(self.marker_rate)


class DelaySampler:
    """Per-path implementation of Algorithm 1 (``DelaySample``).

    Usage: call :meth:`observe` for every packet of the path in observation
    order, then :meth:`receipt` (typically at each reporting period) to obtain
    the sample receipt accumulated so far.

    The sampler never inspects packet contents itself — callers pass the
    64-bit digest (computed once per packet by the HOP collector) and the
    local observation timestamp.
    """

    def __init__(self, config: SamplerConfig | None = None) -> None:
        self.config = config or SamplerConfig()
        self._marker_threshold = self.config.marker_threshold
        self._sampling_threshold = self.config.sampling_threshold
        # TempBuffer of Algorithm 1: per-packet (digest, local time) pairs
        # held only until the next marker.
        self._temp_buffer: list[tuple[int, float]] = []
        self._samples: list[SampleRecord] = []
        # Bookkeeping for the overhead model (Section 7.1).
        self._observed_packets = 0
        self._marker_count = 0
        self._max_buffer_occupancy = 0
        # Boundary bookkeeping for merge(): packets buffered before this
        # sampler's first marker meet their fate in the *previous* shard's
        # merge, so the first marker's identity and the pre-marker buffer
        # length must survive until then.
        self._seen_marker = False
        self._first_marker_digest: int | None = None
        self._prefix_len = 0

    # -- observation --------------------------------------------------------

    def observe(self, digest: int, time: float) -> bool:
        """Process one observed packet.

        Parameters
        ----------
        digest:
            The packet's 64-bit digest ``Digest(p)``.
        time:
            The HOP's local observation timestamp (seconds).

        Returns
        -------
        bool
            ``True`` if the packet was a marker (and therefore itself
            sampled), ``False`` otherwise.
        """
        if not 0 <= digest <= MASK64:
            raise ValueError(f"digest must be a 64-bit value, got {digest!r}")
        self._observed_packets += 1
        if digest > self._marker_threshold:
            self._marker_count += 1
            if not self._seen_marker:
                self._seen_marker = True
                self._first_marker_digest = digest
            for buffered_digest, buffered_time in self._temp_buffer:
                if sample_function(buffered_digest, digest) > self._sampling_threshold:
                    self._samples.append(
                        SampleRecord(pkt_id=buffered_digest, time=buffered_time)
                    )
            self._temp_buffer.clear()
            self._samples.append(SampleRecord(pkt_id=digest, time=time))
            return True
        if not self._seen_marker:
            self._prefix_len += 1
        self._temp_buffer.append((digest, time))
        if len(self._temp_buffer) > self._max_buffer_occupancy:
            self._max_buffer_occupancy = len(self._temp_buffer)
        return False

    def observe_batch(self, digests, times) -> np.ndarray:
        """Vectorized :meth:`observe` over arrays of digests and timestamps.

        Marker detection and the ``SampleFcn`` evaluation over each marker's
        buffered packets run as array operations; Python-level work is
        proportional to the number of markers and samples, not packets.  The
        resulting sampler state (samples, temporary buffer, counters) is
        exactly what the same sequence of scalar :meth:`observe` calls would
        produce, and the two paths can be freely interleaved.

        Returns the boolean marker mask for the batch.
        """
        digest_array = as_digest_array(digests)
        time_array = np.asarray(times, dtype=np.float64)
        if digest_array.shape != time_array.shape:
            raise ValueError(
                f"digests and times must align, got {digest_array.shape} vs {time_array.shape}"
            )
        count = len(digest_array)
        marker_mask = digest_array > np.uint64(self._marker_threshold)
        if count == 0:
            return marker_mask
        self._observed_packets += count
        marker_positions = np.flatnonzero(marker_mask)
        self._marker_count += len(marker_positions)
        if not self._seen_marker:
            if marker_positions.size:
                first_marker = int(marker_positions[0])
                self._prefix_len += first_marker
                self._seen_marker = True
                self._first_marker_digest = int(digest_array[first_marker])
            else:
                self._prefix_len += count
        sampling_threshold = np.uint64(self._sampling_threshold)

        carry_digests = np.fromiter(
            (entry[0] for entry in self._temp_buffer),
            dtype=np.uint64,
            count=len(self._temp_buffer),
        )
        carry_times = np.fromiter(
            (entry[1] for entry in self._temp_buffer),
            dtype=np.float64,
            count=len(self._temp_buffer),
        )
        segment_start = 0
        for position in marker_positions:
            buffered_digests = digest_array[segment_start:position]
            buffered_times = time_array[segment_start:position]
            if len(carry_digests):
                buffered_digests = np.concatenate([carry_digests, buffered_digests])
                buffered_times = np.concatenate([carry_times, buffered_times])
                carry_digests = carry_digests[:0]
                carry_times = carry_times[:0]
            if len(buffered_digests) > self._max_buffer_occupancy:
                self._max_buffer_occupancy = len(buffered_digests)
            marker_digest = digest_array[position]
            if len(buffered_digests):
                keys = sample_function_batch(buffered_digests, marker_digest)
                selected = keys > sampling_threshold
                if selected.any():
                    self._samples.extend(
                        SampleRecord(pkt_id=int(pkt_id), time=float(pkt_time))
                        for pkt_id, pkt_time in zip(
                            buffered_digests[selected], buffered_times[selected]
                        )
                    )
            self._samples.append(
                SampleRecord(pkt_id=int(marker_digest), time=float(time_array[position]))
            )
            segment_start = int(position) + 1

        tail_digests = digest_array[segment_start:]
        if len(carry_digests) or len(tail_digests):
            new_buffer = list(
                zip(
                    (int(value) for value in np.concatenate([carry_digests, tail_digests])),
                    (float(value) for value in np.concatenate([carry_times, time_array[segment_start:]])),
                )
            )
            if marker_positions.size:
                self._temp_buffer = new_buffer
            else:
                self._temp_buffer.extend(new_buffer[len(carry_digests):])
            if len(self._temp_buffer) > self._max_buffer_occupancy:
                self._max_buffer_occupancy = len(self._temp_buffer)
        elif marker_positions.size:
            self._temp_buffer = []
        return marker_mask

    # -- merging -------------------------------------------------------------

    def merge(self, other: "DelaySampler") -> "DelaySampler":
        """Fold ``other``'s state into this sampler, in stream order.

        ``other`` must have observed the packets that *follow* this sampler's
        in the same path stream (the contract of shard-parallel execution:
        each shard runs a fresh sampler over a contiguous span).  After the
        merge, this sampler's state — samples (including order), temporary
        buffer, counters, and peak buffer occupancy — is **exactly** what one
        sampler observing the concatenated stream would hold, because the
        packets this sampler still had buffered are judged against ``other``'s
        first marker, precisely as Algorithm 1 would have judged them.

        The operation is associative: merging shards pairwise in any grouping
        (left-to-right, balanced tree, ...) yields identical state, so shard
        scheduling order never affects receipts.  Returns ``self``.
        """
        if other.config != self.config:
            raise ValueError(
                f"cannot merge samplers with different configs: "
                f"{self.config} vs {other.config}"
            )
        if other._observed_packets == 0:
            return self
        if self._observed_packets == 0:
            self._adopt(other)
            return self

        if other._prefix_len:
            occupancy = len(self._temp_buffer) + other._prefix_len
            if occupancy > self._max_buffer_occupancy:
                self._max_buffer_occupancy = occupancy
        if other._max_buffer_occupancy > self._max_buffer_occupancy:
            self._max_buffer_occupancy = other._max_buffer_occupancy

        if other._seen_marker:
            # Our buffered packets meet their next marker inside `other`'s
            # span; their surviving samples precede everything `other`
            # sampled at (and after) that marker.
            marker_digest = other._first_marker_digest
            boundary = [
                SampleRecord(pkt_id=digest, time=time)
                for digest, time in self._temp_buffer
                if sample_function(digest, marker_digest) > self._sampling_threshold
            ]
            self._samples = self._samples + boundary + other._samples
            self._temp_buffer = list(other._temp_buffer)
        else:
            # `other` never saw a marker: its whole span is still buffered.
            self._samples = self._samples + other._samples
            self._temp_buffer = self._temp_buffer + list(other._temp_buffer)

        if not self._seen_marker:
            self._prefix_len += other._prefix_len
            self._seen_marker = other._seen_marker
            self._first_marker_digest = other._first_marker_digest
        self._observed_packets += other._observed_packets
        self._marker_count += other._marker_count
        return self

    def _adopt(self, other: "DelaySampler") -> None:
        """Copy ``other``'s state wholesale (merge into an empty sampler)."""
        self._temp_buffer = list(other._temp_buffer)
        self._samples = list(other._samples)
        self._observed_packets = other._observed_packets
        self._marker_count = other._marker_count
        self._max_buffer_occupancy = other._max_buffer_occupancy
        self._seen_marker = other._seen_marker
        self._first_marker_digest = other._first_marker_digest
        self._prefix_len = other._prefix_len

    def state_digest(self) -> str:
        """A stable hex digest of the sampler's complete observable state.

        Two samplers with equal digests hold bit-identical samples, buffers
        and counters — the cheap way for tests (and shard orchestration) to
        assert that split-run-merge reproduced a whole run.
        """
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(
            repr(
                (
                    self.config.sampling_rate,
                    self.config.marker_rate,
                    [(record.pkt_id, record.time.hex()) for record in self._samples],
                    [(digest, time.hex()) for digest, time in self._temp_buffer],
                    self._observed_packets,
                    self._marker_count,
                    self._max_buffer_occupancy,
                    self._seen_marker,
                    self._first_marker_digest,
                    self._prefix_len,
                )
            ).encode()
        )
        return hasher.hexdigest()

    # -- reporting -----------------------------------------------------------

    def receipt(self, path_id: PathID, reset: bool = True) -> SampleReceipt:
        """Produce the sample receipt for everything sampled so far.

        Packets still sitting in the temporary buffer are *not* reported: their
        fate (sampled or discarded) is not yet known — it will be decided by
        the next marker.  ``reset`` clears the accumulated samples (the normal
        periodic-reporting behaviour); pass ``False`` to peek.
        """
        receipt = SampleReceipt(
            path_id=path_id,
            samples=tuple(self._samples),
            sampling_threshold=self._sampling_threshold,
        )
        if reset:
            self._samples = []
        return receipt

    # -- introspection --------------------------------------------------------

    @property
    def pending_buffer_size(self) -> int:
        """Number of packets currently awaiting the next marker."""
        return len(self._temp_buffer)

    @property
    def max_buffer_occupancy(self) -> int:
        """Largest temporary-buffer occupancy seen (packets)."""
        return self._max_buffer_occupancy

    @property
    def observed_packets(self) -> int:
        """Total packets observed."""
        return self._observed_packets

    @property
    def marker_count(self) -> int:
        """Number of marker packets observed."""
        return self._marker_count

    @property
    def sample_count(self) -> int:
        """Number of samples accumulated since the last receipt."""
        return len(self._samples)

    @property
    def effective_sampling_rate(self) -> float:
        """Expected fraction of packets sampled (buffered samples + markers)."""
        marker_rate = rate_for_threshold(self._marker_threshold)
        buffered_rate = rate_for_threshold(self._sampling_threshold)
        return min(1.0, buffered_rate * (1.0 - marker_rate) + marker_rate)

    def __repr__(self) -> str:
        return (
            f"DelaySampler(sampling_rate={self.config.sampling_rate}, "
            f"marker_rate={self.config.marker_rate}, "
            f"observed={self._observed_packets}, samples={len(self._samples)})"
        )
