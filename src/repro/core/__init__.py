"""The VPM core: the paper's primary contribution.

Modules
-------
``receipts``
    Traffic-receipt data structures (Section 4): ``PathID``, sample receipts,
    aggregate receipts, and receipt combination.
``consistency``
    Receipt-consistency rules across inter-domain links (Section 4).
``sampling``
    Bias-resistant, tunable delay sampling — Algorithm 1 (Section 5).
``aggregation``
    Tunable aggregation — Algorithm 2 plus the AggTrans reordering patch-up
    (Section 6).
``partition``
    The partition algebra (coarser/finer, join) of Section 6.1.
``estimation``
    Delay-quantile and loss estimation from receipts (the role of [20]).
``hop``
    The collector (data-plane) and processor (control-plane) modules of a
    hand-off point (Section 7's implementation model).
``domain``
    A domain's honest reporting behaviour across its HOPs.
``verifier``
    The receipt collector: computes a domain's performance from its receipts
    and verifies them against the receipts of the other on-path domains.
``protocol``
    ``VPMSession`` — end-to-end orchestration of collectors, receipt
    dissemination and verification over one HOP path.
"""

from repro.core.aggregation import Aggregator, AggregatorConfig
from repro.core.campaign import CampaignResult, IntervalResult, MeasurementCampaign
from repro.core.consistency import (
    Inconsistency,
    check_aggregate_consistency,
    check_link_consistency,
    check_sample_consistency,
)
from repro.core.domain import DomainAgent
from repro.core.estimation import (
    DelayQuantileEstimate,
    estimate_delay_quantiles,
    estimate_loss_rate,
    quantile_confidence_bounds,
)
from repro.core.hop import HOPCollector, HOPConfig, HOPProcessor
from repro.core.partition import PartitionSet, join_partitions
from repro.core.protocol import VPMSession
from repro.core.receipts import (
    AggregateReceipt,
    PathID,
    SampleReceipt,
    SampleRecord,
    combine_aggregate_receipts,
    combine_sample_receipts,
)
from repro.core.sampling import DelaySampler, SamplerConfig
from repro.core.verifier import DomainPerformance, Verifier

__all__ = [
    "AggregateReceipt",
    "Aggregator",
    "AggregatorConfig",
    "CampaignResult",
    "DelayQuantileEstimate",
    "DelaySampler",
    "DomainAgent",
    "DomainPerformance",
    "HOPCollector",
    "HOPConfig",
    "HOPProcessor",
    "Inconsistency",
    "IntervalResult",
    "MeasurementCampaign",
    "PartitionSet",
    "PathID",
    "SampleReceipt",
    "SampleRecord",
    "SamplerConfig",
    "VPMSession",
    "Verifier",
    "check_aggregate_consistency",
    "check_link_consistency",
    "check_sample_consistency",
    "combine_aggregate_receipts",
    "combine_sample_receipts",
    "estimate_delay_quantiles",
    "estimate_loss_rate",
    "join_partitions",
    "quantile_confidence_bounds",
]
