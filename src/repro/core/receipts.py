"""Traffic receipts (Section 4 of the paper).

Each VPM HOP generates two kinds of receipts for the traffic it observes:

* a **sample receipt** ``R = <PathID, Samples>`` where ``Samples`` is a
  sequence of ``<PktID, Time>`` records for the delay-sampled packets;
* an **aggregate receipt** ``R = <PathID, AggID, PktCnt>`` (extended with
  ``AggTrans`` in Section 6.3) for a packet aggregate.

``PathID = <HeaderSpec, PreviousHOP, NextHOP, MaxDiff>`` identifies the HOP
path the traffic belongs to and carries the ``MaxDiff`` bound agreed with the
neighboring HOP across the adjacent inter-domain link.

Implementation extensions (documented, content-preserving):

* Aggregate receipts additionally carry the aggregate's first/last observation
  timestamps and the sum of observation timestamps.  The timestamp sum is the
  Lossy-Difference-Aggregator state that lets a verifier compute *average*
  delay over loss-free aggregates; the first/last timestamps let the verifier
  express loss granularity in seconds (Figure 3's y-axis).  Neither reveals
  more than the per-packet timestamps the strawman already reports.
* ``AggTrans`` is stored as two tuples, ``trans_before`` and ``trans_after``
  (packet IDs observed within ``J`` before/after the cutting point); the paper
  stores one ordered sequence of 2``J`` worth of IDs, from which the same two
  sets are recoverable given the cutting packet's ID.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.net.prefixes import PrefixPair
from repro.util.validation import check_non_negative

__all__ = [
    "PathID",
    "SampleRecord",
    "SampleReceipt",
    "AggregateReceipt",
    "combine_sample_receipts",
    "combine_aggregate_receipts",
    "SAMPLE_RECORD_BYTES",
    "AGGREGATE_RECEIPT_BYTES",
]

# Wire-size accounting used by the overhead model (Section 7.1): a sample
# record is a 4-byte packet digest plus a 3-byte timestamp; an aggregate
# receipt is roughly 22 bytes (PathID reference, AggID = two digests, PktCnt).
SAMPLE_RECORD_BYTES = 7
AGGREGATE_RECEIPT_BYTES = 22


@dataclass(frozen=True)
class PathID:
    """Identifies the HOP path a receipt refers to.

    Attributes
    ----------
    prefix_pair:
        The ``HeaderSpec``: the (source, destination) origin-prefix pair that
        names the path.
    reporting_hop:
        The HOP that produced the receipt (integer HOP id).
    previous_hop, next_hop:
        The previous and next HOPs on the path (``None`` at the path's edges).
    max_diff:
        The ``MaxDiff`` bound (seconds) agreed with the HOP at the other end
        of the reporting HOP's adjacent *inter-domain* link — the downstream
        link for an egress HOP, the upstream link for an ingress HOP.
    """

    prefix_pair: PrefixPair
    reporting_hop: int
    previous_hop: int | None
    next_hop: int | None
    max_diff: float

    def __post_init__(self) -> None:
        check_non_negative("max_diff", self.max_diff)
        if self.previous_hop is None and self.next_hop is None:
            raise ValueError("a PathID needs at least one of previous_hop/next_hop")

    def same_path(self, other: "PathID") -> bool:
        """Whether two PathIDs refer to the same HOP path (same prefix pair)."""
        return self.prefix_pair == other.prefix_pair


@dataclass(frozen=True, order=True)
class SampleRecord:
    """One sampled measurement: ``<PktID, Time>``."""

    pkt_id: int
    time: float

    @property
    def wire_bytes(self) -> int:
        """Bytes this record contributes to a disseminated receipt."""
        return SAMPLE_RECORD_BYTES


@dataclass(frozen=True)
class SampleReceipt:
    """A receipt for a set of delay-sampled packets: ``<PathID, Samples>``.

    ``sampling_threshold`` is the reporting HOP's (public) sampling threshold
    ``σ``; the verifier uses it to distinguish "this HOP legitimately chose not
    to sample that packet" (its threshold is higher than the neighbor's) from
    "this HOP claims not to have received that packet".  Publishing the
    threshold reveals only the HOP's resource/quality trade-off, which the
    paper already treats as externally observable.
    """

    path_id: PathID
    samples: tuple[SampleRecord, ...] = ()
    sampling_threshold: int | None = None

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def pkt_ids(self) -> frozenset[int]:
        """The set of sampled packet identifiers."""
        return frozenset(record.pkt_id for record in self.samples)

    def record_for(self, pkt_id: int) -> SampleRecord | None:
        """Return the record for a packet id, or ``None`` if not sampled."""
        for record in self.samples:
            if record.pkt_id == pkt_id:
                return record
        return None

    @property
    def wire_bytes(self) -> int:
        """Approximate dissemination size of this receipt in bytes."""
        return 8 + len(self.samples) * SAMPLE_RECORD_BYTES

    def merged_with(self, other: "SampleReceipt") -> "SampleReceipt":
        """Combine with another sample receipt from the same HOP and path.

        Raises :class:`ValueError` when the receipts disagree on the PathID
        *or* on the sampling threshold — receipts produced under different
        sampling functions/configurations measure different packet sets, and
        silently unioning them would fabricate a sample set no HOP ever
        collected.
        """
        return combine_sample_receipts([self, other])


@dataclass(frozen=True)
class AggregateReceipt:
    """A receipt for a packet aggregate.

    ``<PathID, AggID, PktCnt, AggTrans>`` per Sections 4 and 6.3, where
    ``AggID`` is the pair (first packet ID, last packet ID) of the aggregate.
    See the module docstring for the documented extensions (timestamps and the
    split representation of ``AggTrans``).
    """

    path_id: PathID
    first_pkt_id: int
    last_pkt_id: int
    pkt_count: int
    start_time: float = 0.0
    end_time: float = 0.0
    time_sum: float = 0.0
    trans_before: tuple[int, ...] = ()
    trans_after: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.pkt_count < 0:
            raise ValueError(f"pkt_count must be >= 0, got {self.pkt_count}")
        if self.end_time < self.start_time:
            raise ValueError(
                f"end_time {self.end_time} precedes start_time {self.start_time}"
            )

    @property
    def agg_id(self) -> tuple[int, int]:
        """The aggregate identifier: (first packet ID, last packet ID)."""
        return (self.first_pkt_id, self.last_pkt_id)

    @property
    def duration(self) -> float:
        """Observation-time span of the aggregate (seconds)."""
        return self.end_time - self.start_time

    @property
    def mean_time(self) -> float:
        """Mean observation timestamp (the LDA-style average-delay state)."""
        return self.time_sum / self.pkt_count if self.pkt_count else 0.0

    @property
    def wire_bytes(self) -> int:
        """Approximate dissemination size of this receipt in bytes."""
        return AGGREGATE_RECEIPT_BYTES + 4 * (len(self.trans_before) + len(self.trans_after))

    def with_count(self, pkt_count: int) -> "AggregateReceipt":
        """Return a copy with a different packet count (verifier alignment)."""
        return replace(self, pkt_count=pkt_count)


def combine_sample_receipts(receipts: Sequence[SampleReceipt]) -> SampleReceipt:
    """Combine sample receipts from the same HOP and path (``⊎`` in the paper).

    The combination is simply the union of the sample sets, sorted by
    observation time for determinism.
    """
    if not receipts:
        raise ValueError("cannot combine an empty sequence of sample receipts")
    path_id = receipts[0].path_id
    threshold = receipts[0].sampling_threshold
    for receipt in receipts[1:]:
        if receipt.path_id != path_id:
            raise ValueError("sample receipts to combine must share the same PathID")
        if receipt.sampling_threshold != threshold:
            raise ValueError(
                "sample receipts to combine must share the same sampling "
                f"threshold (sampling-function identity); got "
                f"{threshold!r} vs {receipt.sampling_threshold!r}"
            )
    merged: dict[int, SampleRecord] = {}
    for receipt in receipts:
        for record in receipt.samples:
            merged[record.pkt_id] = record
    samples = tuple(sorted(merged.values(), key=lambda record: (record.time, record.pkt_id)))
    return SampleReceipt(
        path_id=path_id,
        samples=samples,
        sampling_threshold=receipts[0].sampling_threshold,
    )


def combine_aggregate_receipts(
    receipts: Sequence[AggregateReceipt],
) -> AggregateReceipt:
    """Combine *consecutive* aggregate receipts from the same HOP and path.

    The combined receipt covers the union of the aggregates: its ``AggID`` is
    (first ID of the first aggregate, last ID of the last aggregate) and its
    packet count is the sum of the counts, exactly the paper's ``⊎`` for
    aggregate receipts.  Receipts must be passed in observation order.
    """
    if not receipts:
        raise ValueError("cannot combine an empty sequence of aggregate receipts")
    path_id = receipts[0].path_id
    previous_end = None
    for receipt in receipts:
        if receipt.path_id != path_id:
            raise ValueError("aggregate receipts to combine must share the same PathID")
        if previous_end is not None and receipt.start_time < previous_end - 1e-12:
            raise ValueError(
                "aggregate receipts must be consecutive and in observation order"
            )
        previous_end = receipt.end_time
    return AggregateReceipt(
        path_id=path_id,
        first_pkt_id=receipts[0].first_pkt_id,
        last_pkt_id=receipts[-1].last_pkt_id,
        pkt_count=sum(receipt.pkt_count for receipt in receipts),
        start_time=receipts[0].start_time,
        end_time=receipts[-1].end_time,
        time_sum=sum(receipt.time_sum for receipt in receipts),
        trans_before=receipts[-1].trans_before,
        trans_after=receipts[-1].trans_after,
    )


def total_receipt_bytes(
    sample_receipts: Iterable[SampleReceipt],
    aggregate_receipts: Iterable[AggregateReceipt],
) -> int:
    """Total dissemination size of a batch of receipts (for overhead accounting)."""
    return sum(receipt.wire_bytes for receipt in sample_receipts) + sum(
        receipt.wire_bytes for receipt in aggregate_receipts
    )
