"""The partition algebra of Section 6.1 and receipt alignment of Section 6.3.

Two layers live here:

* An abstract layer over ordered packet sets — :class:`PartitionSet`,
  :func:`is_coarser` and :func:`join_partitions` — implementing the
  set-theoretic definitions (partition, "coarser than", join) that Section 6.1
  introduces with Table 1.  This layer is used by the property-based tests to
  validate the algebraic claims the protocol relies on.
* A concrete layer over aggregate *receipts* —
  :func:`align_aggregate_receipts` — which computes the join of two HOPs'
  aggregate sets from their receipts alone (matching aggregates by their
  cutting-point packet IDs), and applies the ``AggTrans`` reordering patch-up
  of Section 6.3 by migrating packets across misaligned boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.core.receipts import AggregateReceipt, combine_aggregate_receipts

__all__ = [
    "PartitionSet",
    "is_coarser",
    "join_partitions",
    "align_aggregate_receipts",
    "AlignedAggregates",
]


# ---------------------------------------------------------------------------
# Abstract partition algebra (Section 6.1, Table 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionSet:
    """A partition of an ordered packet set into consecutive aggregates.

    ``aggregates`` is a tuple of tuples; concatenating them yields the
    underlying ordered packet set.  Aggregates must be non-empty.
    """

    aggregates: tuple[tuple[Hashable, ...], ...]

    def __post_init__(self) -> None:
        if any(len(aggregate) == 0 for aggregate in self.aggregates):
            raise ValueError("aggregates must be non-empty")

    @classmethod
    def from_lists(cls, aggregates: Iterable[Iterable[Hashable]]) -> "PartitionSet":
        """Build a partition from any iterable of iterables."""
        return cls(tuple(tuple(aggregate) for aggregate in aggregates))

    @classmethod
    def from_cut_indices(
        cls, items: Sequence[Hashable], cut_indices: Iterable[int]
    ) -> "PartitionSet":
        """Partition ``items`` at the given cut indices.

        A cut index ``k`` means item ``k`` starts a new aggregate.  Index 0 is
        implicitly always a cut (the first item starts the first aggregate).
        """
        cuts = sorted(set(cut_indices) | {0})
        if any(not 0 <= cut < len(items) for cut in cuts):
            raise ValueError("cut indices must be valid positions into items")
        boundaries = cuts + [len(items)]
        aggregates = tuple(
            tuple(items[start:end]) for start, end in zip(boundaries, boundaries[1:])
        )
        return cls(aggregates)

    @property
    def items(self) -> tuple[Hashable, ...]:
        """The underlying ordered packet set."""
        return tuple(item for aggregate in self.aggregates for item in aggregate)

    @property
    def cutting_points(self) -> tuple[Hashable, ...]:
        """The first packet of each aggregate (the cutting points)."""
        return tuple(aggregate[0] for aggregate in self.aggregates)

    @property
    def cut_indices(self) -> tuple[int, ...]:
        """Positions (into the underlying set) where aggregates start."""
        indices = []
        position = 0
        for aggregate in self.aggregates:
            indices.append(position)
            position += len(aggregate)
        return tuple(indices)

    def __len__(self) -> int:
        return len(self.aggregates)

    def __iter__(self):
        return iter(self.aggregates)


def is_coarser(coarse: PartitionSet, fine: PartitionSet) -> bool:
    """Return whether ``coarse >= fine`` (every coarse aggregate is a union of
    fine aggregates).

    Both partitions must be over the same underlying ordered packet set;
    otherwise the relation is undefined and ``ValueError`` is raised.
    """
    if coarse.items != fine.items:
        raise ValueError("partitions are over different packet sets")
    return set(coarse.cut_indices).issubset(set(fine.cut_indices))


def join_partitions(*partitions: PartitionSet) -> PartitionSet:
    """Return ``Join(A1, ..., AN)``: the finest partition coarser than all inputs.

    For partitions of an ordered set into consecutive aggregates, the join's
    cutting points are exactly the cutting points common to every input.
    """
    if not partitions:
        raise ValueError("join requires at least one partition")
    items = partitions[0].items
    for partition in partitions[1:]:
        if partition.items != items:
            raise ValueError("partitions are over different packet sets")
    common_cuts = set(partitions[0].cut_indices)
    for partition in partitions[1:]:
        common_cuts &= set(partition.cut_indices)
    return PartitionSet.from_cut_indices(items, common_cuts)


# ---------------------------------------------------------------------------
# Receipt alignment (Sections 6.1-6.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AlignedAggregates:
    """A matched pair of combined aggregate receipts from two HOPs.

    ``upstream``/``downstream`` cover the same span of the packet stream
    (between two consecutive common cutting points); ``migrated_packets`` is
    the net count migrated into the downstream receipt by the reordering
    patch-up (positive: moved into this aggregate from the next one).
    """

    upstream: AggregateReceipt
    downstream: AggregateReceipt
    migrated_packets: int = 0

    @property
    def lost_packets(self) -> int:
        """Packets lost between the two HOPs over this span."""
        return self.upstream.pkt_count - self.downstream.pkt_count

    @property
    def duration(self) -> float:
        """Time span of the aggregate at the upstream HOP (seconds)."""
        return self.upstream.duration


def _boundary_ids(receipts: Sequence[AggregateReceipt]) -> list[int]:
    """The cutting-point packet IDs between consecutive receipts.

    The boundary between receipt ``k`` and ``k+1`` is identified by the first
    packet ID of receipt ``k+1`` (that packet was the cutting point).
    """
    return [receipt.first_pkt_id for receipt in receipts[1:]]


def _group_by_boundaries(
    receipts: Sequence[AggregateReceipt], common_boundaries: Sequence[int]
) -> list[list[AggregateReceipt]]:
    """Split ``receipts`` into groups separated by the common boundaries."""
    groups: list[list[AggregateReceipt]] = [[]]
    boundary_set = list(common_boundaries)
    next_boundary = 0
    for index, receipt in enumerate(receipts):
        if (
            index > 0
            and next_boundary < len(boundary_set)
            and receipt.first_pkt_id == boundary_set[next_boundary]
        ):
            groups.append([])
            next_boundary += 1
        groups[-1].append(receipt)
    return groups


def align_aggregate_receipts(
    upstream: Sequence[AggregateReceipt],
    downstream: Sequence[AggregateReceipt],
    apply_reordering_patch: bool = True,
) -> list[tuple[AggregateReceipt, AggregateReceipt]]:
    """Align two HOPs' aggregate receipts over the finest common partition.

    The two receipt sequences cover the same packet stream (possibly with loss
    and bounded reordering between the HOPs).  Aggregates are matched on the
    cutting-point packet IDs present at *both* HOPs — the join of Section 6.1
    computed from receipts alone — and, when ``apply_reordering_patch`` is
    set, the downstream counts are corrected using the ``AggTrans`` windows
    (Section 6.3) so packets observed on different sides of a boundary at the
    two HOPs are attributed to the same aggregate.

    Returns a list of (upstream, downstream) combined-receipt pairs, one per
    joined aggregate; see :func:`aligned_aggregates` for a richer return type.
    """
    pairs = aligned_aggregates(upstream, downstream, apply_reordering_patch)
    return [(pair.upstream, pair.downstream) for pair in pairs]


def aligned_aggregates(
    upstream: Sequence[AggregateReceipt],
    downstream: Sequence[AggregateReceipt],
    apply_reordering_patch: bool = True,
) -> list[AlignedAggregates]:
    """Like :func:`align_aggregate_receipts` but returns :class:`AlignedAggregates`."""
    if not upstream or not downstream:
        return []

    upstream_boundaries = _boundary_ids(upstream)
    downstream_boundary_set = set(_boundary_ids(downstream))
    # Common boundaries, in upstream (i.e. original stream) order.
    common = [
        boundary for boundary in upstream_boundaries if boundary in downstream_boundary_set
    ]

    upstream_groups = _group_by_boundaries(upstream, common)
    downstream_groups = _group_by_boundaries(downstream, common)
    if len(upstream_groups) != len(downstream_groups):
        # A common boundary appeared in a different order downstream (extreme
        # reordering).  Fall back to the coarsest join: everything combined.
        upstream_groups = [list(upstream)]
        downstream_groups = [list(downstream)]
        common = []

    combined_up = [combine_aggregate_receipts(group) for group in upstream_groups]
    combined_down = [combine_aggregate_receipts(group) for group in downstream_groups]
    migrations = [0] * len(combined_down)

    if apply_reordering_patch and common:
        # For each common boundary, compare the AggTrans windows of the two
        # receipts that end at that boundary and migrate packets that the two
        # HOPs observed on different sides of it.
        for boundary_index in range(len(common)):
            up_receipt = combined_up[boundary_index]
            down_receipt = combined_down[boundary_index]
            up_before = set(up_receipt.trans_before)
            up_after = set(up_receipt.trans_after)
            down_before = set(down_receipt.trans_before)
            down_after = set(down_receipt.trans_after)
            # Packets upstream counted before the cut but downstream after it:
            # migrate them into the earlier downstream aggregate.
            to_earlier = len(up_before & down_after)
            # Packets upstream counted after the cut but downstream before it:
            # migrate them into the later downstream aggregate.
            to_later = len(up_after & down_before)
            delta = to_earlier - to_later
            migrations[boundary_index] += delta
            migrations[boundary_index + 1] -= delta

    results: list[AlignedAggregates] = []
    for index, (up_receipt, down_receipt) in enumerate(zip(combined_up, combined_down)):
        adjusted = down_receipt.with_count(down_receipt.pkt_count + migrations[index])
        results.append(
            AlignedAggregates(
                upstream=up_receipt,
                downstream=adjusted,
                migrated_packets=migrations[index],
            )
        )
    return results
