"""Tunable aggregation — Algorithm 2 plus the AggTrans patch-up (Section 6).

Each HOP breaks the packet stream of a path into **aggregates** at
hash-selected cutting points: a packet whose digest exceeds the partition
threshold ``δ`` closes the current aggregate and starts a new one.  Because a
HOP with a lower ``δ`` cuts at (at least) all the points a HOP with a higher
``δ`` cuts at, independently tuned HOPs "never produce partially overlapping
aggregate sets" (Section 6.2), which keeps their receipts joinable.

To survive bounded reordering (Section 6.3), every closed aggregate's receipt
also carries ``AggTrans``: the packet IDs observed within the safety window
``J`` on either side of the cutting point.  A verifier uses these windows to
migrate packets across misaligned boundaries (see
:func:`repro.core.partition.aligned_aggregates`).

:class:`Aggregator` keeps constant state per open aggregate plus a sliding
window of the last ``J`` seconds of packet IDs; per-packet work is constant.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.receipts import AggregateReceipt, PathID
from repro.net.hashing import MASK64, as_digest_array, threshold_for_rate
from repro.util.validation import check_non_negative, check_positive

__all__ = ["AggregatorConfig", "Aggregator"]


@dataclass(frozen=True)
class AggregatorConfig:
    """Configuration of a HOP's aggregator.

    Attributes
    ----------
    expected_aggregate_size:
        Target number of packets per aggregate.  The partition threshold ``δ``
        is set so a packet becomes a cutting point with probability
        ``1 / expected_aggregate_size`` (the paper's evaluation uses one
        aggregate per 100,000 packets).
    reorder_window:
        The safety inter-arrival threshold ``J`` (seconds): packets observed
        more than ``J`` apart are assumed never to be reordered.  The paper
        conservatively suggests 10 ms.
    """

    expected_aggregate_size: int = 100_000
    reorder_window: float = 0.01

    def __post_init__(self) -> None:
        check_positive("expected_aggregate_size", self.expected_aggregate_size)
        check_non_negative("reorder_window", self.reorder_window)

    @property
    def partition_rate(self) -> float:
        """Probability that a packet is a cutting point."""
        return 1.0 / self.expected_aggregate_size

    @property
    def partition_threshold(self) -> int:
        """The 64-bit threshold ``δ`` for the configured aggregate size."""
        return threshold_for_rate(self.partition_rate)


@dataclass
class _OpenAggregate:
    """Mutable state of the aggregate currently being filled."""

    first_pkt_id: int
    last_pkt_id: int
    pkt_count: int = 0
    start_time: float = 0.0
    end_time: float = 0.0
    time_sum: float = 0.0

    def add(self, digest: int, time: float) -> None:
        if self.pkt_count == 0:
            self.start_time = time
        self.last_pkt_id = digest
        self.pkt_count += 1
        self.end_time = time
        self.time_sum += time


@dataclass
class _PendingReceipt:
    """A closed aggregate waiting for its post-cut AggTrans window to fill."""

    aggregate: _OpenAggregate
    cut_time: float
    trans_before: tuple[int, ...]
    trans_after: list[int] = field(default_factory=list)


class Aggregator:
    """Per-path implementation of Algorithm 2 (``Partition``) with AggTrans.

    Call :meth:`observe` for every packet of the path in observation order
    (passing the packet digest and the HOP's local timestamp), then
    :meth:`receipts` to drain the finalized aggregate receipts, and
    :meth:`flush` at the end of a reporting period to close the open
    aggregate.
    """

    def __init__(self, config: AggregatorConfig | None = None) -> None:
        self.config = config or AggregatorConfig()
        self._partition_threshold = self.config.partition_threshold
        self._window = self.config.reorder_window
        self._open: _OpenAggregate | None = None
        self._recent: deque[tuple[int, float]] = deque()
        self._pending: list[_PendingReceipt] = []
        self._finalized: list[_PendingReceipt] = []
        self._observed_packets = 0
        self._cut_count = 0
        self._max_window_occupancy = 0
        # Boundary bookkeeping for merge(): the previous shard needs to know
        # what happened in this aggregator's first J seconds (its packets feed
        # the predecessor's AggTrans windows and sliding-window occupancy) and
        # whether the very first packet would have cut the predecessor's open
        # aggregate (a cut-digest first packet records no cut on a fresh
        # aggregator because there is nothing to close yet).
        self._first_time: float | None = None
        self._last_time: float | None = None
        self._lead: list[tuple[int, float]] = []
        self._first_cut_suppressed = False
        self._flushed = False

    # -- observation ---------------------------------------------------------

    def observe(self, digest: int, time: float) -> bool:
        """Process one observed packet.

        Returns ``True`` if the packet was a cutting point (started a new
        aggregate).
        """
        if not 0 <= digest <= MASK64:
            raise ValueError(f"digest must be a 64-bit value, got {digest!r}")
        is_cut = digest > self._partition_threshold
        if self._observed_packets == 0:
            self._first_time = time
            self._first_cut_suppressed = is_cut and (
                self._open is None or self._open.pkt_count == 0
            )
        if self._first_time is not None and time <= self._first_time + self._window:
            self._lead.append((digest, time))
        if self._last_time is None or time > self._last_time:
            self._last_time = time
        self._observed_packets += 1
        self._finalize_pending(time)
        if is_cut and self._open is not None and self._open.pkt_count > 0:
            self._cut_count += 1
            trans_before = tuple(
                pkt_id for pkt_id, seen in self._recent if seen >= time - self._window
            )
            self._pending.append(
                _PendingReceipt(
                    aggregate=self._open, cut_time=time, trans_before=trans_before
                )
            )
            self._open = _OpenAggregate(first_pkt_id=digest, last_pkt_id=digest)
        elif self._open is None:
            self._open = _OpenAggregate(first_pkt_id=digest, last_pkt_id=digest)

        self._open.add(digest, time)

        # Feed the post-cut window of any aggregate closed less than J ago.
        for pending in self._pending:
            if time <= pending.cut_time + self._window:
                pending.trans_after.append(digest)

        # Maintain the sliding window of the last J seconds of packet IDs.
        self._recent.append((digest, time))
        while self._recent and self._recent[0][1] < time - self._window:
            self._recent.popleft()
        if len(self._recent) > self._max_window_occupancy:
            self._max_window_occupancy = len(self._recent)
        return is_cut

    def observe_batch(self, digests, times) -> np.ndarray:
        """Vectorized :meth:`observe` over arrays of digests and timestamps.

        Cutting points are found with one array comparison; the packets of
        each aggregate are folded into the open-aggregate state with array
        reductions, and the AggTrans windows around each cutting point are
        extracted with binary searches.  Python-level work is proportional to
        the number of cutting points, not packets.

        The fast path requires observation timestamps that are non-decreasing
        (within the batch and relative to earlier observations) — which is how
        HOPs observe traffic.  Batches that violate this fall back to the
        scalar loop.  Either way the resulting state matches repeated scalar
        :meth:`observe` calls exactly — same aggregates, cutting points,
        AggTrans windows and counters — except that an aggregate's
        ``time_sum`` may differ in the last few ulps on the fast path (it is
        accumulated via prefix sums rather than one packet at a time).  Both
        paths interleave freely on one instance.

        Returns the boolean cutting-point mask for the batch.
        """
        digest_array = as_digest_array(digests)
        time_array = np.asarray(times, dtype=np.float64)
        if digest_array.shape != time_array.shape:
            raise ValueError(
                f"digests and times must align, got {digest_array.shape} vs {time_array.shape}"
            )
        count = len(digest_array)
        cut_mask = digest_array > np.uint64(self._partition_threshold)
        if count == 0:
            return cut_mask

        recent_times = [entry[1] for entry in self._recent]
        sorted_within = bool(np.all(time_array[1:] >= time_array[:-1]))
        sorted_carry = all(
            earlier <= later for earlier, later in zip(recent_times, recent_times[1:])
        ) and (not recent_times or recent_times[-1] <= time_array[0])
        if not (sorted_within and sorted_carry):
            for index in range(count):
                self.observe(int(digest_array[index]), float(time_array[index]))
            return cut_mask

        window = self._window
        if self._observed_packets == 0:
            self._first_time = float(time_array[0])
            self._first_cut_suppressed = bool(cut_mask[0]) and (
                self._open is None or self._open.pkt_count == 0
            )
        if self._first_time is not None:
            lead_covered = int(
                np.searchsorted(time_array, self._first_time + window, side="right")
            )
            if lead_covered:
                self._lead.extend(
                    (int(digest), float(time))
                    for digest, time in zip(
                        digest_array[:lead_covered], time_array[:lead_covered]
                    )
                )
        self._observed_packets += count
        last_time = float(time_array[-1])
        if self._last_time is None or last_time > self._last_time:
            self._last_time = last_time

        # 1. Feed and finalize carry-in pending receipts (their cuts precede
        #    every cut in this batch, so they finalize first — same order as
        #    the scalar loop).
        still_pending: list[_PendingReceipt] = []
        for pending in self._pending:
            deadline = pending.cut_time + window
            covered = int(np.searchsorted(time_array, deadline, side="right"))
            if covered:
                pending.trans_after.extend(int(value) for value in digest_array[:covered])
            if last_time > deadline:
                self._finalized.append(pending)
            else:
                still_pending.append(pending)
        self._pending = still_pending

        # Concatenated view of the sliding window carried in from earlier
        # observations plus this batch, for the pre-cut AggTrans windows.
        carry_digests = np.fromiter(
            (entry[0] for entry in self._recent), dtype=np.uint64, count=len(self._recent)
        )
        carry_times = np.asarray(recent_times, dtype=np.float64)
        all_digests = np.concatenate([carry_digests, digest_array])
        all_times = np.concatenate([carry_times, time_array])
        offset = len(carry_digests)

        prefix_sums = np.concatenate([[0.0], np.cumsum(time_array)])

        def add_span(lo: int, hi: int) -> None:
            """Fold packets [lo, hi) of the batch into the open aggregate."""
            if hi <= lo:
                return
            if self._open is None:
                self._open = _OpenAggregate(
                    first_pkt_id=int(digest_array[lo]), last_pkt_id=int(digest_array[lo])
                )
            aggregate = self._open
            if aggregate.pkt_count == 0:
                aggregate.start_time = float(time_array[lo])
            aggregate.last_pkt_id = int(digest_array[hi - 1])
            aggregate.pkt_count += hi - lo
            aggregate.end_time = float(time_array[hi - 1])
            aggregate.time_sum += float(prefix_sums[hi] - prefix_sums[lo])

        # 2. Walk the cutting points; everything between two cuts is folded in
        #    with array reductions.
        segment_start = 0
        for position in np.flatnonzero(cut_mask):
            position = int(position)
            add_span(segment_start, position)
            if self._open is not None and self._open.pkt_count > 0:
                self._cut_count += 1
                cut_time = float(time_array[position])
                lo = int(np.searchsorted(all_times, cut_time - window, side="left"))
                trans_before = tuple(
                    int(value) for value in all_digests[lo : offset + position]
                )
                hi = int(np.searchsorted(time_array, cut_time + window, side="right"))
                pending = _PendingReceipt(
                    aggregate=self._open,
                    cut_time=cut_time,
                    trans_before=trans_before,
                    trans_after=[int(value) for value in digest_array[position:hi]],
                )
                if last_time > cut_time + window:
                    self._finalized.append(pending)
                else:
                    self._pending.append(pending)
                self._open = _OpenAggregate(
                    first_pkt_id=int(digest_array[position]),
                    last_pkt_id=int(digest_array[position]),
                )
            add_span(position, position + 1)
            segment_start = position + 1
        add_span(segment_start, count)

        # 3. Rebuild the sliding window of the last J seconds and the peak
        #    occupancy statistic (occupancy after packet i = packets since the
        #    first one within J of it, including carried-in entries).
        window_starts = np.searchsorted(all_times, time_array - window, side="left")
        occupancies = np.arange(offset + 1, offset + count + 1) - window_starts
        peak = int(occupancies.max())
        if peak > self._max_window_occupancy:
            self._max_window_occupancy = peak
        keep_from = int(window_starts[-1])
        self._recent = deque(
            zip(
                (int(value) for value in all_digests[keep_from:]),
                (float(value) for value in all_times[keep_from:]),
            )
        )
        return cut_mask

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "Aggregator") -> "Aggregator":
        """Fold ``other``'s state into this aggregator, in stream order.

        ``other`` must have observed the packets that *follow* this
        aggregator's in the same (time-ordered) path stream, starting from a
        fresh instance — the shard-parallel execution contract.  The merge
        stitches the boundary exactly as Algorithm 2 would have processed the
        concatenated stream:

        * this aggregator's open aggregate is continued by ``other``'s first
          aggregate (or closed by it, when ``other``'s first packet was a
          cutting point);
        * AggTrans windows spanning the boundary are completed on both sides
          (our pending receipts receive ``other``'s first ``J`` seconds of
          packet IDs; ``other``'s early cutting points receive our trailing
          sliding-window IDs);
        * the sliding window, its peak occupancy, and all counters are
          reconciled.

        Receipts, windows, counters and buffer statistics come out identical
        to a single whole-stream run — except an aggregate's ``time_sum``,
        which (as with the batch fast path) may differ in the last ulps
        because partial sums are added in a different order.  The operation is
        associative, so shard grouping never matters.  ``other`` is consumed
        and must not be used afterwards; merge both before ``flush``.
        Returns ``self``.
        """
        if other.config != self.config:
            raise ValueError(
                f"cannot merge aggregators with different configs: "
                f"{self.config} vs {other.config}"
            )
        if self._flushed or other._flushed:
            raise ValueError("cannot merge flushed aggregators; merge before flush")
        if other._observed_packets == 0:
            return self
        if self._observed_packets == 0:
            self._adopt(other)
            return self
        if other._first_time < self._last_time:
            raise ValueError(
                "merge requires time-ordered spans: other's first observation "
                f"({other._first_time}) precedes this aggregator's last "
                f"({self._last_time})"
            )
        window = self._window

        # 1. Our pending receipts' post-cut windows extend into other's span.
        for pending in self._pending:
            deadline = pending.cut_time + window
            pending.trans_after.extend(
                digest for digest, time in other._lead if time <= deadline
            )
        still_pending: list[_PendingReceipt] = []
        for pending in self._pending:
            if other._last_time > pending.cut_time + window:
                self._finalized.append(pending)
            else:
                still_pending.append(pending)

        # 2. The boundary: other's first packet either cuts our open
        #    aggregate or continues it.
        boundary: _PendingReceipt | None = None
        if other._first_cut_suppressed:
            cut_time = other._first_time
            self._cut_count += 1
            boundary = _PendingReceipt(
                aggregate=self._open,
                cut_time=cut_time,
                trans_before=tuple(
                    digest for digest, seen in self._recent if seen >= cut_time - window
                ),
                trans_after=[
                    digest for digest, time in other._lead if time <= cut_time + window
                ],
            )
            if other._last_time > cut_time + window:
                self._finalized.append(boundary)
                boundary = None
        else:
            first_aggregate = other._first_aggregate()
            first_aggregate.first_pkt_id = self._open.first_pkt_id
            first_aggregate.start_time = self._open.start_time
            first_aggregate.pkt_count += self._open.pkt_count
            first_aggregate.time_sum += self._open.time_sum

        # 3. Other's early cutting points may have truncated pre-cut windows:
        #    prepend our trailing sliding-window IDs where the window reaches
        #    back across the boundary.
        for pending in other._finalized + other._pending:
            if pending.cut_time - window <= self._last_time:
                carried = tuple(
                    digest
                    for digest, seen in self._recent
                    if seen >= pending.cut_time - window
                )
                if carried:
                    pending.trans_before = carried + pending.trans_before

        # 4. Sliding-window occupancy: other's first J seconds of packets also
        #    counted our still-in-window trailing packets.
        left_times = [seen for _, seen in self._recent]
        for position, (_, time) in enumerate(other._lead):
            carried = sum(1 for seen in left_times if seen >= time - window)
            occupancy = position + 1 + carried
            if occupancy > self._max_window_occupancy:
                self._max_window_occupancy = occupancy
        if other._max_window_occupancy > self._max_window_occupancy:
            self._max_window_occupancy = other._max_window_occupancy

        # 5. Adopt other's receipts, window and cursors.
        self._finalized.extend(other._finalized)
        self._pending = still_pending + ([boundary] if boundary is not None else [])
        self._pending.extend(other._pending)
        merged_recent = deque(
            entry for entry in self._recent if entry[1] >= other._last_time - window
        )
        merged_recent.extend(other._recent)
        self._recent = merged_recent
        self._open = other._open
        self._observed_packets += other._observed_packets
        self._cut_count += other._cut_count
        if other._first_time <= self._first_time + window:
            limit = self._first_time + window
            self._lead.extend(entry for entry in other._lead if entry[1] <= limit)
        self._last_time = other._last_time
        return self

    def _first_aggregate(self) -> _OpenAggregate:
        """The first aggregate this aggregator opened (still referenced by its
        earliest receipt, or still open)."""
        if self._finalized:
            return self._finalized[0].aggregate
        if self._pending:
            return self._pending[0].aggregate
        return self._open

    def _adopt(self, other: "Aggregator") -> None:
        """Copy ``other``'s state wholesale (merge into an empty aggregator)."""
        self._open = other._open
        self._recent = deque(other._recent)
        self._pending = list(other._pending)
        self._finalized = list(other._finalized)
        self._observed_packets = other._observed_packets
        self._cut_count = other._cut_count
        self._max_window_occupancy = other._max_window_occupancy
        self._first_time = other._first_time
        self._last_time = other._last_time
        self._lead = list(other._lead)
        self._first_cut_suppressed = other._first_cut_suppressed

    def state_digest(self) -> str:
        """A stable hex digest of the aggregator's complete observable state.

        ``time_sum`` enters rounded to 10 significant digits — it is the one
        field accumulated in different orders by the scalar, batch and
        streaming paths (documented float tolerance); everything else hashes
        exact bit patterns.
        """

        def aggregate_state(aggregate: _OpenAggregate | None):
            if aggregate is None or aggregate.pkt_count == 0:
                return None
            return (
                aggregate.first_pkt_id,
                aggregate.last_pkt_id,
                aggregate.pkt_count,
                aggregate.start_time.hex(),
                aggregate.end_time.hex(),
                f"{aggregate.time_sum:.9e}",
            )

        def receipt_state(pending: _PendingReceipt):
            return (
                aggregate_state(pending.aggregate),
                pending.cut_time.hex(),
                pending.trans_before,
                tuple(pending.trans_after),
            )

        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(
            repr(
                (
                    self.config.expected_aggregate_size,
                    self.config.reorder_window,
                    aggregate_state(self._open),
                    [(digest, seen.hex()) for digest, seen in self._recent],
                    [receipt_state(pending) for pending in self._pending],
                    [receipt_state(pending) for pending in self._finalized],
                    self._observed_packets,
                    self._cut_count,
                    self._max_window_occupancy,
                )
            ).encode()
        )
        return hasher.hexdigest()

    def _finalize_pending(self, now: float) -> None:
        """Move pending receipts whose post-cut window has elapsed to finalized."""
        still_pending: list[_PendingReceipt] = []
        for pending in self._pending:
            if now > pending.cut_time + self._window:
                self._finalized.append(pending)
            else:
                still_pending.append(pending)
        self._pending = still_pending

    # -- reporting -------------------------------------------------------------

    def flush(self) -> None:
        """Close the open aggregate and finalize all pending receipts.

        Called at the end of a reporting period (or of the simulation); the
        final, possibly partial aggregate is reported like any other.
        """
        self._flushed = True
        if self._open is not None and self._open.pkt_count > 0:
            trans_before = tuple(pkt_id for pkt_id, _ in self._recent)
            self._finalized.extend(self._pending)
            self._pending = []
            self._finalized.append(
                _PendingReceipt(
                    aggregate=self._open,
                    cut_time=self._open.end_time,
                    trans_before=trans_before,
                )
            )
            self._open = None
        else:
            self._finalized.extend(self._pending)
            self._pending = []

    def receipts(self, path_id: PathID, reset: bool = True) -> list[AggregateReceipt]:
        """Return the finalized aggregate receipts accumulated so far."""
        receipts = [
            AggregateReceipt(
                path_id=path_id,
                first_pkt_id=pending.aggregate.first_pkt_id,
                last_pkt_id=pending.aggregate.last_pkt_id,
                pkt_count=pending.aggregate.pkt_count,
                start_time=pending.aggregate.start_time,
                end_time=pending.aggregate.end_time,
                time_sum=pending.aggregate.time_sum,
                trans_before=pending.trans_before,
                trans_after=tuple(pending.trans_after),
            )
            for pending in self._finalized
        ]
        if reset:
            self._finalized = []
        return receipts

    # -- introspection ----------------------------------------------------------

    @property
    def observed_packets(self) -> int:
        """Total packets observed."""
        return self._observed_packets

    @property
    def cut_count(self) -> int:
        """Number of cutting points observed (closed aggregates)."""
        return self._cut_count

    @property
    def open_aggregate_size(self) -> int:
        """Packets in the currently open aggregate."""
        return self._open.pkt_count if self._open is not None else 0

    @property
    def max_window_occupancy(self) -> int:
        """Largest sliding-window occupancy seen (packets within J seconds)."""
        return self._max_window_occupancy

    def __repr__(self) -> str:
        return (
            f"Aggregator(expected_aggregate_size={self.config.expected_aggregate_size}, "
            f"reorder_window={self.config.reorder_window}, "
            f"observed={self._observed_packets}, cuts={self._cut_count})"
        )
