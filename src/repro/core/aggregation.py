"""Tunable aggregation — Algorithm 2 plus the AggTrans patch-up (Section 6).

Each HOP breaks the packet stream of a path into **aggregates** at
hash-selected cutting points: a packet whose digest exceeds the partition
threshold ``δ`` closes the current aggregate and starts a new one.  Because a
HOP with a lower ``δ`` cuts at (at least) all the points a HOP with a higher
``δ`` cuts at, independently tuned HOPs "never produce partially overlapping
aggregate sets" (Section 6.2), which keeps their receipts joinable.

To survive bounded reordering (Section 6.3), every closed aggregate's receipt
also carries ``AggTrans``: the packet IDs observed within the safety window
``J`` on either side of the cutting point.  A verifier uses these windows to
migrate packets across misaligned boundaries (see
:func:`repro.core.partition.aligned_aggregates`).

:class:`Aggregator` keeps constant state per open aggregate plus a sliding
window of the last ``J`` seconds of packet IDs; per-packet work is constant.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.receipts import AggregateReceipt, PathID
from repro.net.hashing import MASK64, threshold_for_rate
from repro.util.validation import check_non_negative, check_positive

__all__ = ["AggregatorConfig", "Aggregator"]


@dataclass(frozen=True)
class AggregatorConfig:
    """Configuration of a HOP's aggregator.

    Attributes
    ----------
    expected_aggregate_size:
        Target number of packets per aggregate.  The partition threshold ``δ``
        is set so a packet becomes a cutting point with probability
        ``1 / expected_aggregate_size`` (the paper's evaluation uses one
        aggregate per 100,000 packets).
    reorder_window:
        The safety inter-arrival threshold ``J`` (seconds): packets observed
        more than ``J`` apart are assumed never to be reordered.  The paper
        conservatively suggests 10 ms.
    """

    expected_aggregate_size: int = 100_000
    reorder_window: float = 0.01

    def __post_init__(self) -> None:
        check_positive("expected_aggregate_size", self.expected_aggregate_size)
        check_non_negative("reorder_window", self.reorder_window)

    @property
    def partition_rate(self) -> float:
        """Probability that a packet is a cutting point."""
        return 1.0 / self.expected_aggregate_size

    @property
    def partition_threshold(self) -> int:
        """The 64-bit threshold ``δ`` for the configured aggregate size."""
        return threshold_for_rate(self.partition_rate)


@dataclass
class _OpenAggregate:
    """Mutable state of the aggregate currently being filled."""

    first_pkt_id: int
    last_pkt_id: int
    pkt_count: int = 0
    start_time: float = 0.0
    end_time: float = 0.0
    time_sum: float = 0.0

    def add(self, digest: int, time: float) -> None:
        if self.pkt_count == 0:
            self.start_time = time
        self.last_pkt_id = digest
        self.pkt_count += 1
        self.end_time = time
        self.time_sum += time


@dataclass
class _PendingReceipt:
    """A closed aggregate waiting for its post-cut AggTrans window to fill."""

    aggregate: _OpenAggregate
    cut_time: float
    trans_before: tuple[int, ...]
    trans_after: list[int] = field(default_factory=list)


class Aggregator:
    """Per-path implementation of Algorithm 2 (``Partition``) with AggTrans.

    Call :meth:`observe` for every packet of the path in observation order
    (passing the packet digest and the HOP's local timestamp), then
    :meth:`receipts` to drain the finalized aggregate receipts, and
    :meth:`flush` at the end of a reporting period to close the open
    aggregate.
    """

    def __init__(self, config: AggregatorConfig | None = None) -> None:
        self.config = config or AggregatorConfig()
        self._partition_threshold = self.config.partition_threshold
        self._window = self.config.reorder_window
        self._open: _OpenAggregate | None = None
        self._recent: deque[tuple[int, float]] = deque()
        self._pending: list[_PendingReceipt] = []
        self._finalized: list[_PendingReceipt] = []
        self._observed_packets = 0
        self._cut_count = 0
        self._max_window_occupancy = 0

    # -- observation ---------------------------------------------------------

    def observe(self, digest: int, time: float) -> bool:
        """Process one observed packet.

        Returns ``True`` if the packet was a cutting point (started a new
        aggregate).
        """
        if not 0 <= digest <= MASK64:
            raise ValueError(f"digest must be a 64-bit value, got {digest!r}")
        self._observed_packets += 1
        self._finalize_pending(time)

        is_cut = digest > self._partition_threshold
        if is_cut and self._open is not None and self._open.pkt_count > 0:
            self._cut_count += 1
            trans_before = tuple(
                pkt_id for pkt_id, seen in self._recent if seen >= time - self._window
            )
            self._pending.append(
                _PendingReceipt(
                    aggregate=self._open, cut_time=time, trans_before=trans_before
                )
            )
            self._open = _OpenAggregate(first_pkt_id=digest, last_pkt_id=digest)
        elif self._open is None:
            self._open = _OpenAggregate(first_pkt_id=digest, last_pkt_id=digest)

        self._open.add(digest, time)

        # Feed the post-cut window of any aggregate closed less than J ago.
        for pending in self._pending:
            if time <= pending.cut_time + self._window:
                pending.trans_after.append(digest)

        # Maintain the sliding window of the last J seconds of packet IDs.
        self._recent.append((digest, time))
        while self._recent and self._recent[0][1] < time - self._window:
            self._recent.popleft()
        if len(self._recent) > self._max_window_occupancy:
            self._max_window_occupancy = len(self._recent)
        return is_cut

    def _finalize_pending(self, now: float) -> None:
        """Move pending receipts whose post-cut window has elapsed to finalized."""
        still_pending: list[_PendingReceipt] = []
        for pending in self._pending:
            if now > pending.cut_time + self._window:
                self._finalized.append(pending)
            else:
                still_pending.append(pending)
        self._pending = still_pending

    # -- reporting -------------------------------------------------------------

    def flush(self) -> None:
        """Close the open aggregate and finalize all pending receipts.

        Called at the end of a reporting period (or of the simulation); the
        final, possibly partial aggregate is reported like any other.
        """
        if self._open is not None and self._open.pkt_count > 0:
            trans_before = tuple(pkt_id for pkt_id, _ in self._recent)
            self._finalized.extend(self._pending)
            self._pending = []
            self._finalized.append(
                _PendingReceipt(
                    aggregate=self._open,
                    cut_time=self._open.end_time,
                    trans_before=trans_before,
                )
            )
            self._open = None
        else:
            self._finalized.extend(self._pending)
            self._pending = []

    def receipts(self, path_id: PathID, reset: bool = True) -> list[AggregateReceipt]:
        """Return the finalized aggregate receipts accumulated so far."""
        receipts = [
            AggregateReceipt(
                path_id=path_id,
                first_pkt_id=pending.aggregate.first_pkt_id,
                last_pkt_id=pending.aggregate.last_pkt_id,
                pkt_count=pending.aggregate.pkt_count,
                start_time=pending.aggregate.start_time,
                end_time=pending.aggregate.end_time,
                time_sum=pending.aggregate.time_sum,
                trans_before=pending.trans_before,
                trans_after=tuple(pending.trans_after),
            )
            for pending in self._finalized
        ]
        if reset:
            self._finalized = []
        return receipts

    # -- introspection ----------------------------------------------------------

    @property
    def observed_packets(self) -> int:
        """Total packets observed."""
        return self._observed_packets

    @property
    def cut_count(self) -> int:
        """Number of cutting points observed (closed aggregates)."""
        return self._cut_count

    @property
    def open_aggregate_size(self) -> int:
        """Packets in the currently open aggregate."""
        return self._open.pkt_count if self._open is not None else 0

    @property
    def max_window_occupancy(self) -> int:
        """Largest sliding-window occupancy seen (packets within J seconds)."""
        return self._max_window_occupancy

    def __repr__(self) -> str:
        return (
            f"Aggregator(expected_aggregate_size={self.config.expected_aggregate_size}, "
            f"reorder_window={self.config.reorder_window}, "
            f"observed={self._observed_packets}, cuts={self._cut_count})"
        )
