"""Multi-interval measurement campaigns.

SLAs are contracted over long horizons ("a certain level of packet loss per
month"), while receipts are produced per reporting period.  A
:class:`MeasurementCampaign` runs the VPM pipeline over a sequence of
measurement intervals — each interval is one trace segment driven through the
path scenario and one round of receipt generation/verification — and
accumulates the per-interval results into campaign-level statistics a customer
would actually hold a provider to:

* pooled delay quantiles over all matched samples of the campaign;
* total loss over all aligned aggregates;
* the fraction of intervals in which the target domain's receipts survived
  verification;
* per-interval history for trending and debugging.

Campaign-level pooled quantiles are held in a
:class:`~repro.analysis.quantiles.MergedDelayPool` — each interval's samples
merge into sorted state once, instead of re-pooling every interval's raw
arrays on each query — and intervals execute on the vectorized batch engine
(bit-identical to the scalar path, ~30× faster).  For *checkpointable*
campaigns driven from a declarative spec, see
:class:`repro.engine.campaign.CampaignRunner`, which this module's mergeable
state underpins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.analysis.quantiles import MergedDelayPool
from repro.analysis.sla import SLASpec, SLAVerdict, check_sla
from repro.core.estimation import DEFAULT_QUANTILES, estimate_delay_quantiles
from repro.core.hop import HOPConfig
from repro.core.protocol import VPMSession
from repro.core.verifier import DomainPerformance
from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.net.topology import HOPPath
from repro.simulation.scenario import PathScenario

__all__ = ["IntervalResult", "CampaignResult", "MeasurementCampaign"]


@dataclass(frozen=True)
class IntervalResult:
    """Outcome of one measurement interval for the target domain."""

    index: int
    performance: DomainPerformance
    accepted: bool
    observed_packets: int
    receipt_bytes: int
    delay_samples: tuple[float, ...] = ()


@dataclass(frozen=True)
class CampaignResult:
    """Accumulated outcome of a whole campaign for the target domain.

    ``pool`` is the campaign's mergeable pooled-delay state
    (:class:`~repro.analysis.quantiles.MergedDelayPool`), maintained
    incrementally by :class:`MeasurementCampaign`; when absent (results built
    by hand), it is reconstructed lazily from the per-interval samples.  Both
    paths hold the identical sorted multiset — pooled == merged — so
    campaign statistics never depend on how the result was assembled.
    """

    domain: str
    intervals: tuple[IntervalResult, ...]
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES
    pool: MergedDelayPool | None = field(default=None, compare=False)

    @property
    def interval_count(self) -> int:
        return len(self.intervals)

    @property
    def total_offered_packets(self) -> int:
        """Packets offered to the domain across the campaign."""
        return sum(interval.performance.offered_packets for interval in self.intervals)

    @property
    def total_lost_packets(self) -> int:
        """Packets the domain lost across the campaign."""
        return sum(interval.performance.lost_packets for interval in self.intervals)

    @property
    def loss_rate(self) -> float:
        """Campaign-wide loss rate (exact, from the aligned aggregates)."""
        offered = self.total_offered_packets
        return self.total_lost_packets / offered if offered else 0.0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of intervals whose receipts survived verification."""
        if not self.intervals:
            return 1.0
        return sum(interval.accepted for interval in self.intervals) / len(self.intervals)

    def delay_pool(self) -> MergedDelayPool:
        """The campaign's pooled delay samples as mergeable sorted state."""
        if self.pool is not None:
            return self.pool
        rebuilt = MergedDelayPool()
        for interval in self.intervals:
            rebuilt.extend(interval.delay_samples)
        return rebuilt

    def pooled_delay_quantiles(self) -> dict[float, float]:
        """Delay quantiles over every matched sample of the campaign."""
        return self.delay_pool().quantiles(self.quantiles)

    def check_sla(self, sla: SLASpec) -> SLAVerdict:
        """Evaluate the campaign totals against an SLA."""
        pool = self.delay_pool()
        samples = np.asarray(pool.sorted_samples)
        estimates = (
            estimate_delay_quantiles(samples, self.quantiles) if len(samples) else {}
        )
        synthetic = DomainPerformance(
            domain=self.domain,
            delay_quantiles=estimates,
            delay_sample_count=len(samples),
            offered_packets=self.total_offered_packets,
            lost_packets=self.total_lost_packets,
        )
        return check_sla(synthetic, sla)


class MeasurementCampaign:
    """Runs repeated measurement intervals against one target domain.

    Parameters
    ----------
    scenario:
        The (already configured) path scenario to drive each interval through.
        The same scenario object is reused so domain conditions persist across
        intervals; its internal randomness advances naturally.
    target:
        The transit domain whose performance the campaign tracks.
    observer:
        The domain acting as receipt collector/verifier.
    configs:
        Per-domain HOP configurations (as for :class:`VPMSession`).
    agents_factory:
        Optional callable returning fresh per-interval adversarial agents
        (keyed by domain name); honest agents are rebuilt per interval
        otherwise.
    """

    def __init__(
        self,
        scenario: PathScenario,
        target: str,
        observer: str = "S",
        configs: dict[str, HOPConfig | None] | HOPConfig | None = None,
        agents_factory: Callable[[HOPPath], dict[str, object]] | None = None,
    ) -> None:
        self.scenario = scenario
        self.target = target
        self.observer = observer
        if isinstance(configs, HOPConfig):
            configs = {domain.name: configs for domain in scenario.path.domains}
        self.configs = configs or {
            domain.name: HOPConfig() for domain in scenario.path.domains
        }
        self.agents_factory = agents_factory
        self._intervals: list[IntervalResult] = []
        self._pool = MergedDelayPool()

    @classmethod
    def from_spec(cls, spec) -> "MeasurementCampaign":
        """Build a campaign from a declarative :class:`repro.api.ExperimentSpec`.

        The campaign's scenario, per-domain configs, adversaries, target and
        observer all come from the spec; see
        :meth:`repro.api.Experiment.campaign` (to which this delegates) and
        :meth:`repro.api.Experiment.interval_packets` for seed-spaced
        per-interval traffic.
        """
        from repro.api.runner import Experiment

        return Experiment(spec).campaign()

    def run_interval(self, packets: Sequence[Packet] | PacketBatch) -> IntervalResult:
        """Run one measurement interval over ``packets`` and record it.

        Intervals execute on the vectorized batch engine (receipts are
        bit-identical to the scalar path); pass a :class:`PacketBatch`
        directly to skip the conversion.
        """
        batch = (
            packets
            if isinstance(packets, PacketBatch)
            else PacketBatch.from_packets(packets)
        )
        observation = self.scenario.run_batch(batch)
        agents = self.agents_factory(self.scenario.path) if self.agents_factory else {}
        session = VPMSession(self.scenario.path, configs=self.configs, agents=agents)
        session.run(observation)

        verifier = session.verifier_for(self.observer)
        performance = verifier.estimate_domain(self.target)
        verification = verifier.verify_domain(self.target)

        target_hops = self.scenario.path.hops_of(self.target)
        ingress_hop = target_hops[0].hop_id if len(target_hops) >= 2 else None
        egress_hop = target_hops[-1].hop_id if len(target_hops) >= 2 else None
        delay_samples: tuple[float, ...] = ()
        if ingress_hop is not None:
            from repro.core.estimation import match_sample_delays

            ingress_receipt = verifier.sample_receipt_for(ingress_hop)
            egress_receipt = verifier.sample_receipt_for(egress_hop)
            if ingress_receipt is not None and egress_receipt is not None:
                delay_samples = tuple(
                    match_sample_delays(ingress_receipt, egress_receipt).tolist()
                )

        overhead = session.overhead()
        result = IntervalResult(
            index=len(self._intervals),
            performance=performance,
            accepted=verification.accepted,
            observed_packets=overhead.observed_packets,
            receipt_bytes=overhead.receipt_bytes,
            delay_samples=delay_samples,
        )
        self._intervals.append(result)
        self._pool.extend(delay_samples)
        return result

    def run(
        self, interval_traces: Sequence[Sequence[Packet] | PacketBatch]
    ) -> CampaignResult:
        """Run every interval and return the accumulated campaign result."""
        for packets in interval_traces:
            self.run_interval(packets)
        return self.result()

    def result(self) -> CampaignResult:
        """The campaign result over all intervals run so far."""
        return CampaignResult(
            domain=self.target,
            intervals=tuple(self._intervals),
            # Snapshot: later intervals rebind the campaign pool's array, so
            # an already-returned result keeps the state it was built from.
            pool=MergedDelayPool().merge(self._pool),
        )
