"""Estimation of delay quantiles and loss from receipts.

This module plays the role of the estimation technique the paper borrows from
Sommers et al. [20]: given the delays of the *commonly sampled* packets
between a domain's ingress and egress HOPs, estimate delay quantiles for the
overall traffic, with confidence bounds; and given sample or aggregate
receipts, estimate/compute the loss the domain introduced.

Delay quantiles are estimated with the standard order-statistics approach:
the point estimate of quantile ``q`` is the empirical quantile of the sampled
delays, and a distribution-free confidence interval is obtained from the
binomial distribution of the number of samples below the true quantile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.receipts import SampleReceipt
from repro.util.validation import check_probability

__all__ = [
    "DelayQuantileEstimate",
    "estimate_delay_quantiles",
    "quantile_confidence_bounds",
    "match_sample_delays",
    "estimate_loss_rate",
    "delay_accuracy",
    "DEFAULT_QUANTILES",
]

# The quantiles reported by default: median, the 90th percentile the paper
# uses in its example SLA statement, and the tail quantiles SLAs care about.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.75, 0.9, 0.95, 0.99)


@dataclass(frozen=True)
class DelayQuantileEstimate:
    """A delay-quantile estimate with a distribution-free confidence interval.

    Attributes
    ----------
    quantile:
        The quantile being estimated (e.g. 0.9).
    estimate:
        Point estimate (seconds).
    lower, upper:
        Confidence bounds (seconds) at the requested confidence level.
    sample_count:
        Number of delay samples the estimate is based on.
    """

    quantile: float
    estimate: float
    lower: float
    upper: float
    sample_count: int

    @property
    def interval_width(self) -> float:
        """Width of the confidence interval (seconds)."""
        return self.upper - self.lower


def quantile_confidence_bounds(
    sorted_delays: np.ndarray, quantile: float, confidence: float = 0.95
) -> tuple[float, float]:
    """Distribution-free confidence bounds for a quantile from order statistics.

    For ``n`` i.i.d. samples, the number of samples below the true ``q``-th
    quantile is Binomial(n, q); the interval is formed by the order statistics
    at the binomial's ``(1±confidence)/2`` quantiles.
    """
    check_probability("quantile", quantile)
    check_probability("confidence", confidence)
    count = len(sorted_delays)
    if count == 0:
        raise ValueError("cannot compute bounds from zero samples")
    alpha = 1.0 - confidence
    # scipy-free binomial quantiles via the normal approximation with
    # continuity correction, clamped to valid ranks; exact enough for the
    # sample sizes the protocol produces (hundreds to tens of thousands).
    mean = count * quantile
    std = float(np.sqrt(count * quantile * (1.0 - quantile)))
    z = _normal_quantile(1.0 - alpha / 2.0)
    lower_rank = int(np.floor(mean - z * std - 0.5))
    upper_rank = int(np.ceil(mean + z * std + 0.5))
    lower_rank = min(max(lower_rank, 0), count - 1)
    upper_rank = min(max(upper_rank, 0), count - 1)
    return float(sorted_delays[lower_rank]), float(sorted_delays[upper_rank])


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = np.sqrt(-2.0 * np.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = np.sqrt(-2.0 * np.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def estimate_delay_quantiles(
    delays: Sequence[float] | np.ndarray,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
    confidence: float = 0.95,
) -> dict[float, DelayQuantileEstimate]:
    """Estimate delay quantiles (with confidence bounds) from sampled delays."""
    delays = np.asarray(delays, dtype=float)
    if delays.size == 0:
        raise ValueError("cannot estimate quantiles from zero delay samples")
    sorted_delays = np.sort(delays)
    estimates: dict[float, DelayQuantileEstimate] = {}
    for quantile in quantiles:
        check_probability("quantile", quantile)
        point = float(np.quantile(sorted_delays, quantile))
        lower, upper = quantile_confidence_bounds(sorted_delays, quantile, confidence)
        estimates[quantile] = DelayQuantileEstimate(
            quantile=quantile,
            estimate=point,
            lower=lower,
            upper=upper,
            sample_count=int(delays.size),
        )
    return estimates


def match_sample_delays(
    ingress: SampleReceipt, egress: SampleReceipt
) -> np.ndarray:
    """Per-packet delays of the packets sampled at both HOPs of a domain.

    For every packet ID present in both receipts, the delay through the domain
    is the egress timestamp minus the ingress timestamp (Section 4,
    "Receipt-based Statistics").  Negative differences (possible only with
    badly de-synchronized HOP clocks) are kept — they are informative to the
    caller — but ``NaN`` never appears.
    """
    ingress_times = {record.pkt_id: record.time for record in ingress.samples}
    delays = [
        record.time - ingress_times[record.pkt_id]
        for record in egress.samples
        if record.pkt_id in ingress_times
    ]
    return np.asarray(delays, dtype=float)


def estimate_loss_rate(
    ingress: SampleReceipt, egress: SampleReceipt
) -> tuple[float, int, int]:
    """Estimate a domain's loss rate from its sample receipts.

    Returns ``(loss_rate, lost_samples, ingress_samples)`` where the rate is
    the fraction of ingress-sampled packets that do not appear in the egress
    receipt.  This is the *sampling-based* loss estimate; the aggregation
    component provides exact counts (see the verifier).
    """
    ingress_ids = ingress.pkt_ids
    if not ingress_ids:
        return 0.0, 0, 0
    egress_ids = egress.pkt_ids
    lost = len(ingress_ids - egress_ids)
    return lost / len(ingress_ids), lost, len(ingress_ids)


def delay_accuracy(
    estimated: Mapping[float, DelayQuantileEstimate] | Mapping[float, float],
    ground_truth: Mapping[float, float],
) -> float:
    """The accuracy metric of Figure 2: worst-case quantile-estimate error.

    ``estimated`` maps quantiles to estimates (or :class:`DelayQuantileEstimate`
    objects); ``ground_truth`` maps the same quantiles to the true delays of
    the full packet population.  The result is the maximum absolute error
    across the common quantiles, in seconds.
    """
    common = set(estimated) & set(ground_truth)
    if not common:
        raise ValueError("estimated and ground_truth share no quantiles")
    errors = []
    for quantile in common:
        value = estimated[quantile]
        point = value.estimate if isinstance(value, DelayQuantileEstimate) else float(value)
        errors.append(abs(point - ground_truth[quantile]))
    return float(max(errors))
