"""The receipt collector / verifier.

A verifier (any domain on the path — typically a customer or peer of the
domain being evaluated) collects the receipts of all HOPs on a path and uses
them to

* **estimate** each transit domain's delay quantiles (from the packets
  commonly sampled at the domain's ingress and egress HOPs) and loss (exactly,
  from the aligned aggregate counts);
* **verify** those estimates by (a) cross-checking every inter-domain link's
  receipts for consistency (Section 4) and (b) re-deriving a domain's
  performance from its *neighbors'* receipts alone, which bounds how much a
  lying domain can exaggerate (Section 7.2, "Verifiability").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.consistency import Inconsistency, check_link_consistency
from repro.core.estimation import (
    DEFAULT_QUANTILES,
    DelayQuantileEstimate,
    estimate_delay_quantiles,
    match_sample_delays,
)
from repro.core.hop import HOPReport
from repro.core.partition import AlignedAggregates, aligned_aggregates
from repro.core.receipts import (
    AggregateReceipt,
    SampleReceipt,
    combine_sample_receipts,
)
from repro.net.topology import Domain, HOPPath

__all__ = ["DomainPerformance", "VerificationResult", "Verifier"]


@dataclass(frozen=True)
class DomainPerformance:
    """A domain's loss/delay performance as computed from receipts.

    Attributes
    ----------
    domain:
        The evaluated domain's name.
    delay_quantiles:
        Estimated delay quantiles (seconds) with confidence bounds; empty when
        no packets were commonly sampled at the ingress and egress HOPs.
    delay_sample_count:
        Number of commonly sampled packets the delay estimates rest on.
    offered_packets / lost_packets / loss_rate:
        Exact loss accounting over the aligned aggregates.
    loss_granularity:
        Durations (seconds) of the joined aggregates over which loss could be
        computed — Figure 3's quantity.  The mean of this list is the
        "granularity at which the domain's loss performance is computed".
    aligned:
        The aligned aggregate pairs the loss numbers were derived from.
    """

    domain: str
    delay_quantiles: dict[float, DelayQuantileEstimate] = field(default_factory=dict)
    delay_sample_count: int = 0
    offered_packets: int = 0
    lost_packets: int = 0
    loss_granularity: tuple[float, ...] = ()
    aligned: tuple[AlignedAggregates, ...] = ()

    @property
    def loss_rate(self) -> float:
        """Exact loss rate over the aligned aggregates."""
        return self.lost_packets / self.offered_packets if self.offered_packets else 0.0

    @property
    def mean_loss_granularity(self) -> float:
        """Mean time span over which a loss measurement could be computed."""
        return float(np.mean(self.loss_granularity)) if self.loss_granularity else 0.0

    def delay_quantile(self, quantile: float) -> float:
        """Point estimate for one delay quantile (seconds)."""
        return self.delay_quantiles[quantile].estimate


@dataclass(frozen=True)
class VerificationResult:
    """The outcome of verifying one domain's receipts.

    ``claimed`` is the performance computed from the domain's own receipts;
    ``independent`` is the performance re-derived from its neighbors' receipts
    (which includes the two inter-domain links, each bounded by MaxDiff);
    ``inconsistencies`` are the receipt disagreements found on the domain's
    two inter-domain links.  ``accepted`` is ``True`` when no inconsistency
    implicates the domain.
    """

    domain: str
    claimed: DomainPerformance
    independent: DomainPerformance | None
    inconsistencies: tuple[Inconsistency, ...] = ()

    @property
    def accepted(self) -> bool:
        """Whether the domain's receipts survived verification."""
        return not self.inconsistencies


class Verifier:
    """Collects the receipts of all HOPs on a path and evaluates domains.

    Parameters
    ----------
    path:
        The HOP path the receipts refer to.
    quantiles:
        The delay quantiles to estimate.
    confidence:
        Confidence level for the quantile bounds.
    """

    def __init__(
        self,
        path: HOPPath,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        confidence: float = 0.95,
    ) -> None:
        self.path = path
        self.quantiles = tuple(quantiles)
        self.confidence = float(confidence)
        self._sample_receipts: dict[int, list[SampleReceipt]] = {}
        self._aggregate_receipts: dict[int, list[AggregateReceipt]] = {}

    # -- receipt collection -------------------------------------------------------

    def add_report(self, report: HOPReport) -> None:
        """Add one HOP's report to the verifier's receipt store."""
        samples = self._sample_receipts.setdefault(report.hop_id, [])
        samples.extend(report.sample_receipts)
        aggregates = self._aggregate_receipts.setdefault(report.hop_id, [])
        aggregates.extend(report.aggregate_receipts)

    def add_reports(self, reports: Mapping[int, HOPReport] | Iterable[HOPReport]) -> None:
        """Add several HOP reports (a mapping or an iterable)."""
        if isinstance(reports, Mapping):
            reports = reports.values()
        for report in reports:
            self.add_report(report)

    def sample_receipt_for(self, hop_id: int) -> SampleReceipt | None:
        """The (combined) sample receipt of one HOP, or ``None``."""
        receipts = self._sample_receipts.get(hop_id)
        if not receipts:
            return None
        return combine_sample_receipts(receipts)

    def aggregate_receipts_for(self, hop_id: int) -> list[AggregateReceipt]:
        """The aggregate receipts of one HOP, in observation order."""
        receipts = list(self._aggregate_receipts.get(hop_id, []))
        receipts.sort(key=lambda receipt: receipt.start_time)
        return receipts

    # -- estimation ------------------------------------------------------------------

    def _domain_hops(self, domain: Domain | str) -> tuple[int, int]:
        name = domain.name if isinstance(domain, Domain) else domain
        hops = self.path.hops_of(name)
        if len(hops) < 2:
            raise ValueError(
                f"domain {name!r} is not a transit domain on {self.path}; "
                "its performance cannot be measured edge-to-edge"
            )
        return hops[0].hop_id, hops[-1].hop_id

    def _performance_between(
        self, name: str, ingress_hop: int, egress_hop: int
    ) -> DomainPerformance:
        ingress_samples = self.sample_receipt_for(ingress_hop)
        egress_samples = self.sample_receipt_for(egress_hop)
        delay_quantiles: dict[float, DelayQuantileEstimate] = {}
        sample_count = 0
        if ingress_samples is not None and egress_samples is not None:
            delays = match_sample_delays(ingress_samples, egress_samples)
            sample_count = int(delays.size)
            if sample_count:
                delay_quantiles = estimate_delay_quantiles(
                    delays, self.quantiles, self.confidence
                )

        ingress_aggregates = self.aggregate_receipts_for(ingress_hop)
        egress_aggregates = self.aggregate_receipts_for(egress_hop)
        aligned = tuple(aligned_aggregates(ingress_aggregates, egress_aggregates))
        offered = sum(pair.upstream.pkt_count for pair in aligned)
        lost = sum(max(pair.lost_packets, 0) for pair in aligned)
        granularity = tuple(pair.duration for pair in aligned)

        return DomainPerformance(
            domain=name,
            delay_quantiles=delay_quantiles,
            delay_sample_count=sample_count,
            offered_packets=offered,
            lost_packets=lost,
            loss_granularity=granularity,
            aligned=aligned,
        )

    def estimate_domain(self, domain: Domain | str) -> DomainPerformance:
        """Estimate a transit domain's performance from its own receipts."""
        name = domain.name if isinstance(domain, Domain) else domain
        ingress_hop, egress_hop = self._domain_hops(name)
        return self._performance_between(name, ingress_hop, egress_hop)

    def estimate_domain_via_neighbors(self, domain: Domain | str) -> DomainPerformance | None:
        """Re-derive a domain's performance from its neighbors' receipts only.

        The measurement spans the egress HOP of the previous domain to the
        ingress HOP of the next domain, so it includes the two inter-domain
        links — each bounded by its MaxDiff — and therefore upper-bounds the
        domain's contribution without trusting any of the domain's receipts.
        Returns ``None`` for a domain at the edge of the path.
        """
        name = domain.name if isinstance(domain, Domain) else domain
        ingress_hop, egress_hop = self._domain_hops(name)
        upstream_neighbor_hop: int | None = None
        downstream_neighbor_hop: int | None = None
        hops = self.path.hops
        for index, hop in enumerate(hops):
            if hop.hop_id == ingress_hop and index > 0:
                upstream_neighbor_hop = hops[index - 1].hop_id
            if hop.hop_id == egress_hop and index + 1 < len(hops):
                downstream_neighbor_hop = hops[index + 1].hop_id
        if upstream_neighbor_hop is None or downstream_neighbor_hop is None:
            return None
        return self._performance_between(
            name, upstream_neighbor_hop, downstream_neighbor_hop
        )

    # -- verification ------------------------------------------------------------------

    def check_consistency(self) -> list[Inconsistency]:
        """Cross-check receipts across every inter-domain link of the path."""
        findings: list[Inconsistency] = []
        for upstream_hop, downstream_hop in self.path.inter_domain_pairs():
            upstream_samples = self._sample_receipts.get(upstream_hop.hop_id, [])
            downstream_samples = self._sample_receipts.get(downstream_hop.hop_id, [])
            upstream_aggregates = self.aggregate_receipts_for(upstream_hop.hop_id)
            downstream_aggregates = self.aggregate_receipts_for(downstream_hop.hop_id)
            if not (upstream_samples or upstream_aggregates) or not (
                downstream_samples or downstream_aggregates
            ):
                # One side has not deployed VPM (partial deployment) — nothing
                # to cross-check on this link.
                continue
            findings.extend(
                check_link_consistency(
                    upstream_samples,
                    downstream_samples,
                    upstream_aggregates,
                    downstream_aggregates,
                )
            )
        return findings

    def verify_domain(self, domain: Domain | str) -> VerificationResult:
        """Estimate a domain and check whether its receipts survive verification."""
        name = domain.name if isinstance(domain, Domain) else domain
        claimed = self.estimate_domain(name)
        independent = self.estimate_domain_via_neighbors(name)
        ingress_hop, egress_hop = self._domain_hops(name)
        relevant = tuple(
            finding
            for finding in self.check_consistency()
            if finding.upstream_hop in (ingress_hop, egress_hop)
            or finding.downstream_hop in (ingress_hop, egress_hop)
        )
        return VerificationResult(
            domain=name,
            claimed=claimed,
            independent=independent,
            inconsistencies=relevant,
        )
