"""Reproduction of "Verifiable Network-Performance Measurements" (VPM).

This package implements the VPM protocol described by Argyraki, Maniatis and
Singla (CoNEXT 2010, arXiv:1005.3148) together with every substrate the paper
depends on: a packet/topology model, synthetic traffic generation standing in
for the CAIDA traces, a discrete-event congestion simulator standing in for
ns-2, the baseline protocols of Section 3, adversary models, and the resource
accounting of Section 7.1.

Public entry points
-------------------
**The declarative experiment API** (:mod:`repro.api`) is the official front
door: describe one evaluation cell — traffic, path conditions, protocol
configuration, adversaries, estimation question — as a frozen, JSON-round-
trippable :class:`~repro.api.ExperimentSpec` and execute it with
:class:`~repro.api.Experiment` (``.run()`` for one cell on the vectorized
batch path, ``.sweep(grid, workers=N)`` for parallel cartesian sweeps that are
bit-identical to serial runs).  Components are named by registry key and third
parties plug in new ones with the ``@repro.api.register_*`` decorators.

The engine layer underneath remains importable for code that needs the lower
altitude:

* :class:`repro.core.sampling.DelaySampler` — bias-resistant delay sampling
  (Algorithm 1 of the paper).
* :class:`repro.core.aggregation.Aggregator` — tunable aggregation
  (Algorithm 2 of the paper).
* :class:`repro.core.hop.HOPCollector` / :class:`repro.core.hop.HOPProcessor`
  — the data-plane / control-plane halves of a hand-off point.
* :class:`repro.core.verifier.Verifier` — the receipt collector that computes
  and verifies per-domain loss and delay.
* :class:`repro.simulation.scenario.PathScenario` — the Figure-1 scenario used
  throughout the evaluation (object and batch variants).
* :class:`repro.net.batch.PacketBatch` — the columnar packet representation
  behind the batch fast path.

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for the
reproduction of every table and figure.
"""

from repro.api import Experiment, ExperimentSpec, MeshSpec, TopologySpec
from repro.api.spec import CampaignSpec, SLATargetSpec
from repro.core.aggregation import Aggregator
from repro.core.domain import DomainAgent
from repro.core.hop import HOPCollector, HOPProcessor
from repro.core.protocol import MeshSession, VPMSession
from repro.core.receipts import (
    AggregateReceipt,
    PathID,
    SampleReceipt,
    SampleRecord,
)
from repro.core.sampling import DelaySampler
from repro.core.verifier import Verifier
from repro.engine import (
    CampaignRunner,
    MeshRunner,
    ScenarioStream,
    StreamingResult,
    StreamingRunner,
)
from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.net.topology import Domain, HOP, HOPPath, Topology
from repro.simulation.mesh import MeshObservation, MeshScenario
from repro.simulation.scenario import (
    BatchDomainTruth,
    BatchPathObservation,
    PathScenario,
)
from repro.traffic.trace import SyntheticTrace, TraceConfig
from repro.store import RunStore
from repro.traffic.workload import make_workload

__version__ = "1.2.0"

__all__ = [
    "Aggregator",
    "AggregateReceipt",
    "BatchDomainTruth",
    "BatchPathObservation",
    "CampaignRunner",
    "CampaignSpec",
    "DelaySampler",
    "Domain",
    "DomainAgent",
    "Experiment",
    "ExperimentSpec",
    "HOP",
    "HOPCollector",
    "HOPPath",
    "HOPProcessor",
    "MeshObservation",
    "MeshRunner",
    "MeshScenario",
    "MeshSession",
    "MeshSpec",
    "Packet",
    "PacketBatch",
    "PathID",
    "PathScenario",
    "RunStore",
    "SLATargetSpec",
    "SampleReceipt",
    "SampleRecord",
    "ScenarioStream",
    "StreamingResult",
    "StreamingRunner",
    "SyntheticTrace",
    "Topology",
    "TopologySpec",
    "TraceConfig",
    "VPMSession",
    "Verifier",
    "__version__",
    "make_workload",
]
