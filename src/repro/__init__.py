"""Reproduction of "Verifiable Network-Performance Measurements" (VPM).

This package implements the VPM protocol described by Argyraki, Maniatis and
Singla (CoNEXT 2010, arXiv:1005.3148) together with every substrate the paper
depends on: a packet/topology model, synthetic traffic generation standing in
for the CAIDA traces, a discrete-event congestion simulator standing in for
ns-2, the baseline protocols of Section 3, adversary models, and the resource
accounting of Section 7.1.

Public entry points
-------------------
The most commonly used classes are re-exported here:

* :class:`repro.core.sampling.DelaySampler` — bias-resistant delay sampling
  (Algorithm 1 of the paper).
* :class:`repro.core.aggregation.Aggregator` — tunable aggregation
  (Algorithm 2 of the paper).
* :class:`repro.core.hop.HOPCollector` / :class:`repro.core.hop.HOPProcessor`
  — the data-plane / control-plane halves of a hand-off point.
* :class:`repro.core.verifier.Verifier` — the receipt collector that computes
  and verifies per-domain loss and delay.
* :class:`repro.simulation.scenario.PathScenario` — the Figure-1 scenario used
  throughout the evaluation.

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for the
reproduction of every table and figure.
"""

from repro.core.aggregation import Aggregator
from repro.core.domain import DomainAgent
from repro.core.hop import HOPCollector, HOPProcessor
from repro.core.protocol import VPMSession
from repro.core.receipts import (
    AggregateReceipt,
    PathID,
    SampleReceipt,
    SampleRecord,
)
from repro.core.sampling import DelaySampler
from repro.core.verifier import Verifier
from repro.net.packet import Packet
from repro.net.topology import Domain, HOP, HOPPath, Topology
from repro.simulation.scenario import PathScenario
from repro.traffic.trace import SyntheticTrace, TraceConfig

__version__ = "1.0.0"

__all__ = [
    "Aggregator",
    "AggregateReceipt",
    "DelaySampler",
    "Domain",
    "DomainAgent",
    "HOP",
    "HOPCollector",
    "HOPPath",
    "HOPProcessor",
    "Packet",
    "PathID",
    "PathScenario",
    "SampleReceipt",
    "SampleRecord",
    "SyntheticTrace",
    "Topology",
    "TraceConfig",
    "VPMSession",
    "Verifier",
    "__version__",
]
