"""Typed per-cell experiment results with stable JSON serialization.

A :class:`CellResult` captures everything one experiment cell produced —
receipt-based estimates, simulation ground truth, verification verdicts and
resource overhead — as plain frozen values.  ``to_json`` is byte-stable
(sorted keys, fixed separators) so results can be diffed across runs, and a
parallel sweep is required to serialize *identically* to a serial one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = [
    "QuantileEstimate",
    "DomainEstimate",
    "TruthSummary",
    "VerificationSummary",
    "OverheadSummary",
    "TargetResult",
    "CellResult",
    "MeshPathResult",
    "MeshResult",
    "TriangulationSummary",
    "SweepCell",
    "SweepResult",
]


def _stable_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class QuantileEstimate:
    """One estimated delay quantile (seconds) with confidence bounds."""

    quantile: float
    estimate: float
    lower: float
    upper: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "quantile": self.quantile,
            "estimate": self.estimate,
            "lower": self.lower,
            "upper": self.upper,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuantileEstimate":
        return cls(**data)


@dataclass(frozen=True)
class DomainEstimate:
    """A domain's receipt-based performance, flattened to plain values."""

    domain: str
    delay_quantiles: tuple[QuantileEstimate, ...] = ()
    delay_sample_count: int = 0
    offered_packets: int = 0
    lost_packets: int = 0
    loss_rate: float = 0.0
    mean_loss_granularity: float = 0.0

    @classmethod
    def from_performance(cls, performance) -> "DomainEstimate":
        """Flatten a :class:`repro.core.verifier.DomainPerformance`."""
        quantiles = tuple(
            QuantileEstimate(
                quantile=float(quantile),
                estimate=float(estimate.estimate),
                lower=float(estimate.lower),
                upper=float(estimate.upper),
            )
            for quantile, estimate in sorted(performance.delay_quantiles.items())
        )
        return cls(
            domain=performance.domain,
            delay_quantiles=quantiles,
            delay_sample_count=performance.delay_sample_count,
            offered_packets=performance.offered_packets,
            lost_packets=performance.lost_packets,
            loss_rate=performance.loss_rate,
            mean_loss_granularity=performance.mean_loss_granularity,
        )

    def delay_quantile(self, quantile: float) -> float:
        """Point estimate for one quantile (seconds); KeyError when absent."""
        for entry in self.delay_quantiles:
            if entry.quantile == quantile:
                return entry.estimate
        raise KeyError(f"quantile {quantile} was not estimated")

    def to_performance(self):
        """Rebuild a :class:`repro.core.verifier.DomainPerformance` view.

        For interoperating with analysis helpers that take the engine-layer
        type (e.g. :func:`repro.analysis.sla.check_sla`).  The per-aggregate
        granularity list and aligned pairs are not stored in a result, so the
        reconstruction carries the estimates, bounds and loss accounting only.
        """
        from repro.core.estimation import DelayQuantileEstimate
        from repro.core.verifier import DomainPerformance

        return DomainPerformance(
            domain=self.domain,
            delay_quantiles={
                entry.quantile: DelayQuantileEstimate(
                    quantile=entry.quantile,
                    estimate=entry.estimate,
                    lower=entry.lower,
                    upper=entry.upper,
                    sample_count=self.delay_sample_count,
                )
                for entry in self.delay_quantiles
            },
            delay_sample_count=self.delay_sample_count,
            offered_packets=self.offered_packets,
            lost_packets=self.lost_packets,
        )

    @property
    def has_delay_estimates(self) -> bool:
        return bool(self.delay_quantiles)

    def to_dict(self) -> dict[str, Any]:
        return {
            "domain": self.domain,
            "delay_quantiles": [entry.to_dict() for entry in self.delay_quantiles],
            "delay_sample_count": self.delay_sample_count,
            "offered_packets": self.offered_packets,
            "lost_packets": self.lost_packets,
            "loss_rate": self.loss_rate,
            "mean_loss_granularity": self.mean_loss_granularity,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DomainEstimate":
        payload = dict(data)
        payload["delay_quantiles"] = tuple(
            QuantileEstimate.from_dict(entry) for entry in payload["delay_quantiles"]
        )
        return cls(**payload)


@dataclass(frozen=True)
class TruthSummary:
    """Simulation ground truth for one domain, at the evaluated quantiles."""

    domain: str
    loss_rate: float
    offered_packets: int
    lost_packets: int
    delay_quantiles: tuple[tuple[float, float], ...] = ()

    @classmethod
    def from_truth(cls, truth, quantiles: Sequence[float]) -> "TruthSummary":
        """Summarize a (batch or object) domain ground truth."""
        wanted = tuple(sorted(float(q) for q in quantiles))
        true_quantiles = truth.delay_quantiles(wanted)
        return cls(
            domain=truth.domain,
            loss_rate=truth.loss_rate,
            offered_packets=truth.offered_packets,
            lost_packets=len(truth.lost),
            delay_quantiles=tuple(
                (quantile, float(true_quantiles[quantile])) for quantile in wanted
            ),
        )

    def delay_quantile(self, quantile: float) -> float:
        """True delay quantile (seconds); KeyError when not evaluated."""
        for entry_quantile, value in self.delay_quantiles:
            if entry_quantile == quantile:
                return value
        raise KeyError(f"quantile {quantile} was not evaluated against truth")

    def to_dict(self) -> dict[str, Any]:
        return {
            "domain": self.domain,
            "loss_rate": self.loss_rate,
            "offered_packets": self.offered_packets,
            "lost_packets": self.lost_packets,
            "delay_quantiles": [list(entry) for entry in self.delay_quantiles],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TruthSummary":
        payload = dict(data)
        payload["delay_quantiles"] = tuple(
            (entry[0], entry[1]) for entry in payload["delay_quantiles"]
        )
        return cls(**payload)


@dataclass(frozen=True)
class VerificationSummary:
    """Whether a domain's receipts survived verification, and why not."""

    accepted: bool
    inconsistency_count: int = 0
    kinds: tuple[str, ...] = ()

    @classmethod
    def from_result(cls, result) -> "VerificationSummary":
        """Summarize a :class:`repro.core.verifier.VerificationResult`."""
        return cls(
            accepted=result.accepted,
            inconsistency_count=len(result.inconsistencies),
            kinds=tuple(
                sorted({finding.kind for finding in result.inconsistencies})
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "accepted": self.accepted,
            "inconsistency_count": self.inconsistency_count,
            "kinds": list(self.kinds),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VerificationSummary":
        payload = dict(data)
        payload["kinds"] = tuple(payload["kinds"])
        return cls(**payload)


@dataclass(frozen=True)
class OverheadSummary:
    """Resource accounting of the measurement interval (Section 7.1)."""

    observed_packets: int
    observed_bytes: int
    receipt_bytes: int
    max_temp_buffer_packets: int

    @property
    def receipt_bytes_per_packet(self) -> float:
        return self.receipt_bytes / self.observed_packets if self.observed_packets else 0.0

    @property
    def bandwidth_overhead(self) -> float:
        return self.receipt_bytes / self.observed_bytes if self.observed_bytes else 0.0

    @classmethod
    def from_overhead(cls, overhead) -> "OverheadSummary":
        """Summarize a :class:`repro.core.protocol.SessionOverhead`."""
        return cls(
            observed_packets=overhead.observed_packets,
            observed_bytes=overhead.observed_bytes,
            receipt_bytes=overhead.receipt_bytes,
            max_temp_buffer_packets=overhead.max_temp_buffer_packets,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "observed_packets": self.observed_packets,
            "observed_bytes": self.observed_bytes,
            "receipt_bytes": self.receipt_bytes,
            "max_temp_buffer_packets": self.max_temp_buffer_packets,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OverheadSummary":
        return cls(**data)


@dataclass(frozen=True)
class TargetResult:
    """Everything one cell computed about one target domain."""

    estimate: DomainEstimate
    truth: TruthSummary | None = None
    verification: VerificationSummary | None = None
    independent: DomainEstimate | None = None

    @property
    def domain(self) -> str:
        return self.estimate.domain

    def delay_accuracy(self, quantiles: Sequence[float] | None = None) -> float:
        """Worst-case quantile error vs truth in seconds (Figure 2's metric).

        Raises :class:`ValueError` when truth or estimates are unavailable.
        """
        if self.truth is None:
            raise ValueError(f"no ground truth recorded for {self.domain!r}")
        if not self.estimate.delay_quantiles:
            raise ValueError(f"no delay estimates available for {self.domain!r}")
        wanted = (
            tuple(quantiles)
            if quantiles is not None
            else tuple(entry.quantile for entry in self.estimate.delay_quantiles)
        )
        errors = [
            abs(self.estimate.delay_quantile(q) - self.truth.delay_quantile(q))
            for q in wanted
        ]
        return max(errors)

    def to_dict(self) -> dict[str, Any]:
        return {
            "estimate": self.estimate.to_dict(),
            "truth": self.truth.to_dict() if self.truth is not None else None,
            "verification": (
                self.verification.to_dict() if self.verification is not None else None
            ),
            "independent": (
                self.independent.to_dict() if self.independent is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TargetResult":
        return cls(
            estimate=DomainEstimate.from_dict(data["estimate"]),
            truth=(
                TruthSummary.from_dict(data["truth"])
                if data.get("truth") is not None
                else None
            ),
            verification=(
                VerificationSummary.from_dict(data["verification"])
                if data.get("verification") is not None
                else None
            ),
            independent=(
                DomainEstimate.from_dict(data["independent"])
                if data.get("independent") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class CellResult:
    """The complete outcome of one experiment cell.

    ``spec`` is the cell's :meth:`ExperimentSpec.to_dict` for provenance —
    a stored result always carries enough information to re-run itself.
    """

    spec: dict[str, Any]
    targets: tuple[TargetResult, ...] = ()
    consistency_findings: int = 0
    overhead: OverheadSummary | None = None

    def target(self, domain: str) -> TargetResult:
        """The result for one target domain; KeyError when not evaluated."""
        for entry in self.targets:
            if entry.domain == domain:
                return entry
        raise KeyError(f"domain {domain!r} was not an estimation target")

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec,
            "targets": [entry.to_dict() for entry in self.targets],
            "consistency_findings": self.consistency_findings,
            "overhead": self.overhead.to_dict() if self.overhead is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellResult":
        return cls(
            spec=dict(data["spec"]),
            targets=tuple(
                TargetResult.from_dict(entry) for entry in data["targets"]
            ),
            consistency_findings=data["consistency_findings"],
            overhead=(
                OverheadSummary.from_dict(data["overhead"])
                if data.get("overhead") is not None
                else None
            ),
        )

    def to_json(self) -> str:
        """Byte-stable JSON (sorted keys, fixed separators)."""
        return _stable_json(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "CellResult":
        return cls.from_dict(json.loads(payload))


@dataclass(frozen=True)
class MeshPathResult:
    """Everything one mesh cell computed about one of its paths."""

    pair: str
    observer: str
    targets: tuple[TargetResult, ...] = ()
    consistency_findings: int = 0
    suspect_links: tuple[tuple[str, str], ...] = ()

    def target(self, domain: str) -> TargetResult:
        """The result for one transit domain; KeyError when not evaluated."""
        for entry in self.targets:
            if entry.domain == domain:
                return entry
        raise KeyError(f"domain {domain!r} is not a transit domain of path {self.pair}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "pair": self.pair,
            "observer": self.observer,
            "targets": [entry.to_dict() for entry in self.targets],
            "consistency_findings": self.consistency_findings,
            "suspect_links": [list(link) for link in self.suspect_links],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MeshPathResult":
        return cls(
            pair=data["pair"],
            observer=data["observer"],
            targets=tuple(TargetResult.from_dict(entry) for entry in data["targets"]),
            consistency_findings=data["consistency_findings"],
            suspect_links=tuple(
                (link[0], link[1]) for link in data["suspect_links"]
            ),
        )


@dataclass(frozen=True)
class TriangulationSummary:
    """The cross-path suspect triangulation of one mesh cell.

    ``implications`` record, per implicated domain, the distinct flagged
    links, the distinct partner domains and the paths involved; a domain
    satisfying :func:`repro.analysis.localization.exposure_rule` (two or more
    distinct partners across two or more paths) is *exposed* — single-path
    verification could only ever name it as half of a pair.
    ``exposed_domains`` is derived from the implications through that shared
    rule, never stored, so the summary and the analysis layer can not
    disagree.
    """

    implications: tuple[dict[str, Any], ...] = ()

    @property
    def exposed_domains(self) -> tuple[str, ...]:
        """Domains the triangulation rule exposes, in implication order."""
        from repro.analysis.localization import exposure_rule

        return tuple(
            entry["domain"]
            for entry in self.implications
            if exposure_rule(entry["partners"], entry["paths"])
        )

    @classmethod
    def from_triangulation(cls, triangulation) -> "TriangulationSummary":
        """Summarize a :class:`repro.analysis.localization.MeshTriangulation`."""
        return cls(
            implications=tuple(
                {
                    "domain": entry.domain,
                    "links": [list(link) for link in entry.links],
                    "partners": list(entry.partners),
                    "paths": list(entry.paths),
                }
                for entry in triangulation.implications
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "implications": [dict(entry) for entry in self.implications],
            "exposed_domains": list(self.exposed_domains),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TriangulationSummary":
        return cls(
            implications=tuple(dict(entry) for entry in data["implications"]),
        )


@dataclass(frozen=True)
class MeshResult:
    """The complete outcome of one mesh experiment cell.

    ``spec`` is the cell's :meth:`MeshSpec.to_dict` for provenance.  Paths
    appear in topology path order; every transit domain of every path carries
    its estimate, ground truth and verification verdict, and the per-path
    suspect links are triangulated across paths.
    """

    spec: dict[str, Any]
    paths: tuple[MeshPathResult, ...] = ()
    triangulation: TriangulationSummary | None = None
    overhead: OverheadSummary | None = None

    def path(self, pair: str) -> MeshPathResult:
        """The result for one path by its prefix-pair label."""
        for entry in self.paths:
            if entry.pair == pair:
                return entry
        raise KeyError(f"no mesh path with prefix pair {pair!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec,
            "paths": [entry.to_dict() for entry in self.paths],
            "triangulation": (
                self.triangulation.to_dict() if self.triangulation is not None else None
            ),
            "overhead": self.overhead.to_dict() if self.overhead is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MeshResult":
        return cls(
            spec=dict(data["spec"]),
            paths=tuple(MeshPathResult.from_dict(entry) for entry in data["paths"]),
            triangulation=(
                TriangulationSummary.from_dict(data["triangulation"])
                if data.get("triangulation") is not None
                else None
            ),
            overhead=(
                OverheadSummary.from_dict(data["overhead"])
                if data.get("overhead") is not None
                else None
            ),
        )

    def to_json(self) -> str:
        """Byte-stable JSON (sorted keys, fixed separators)."""
        return _stable_json(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "MeshResult":
        return cls.from_dict(json.loads(payload))


@dataclass(frozen=True)
class SweepCell:
    """One grid point of a sweep: the overrides applied and the result."""

    overrides: dict[str, Any] = field(default_factory=dict)
    result: CellResult | MeshResult | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "overrides": dict(self.overrides),
            "result": self.result.to_dict() if self.result is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepCell":
        payload = data.get("result")
        result: CellResult | MeshResult | None = None
        if payload is not None:
            # Mesh cells carry per-path results; single-path cells carry targets.
            if "paths" in payload:
                result = MeshResult.from_dict(payload)
            else:
                result = CellResult.from_dict(payload)
        return cls(overrides=dict(data["overrides"]), result=result)


@dataclass(frozen=True)
class SweepResult:
    """All cells of one sweep, in grid (row-major) order."""

    cells: tuple[SweepCell, ...] = ()

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def results(self) -> tuple[CellResult, ...]:
        """The per-cell results, in grid order."""
        return tuple(cell.result for cell in self.cells)

    def to_dict(self) -> dict[str, Any]:
        return {"cells": [cell.to_dict() for cell in self.cells]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        return cls(cells=tuple(SweepCell.from_dict(cell) for cell in data["cells"]))

    def to_json(self) -> str:
        """Byte-stable JSON (sorted keys, fixed separators)."""
        return _stable_json(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "SweepResult":
        return cls.from_dict(json.loads(payload))
