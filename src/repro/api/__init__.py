"""The declarative experiment API — the official public surface of ``repro``.

Every evaluation in the paper is a sweep over (traffic, path conditions,
protocol configuration, adversary, estimation) cells.  This package exposes
that altitude directly:

* :mod:`repro.api.spec` — frozen, JSON-round-trippable experiment specs
  (:class:`ExperimentSpec` and its parts) with deterministic seed spacing;
* :mod:`repro.api.registry` — string-keyed component registries and the
  ``@register_*`` decorators third parties use to plug in new delay/loss
  models, adversaries and scenarios;
* :mod:`repro.api.runner` — :class:`Experiment`, with ``.run()`` for one cell
  (batch fast path by default) and ``.sweep(grid, workers=N)`` for parallel
  cartesian sweeps that are bit-identical to serial execution;
* :mod:`repro.api.results` — typed per-cell results with byte-stable JSON for
  cross-run comparison.

A complete experiment in a few declarative lines:

>>> from repro.api import (ConditionSpec, Experiment, ExperimentSpec,
...                        PathSpec, TrafficSpec)
>>> spec = ExperimentSpec(
...     seed=1,
...     traffic=TrafficSpec(workload="bench-sequence"),
...     path=PathSpec(conditions={"X": ConditionSpec(
...         delay="congestion", delay_params={"scenario": "udp-burst"},
...         loss="gilbert-elliott-rate", loss_params={"target_rate": 0.10},
...     )}),
... )
>>> cell = Experiment(spec).run()
>>> cell.target("X").estimate.loss_rate          # receipt-based estimate
>>> cell.target("X").truth.loss_rate             # simulation ground truth

The engine underneath (:class:`~repro.simulation.scenario.PathScenario`,
:class:`~repro.core.protocol.VPMSession`) remains importable for code that
needs the lower altitude.
"""

from repro.api.registry import (
    ADVERSARIES,
    DELAY_MODELS,
    LOSS_MODELS,
    REORDERING_MODELS,
    SCENARIOS,
    TOPOLOGIES,
    Registry,
    register_adversary,
    register_delay_model,
    register_loss_model,
    register_reordering_model,
    register_scenario,
    register_topology,
)
from repro.api.results import (
    CellResult,
    DomainEstimate,
    MeshPathResult,
    MeshResult,
    OverheadSummary,
    QuantileEstimate,
    SweepCell,
    SweepResult,
    TargetResult,
    TriangulationSummary,
    TruthSummary,
    VerificationSummary,
)
from repro.api.runner import (
    CellRun,
    Experiment,
    MeshRun,
    clear_trace_cache,
    run_cell,
    run_cell_full,
    run_mesh_cell,
    run_mesh_cell_full,
)
from repro.api.spec import (
    AdversarySpec,
    CampaignSpec,
    ConditionSpec,
    EstimationSpec,
    ExecutionPolicy,
    ExperimentSpec,
    HOPSpec,
    MeshSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TopologySpec,
    TrafficSpec,
    derive_seed,
)

__all__ = [
    "ADVERSARIES",
    "AdversarySpec",
    "CampaignSpec",
    "CellResult",
    "CellRun",
    "ConditionSpec",
    "DELAY_MODELS",
    "DomainEstimate",
    "EstimationSpec",
    "ExecutionPolicy",
    "Experiment",
    "ExperimentSpec",
    "HOPSpec",
    "LOSS_MODELS",
    "MeshPathResult",
    "MeshResult",
    "MeshRun",
    "MeshSpec",
    "OverheadSummary",
    "PathSpec",
    "ProtocolSpec",
    "QuantileEstimate",
    "REORDERING_MODELS",
    "Registry",
    "SCENARIOS",
    "SLATargetSpec",
    "SweepCell",
    "SweepResult",
    "TOPOLOGIES",
    "TargetResult",
    "TopologySpec",
    "TrafficSpec",
    "TriangulationSummary",
    "TruthSummary",
    "VerificationSummary",
    "clear_trace_cache",
    "derive_seed",
    "register_adversary",
    "register_delay_model",
    "register_loss_model",
    "register_reordering_model",
    "register_scenario",
    "register_topology",
    "run_cell",
    "run_cell_full",
    "run_mesh_cell",
    "run_mesh_cell_full",
]
