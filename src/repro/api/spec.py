"""Declarative experiment specifications.

An :class:`ExperimentSpec` describes one evaluation cell — traffic, path
conditions, protocol configuration, adversaries and the estimation question —
as a frozen, JSON-round-trippable value.  Components are named by registry key
(:mod:`repro.api.registry`), so a spec is *data*: it can be stored, diffed,
swept over, and shipped to a worker process, and
``ExperimentSpec.from_dict(spec.to_dict())`` is the identity.

Seed discipline
---------------
Every spec carries one root ``seed``.  Component seeds (traffic synthesis,
scenario randomness, each domain's delay/loss/reordering models) are derived
from the root seed and a structural label via :func:`derive_seed`, so

* two runs of the same spec are bit-identical (including across processes);
* changing the root seed re-seeds every component at once;
* any component can still pin an explicit ``seed`` in its params, which takes
  precedence (this is how the benchmark cells reproduce the historical seed
  layout exactly).
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.api.registry import (
    ADVERSARIES,
    DELAY_MODELS,
    LOSS_MODELS,
    REORDERING_MODELS,
    SCENARIOS,
    TOPOLOGIES,
    Registry,
)
from repro.analysis.sketch import DEFAULT_SKETCH_SIZE, MIN_SKETCH_SIZE
from repro.core.aggregation import AggregatorConfig
from repro.core.estimation import DEFAULT_QUANTILES
from repro.core.hop import HOPConfig
from repro.core.sampling import DEFAULT_MARKER_RATE, SamplerConfig
from repro.net.topology import HOPPath, Topology
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.flows import FlowGeneratorConfig
from repro.traffic.trace import SyntheticTrace, TraceConfig, default_prefix_pair
from repro.traffic.workload import WORKLOADS
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "derive_seed",
    "TrafficSpec",
    "ConditionSpec",
    "PathSpec",
    "TopologySpec",
    "HOPSpec",
    "ProtocolSpec",
    "AdversarySpec",
    "EstimationSpec",
    "ExperimentSpec",
    "MeshSpec",
    "SLATargetSpec",
    "CampaignSpec",
    "ExecutionPolicy",
]

_SEED_SPACE = 2**63


def derive_seed(root: int, label: str) -> int:
    """A deterministic, well-spaced child seed for ``label`` under ``root``.

    Hashes ``root`` and the structural label together (BLAKE2b), so distinct
    components of one experiment get statistically independent seeds while the
    whole experiment remains a pure function of the root seed.
    """
    digest = hashlib.blake2b(
        f"{int(root)}:{label}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % _SEED_SPACE


# -- dict plumbing -------------------------------------------------------------------


def _normalize_value(value: Any, where: str) -> Any:
    """Normalize a params value to plain JSON-compatible Python data."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _normalize_value(item, where) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize_value(item, where) for item in value]
    raise ValueError(
        f"{where} must contain only JSON-serializable scalars, lists and dicts; "
        f"got {type(value).__name__}"
    )


def _normalize_params(spec: object, field_name: str) -> None:
    """Normalize a frozen spec's params dict in place (post-init helper)."""
    raw = getattr(spec, field_name)
    where = f"{type(spec).__name__}.{field_name}"
    if not isinstance(raw, Mapping):
        raise ValueError(f"{where} must be a mapping, got {type(raw).__name__}")
    object.__setattr__(spec, field_name, _normalize_value(raw, where))


def _check_keys(cls: type, data: Mapping[str, Any]) -> None:
    allowed = {spec_field.name for spec_field in dataclasses.fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} keys {unknown}; allowed: {sorted(allowed)}"
        )


def _accepts_seed(factory: Callable) -> bool:
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins / C callables
        return False
    return "seed" in signature.parameters


def _check_factory_signature(
    registry: Registry, name: str, params: Mapping[str, Any]
) -> None:
    """Eagerly check that ``params`` bind to the factory's signature.

    Catches unknown/missing parameters at spec-construction time without
    invoking the factory (which may be arbitrarily expensive for third-party
    components).
    """
    factory = registry.get(name)
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins / C callables
        return
    kwargs = dict(params)
    if "seed" not in kwargs and "seed" in signature.parameters:
        kwargs["seed"] = 0
    try:
        signature.bind(**kwargs)
    except TypeError as exc:
        raise ValueError(
            f"invalid parameters for {registry.kind} {name!r}: {exc}"
        ) from exc


def _build_component(
    registry: Registry, name: str, params: Mapping[str, Any], derived_seed: int
):
    """Instantiate a registered component, injecting a derived seed if needed."""
    factory = registry.get(name)
    kwargs = dict(params)
    if "seed" not in kwargs and _accepts_seed(factory):
        kwargs["seed"] = derived_seed
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise ValueError(
            f"invalid parameters for {registry.kind} {name!r}: {exc}"
        ) from exc


# -- traffic -------------------------------------------------------------------------


@dataclass(frozen=True)
class TrafficSpec:
    """What traffic to synthesize.

    Either name a registered workload (:data:`repro.traffic.workload.WORKLOADS`)
    or give explicit sequence parameters.  With a ``workload``, an explicit
    ``packet_count`` overrides the workload's count (the standard scaling knob)
    and the remaining fields are ignored in favour of the workload definition.
    """

    workload: str | None = "smoke-sequence"
    packet_count: int | None = None
    packets_per_second: float = 100_000.0
    arrival_process: str = "poisson"
    payload_bytes: int = 16
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.workload is None and self.packet_count is None:
            raise ValueError(
                "TrafficSpec needs a workload name or an explicit packet_count"
            )
        if self.workload is not None:
            if self.workload not in WORKLOADS:
                known = ", ".join(sorted(WORKLOADS))
                raise ValueError(
                    f"unknown workload {self.workload!r}; known workloads: {known}"
                )
            # With a named workload only packet_count may be overridden; a
            # conflicting explicit field would otherwise be silently dropped.
            defaults = {
                spec_field.name: spec_field.default
                for spec_field in dataclasses.fields(self)
            }
            for conflicting in ("packets_per_second", "arrival_process", "payload_bytes"):
                if getattr(self, conflicting) != defaults[conflicting]:
                    raise ValueError(
                        f"TrafficSpec.{conflicting} has no effect when a workload "
                        f"is named; set workload=None for explicit parameters"
                    )
        self.trace_config()  # eagerly validate counts/rates/process

    def trace_config(self) -> TraceConfig:
        """Materialize the :class:`TraceConfig` this spec describes."""
        if self.workload is not None:
            config = WORKLOADS[self.workload].trace_config()
            if self.packet_count is not None:
                config = dataclasses.replace(config, packet_count=self.packet_count)
            return config
        return TraceConfig(
            packet_count=self.packet_count,
            packets_per_second=self.packets_per_second,
            arrival_process=self.arrival_process,
            payload_bytes=self.payload_bytes,
            flow_config=FlowGeneratorConfig(),
        )

    def effective_seed(self, root_seed: int) -> int:
        """The trace seed: explicit if pinned, derived from the root otherwise."""
        return self.seed if self.seed is not None else derive_seed(root_seed, "traffic")

    def build(self, root_seed: int = 0) -> SyntheticTrace:
        """A fresh (deterministic) trace generator for this spec."""
        return SyntheticTrace(
            config=self.trace_config(),
            prefix_pair=default_prefix_pair(),
            seed=self.effective_seed(root_seed),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "packet_count": self.packet_count,
            "packets_per_second": self.packets_per_second,
            "arrival_process": self.arrival_process,
            "payload_bytes": self.payload_bytes,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficSpec":
        _check_keys(cls, data)
        return cls(**data)


# -- path conditions -----------------------------------------------------------------


@dataclass(frozen=True)
class ConditionSpec:
    """One domain's internal forwarding behaviour, by registry key."""

    delay: str = "constant"
    delay_params: dict[str, Any] = field(default_factory=dict)
    loss: str = "none"
    loss_params: dict[str, Any] = field(default_factory=dict)
    reordering: str = "none"
    reordering_params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for params_field in ("delay_params", "loss_params", "reordering_params"):
            _normalize_params(self, params_field)
        # Dry-build with a probe seed: unknown registry keys and invalid model
        # parameters (negative delays, out-of-range rates, ...) fail at spec
        # construction time, not deep inside a sweep.
        self.build(root_seed=0, domain="__validate__")

    def build(self, root_seed: int = 0, domain: str = "") -> SegmentCondition:
        """Instantiate the models and compose the :class:`SegmentCondition`."""
        label = f"condition.{domain}"
        return SegmentCondition(
            delay_model=_build_component(
                DELAY_MODELS, self.delay, self.delay_params,
                derive_seed(root_seed, f"{label}.delay"),
            ),
            loss_model=_build_component(
                LOSS_MODELS, self.loss, self.loss_params,
                derive_seed(root_seed, f"{label}.loss"),
            ),
            reordering=_build_component(
                REORDERING_MODELS, self.reordering, self.reordering_params,
                derive_seed(root_seed, f"{label}.reordering"),
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "delay": self.delay,
            "delay_params": _normalize_value(self.delay_params, "delay_params"),
            "loss": self.loss,
            "loss_params": _normalize_value(self.loss_params, "loss_params"),
            "reordering": self.reordering,
            "reordering_params": _normalize_value(
                self.reordering_params, "reordering_params"
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConditionSpec":
        _check_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class PathSpec:
    """Which scenario to drive and the per-domain conditions to install."""

    scenario: str = "figure1"
    scenario_params: dict[str, Any] = field(default_factory=dict)
    conditions: dict[str, ConditionSpec] = field(default_factory=dict)
    seed: int | None = None

    def __post_init__(self) -> None:
        _normalize_params(self, "scenario_params")
        _check_factory_signature(SCENARIOS, self.scenario, self.scenario_params)
        for domain, condition in self.conditions.items():
            if not isinstance(condition, ConditionSpec):
                raise ValueError(
                    f"PathSpec.conditions[{domain!r}] must be a ConditionSpec, "
                    f"got {type(condition).__name__}"
                )

    def effective_seed(self, root_seed: int) -> int:
        return self.seed if self.seed is not None else derive_seed(root_seed, "path")

    def build(self, root_seed: int = 0) -> PathScenario:
        """Build the scenario and configure every listed domain."""
        factory = SCENARIOS.get(self.scenario)
        try:
            scenario = factory(
                seed=self.effective_seed(root_seed), **self.scenario_params
            )
        except TypeError as exc:
            raise ValueError(
                f"invalid parameters for scenario {self.scenario!r}: {exc}"
            ) from exc
        for domain in sorted(self.conditions):
            scenario.configure_domain(
                domain, self.conditions[domain].build(root_seed, domain)
            )
        return scenario

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "scenario_params": _normalize_value(self.scenario_params, "scenario_params"),
            "conditions": {
                domain: condition.to_dict()
                for domain, condition in sorted(self.conditions.items())
            },
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PathSpec":
        _check_keys(cls, data)
        payload = dict(data)
        payload["conditions"] = {
            domain: ConditionSpec.from_dict(condition)
            for domain, condition in dict(payload.get("conditions") or {}).items()
        }
        return cls(**payload)


@dataclass(frozen=True)
class TopologySpec:
    """Which topology to build, by registry key (:data:`~repro.api.registry.TOPOLOGIES`).

    A topology factory returns ``(Topology, tuple[HOPPath, ...])`` — the
    shared domain/HOP graph and the paths a mesh workload drives over it.
    ``"figure1"`` is the paper's running example as a one-path mesh;
    ``"star"`` and ``"mesh-random"`` generate multi-path meshes with shared
    HOPs.
    """

    kind: str = "mesh-random"
    params: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None

    def __post_init__(self) -> None:
        _normalize_params(self, "params")
        _check_factory_signature(TOPOLOGIES, self.kind, self.params)

    def effective_seed(self, root_seed: int) -> int:
        return self.seed if self.seed is not None else derive_seed(root_seed, "topology")

    def build(self, root_seed: int = 0) -> tuple[Topology, tuple[HOPPath, ...]]:
        """Build the topology and its paths (deterministic per root seed)."""
        factory = TOPOLOGIES.get(self.kind)
        try:
            topology, paths = factory(
                seed=self.effective_seed(root_seed), **self.params
            )
        except TypeError as exc:
            raise ValueError(
                f"invalid parameters for topology {self.kind!r}: {exc}"
            ) from exc
        paths = tuple(paths)
        if not paths:
            raise ValueError(f"topology {self.kind!r} produced no paths")
        return topology, paths

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "params": _normalize_value(self.params, "params"),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        _check_keys(cls, data)
        return cls(**data)


# -- protocol configuration ----------------------------------------------------------


@dataclass(frozen=True)
class HOPSpec:
    """One domain's locally tunable VPM knobs (a declarative ``HOPConfig``)."""

    sampling_rate: float = 0.01
    aggregate_size: int = 5000
    marker_rate: float = DEFAULT_MARKER_RATE
    reorder_window: float = 0.01

    def __post_init__(self) -> None:
        check_fraction("sampling_rate", self.sampling_rate)
        check_fraction("marker_rate", self.marker_rate)
        check_positive("aggregate_size", self.aggregate_size)
        check_non_negative("reorder_window", self.reorder_window)

    def build(self) -> HOPConfig:
        return HOPConfig(
            sampler=SamplerConfig(
                sampling_rate=self.sampling_rate, marker_rate=self.marker_rate
            ),
            aggregator=AggregatorConfig(
                expected_aggregate_size=self.aggregate_size,
                reorder_window=self.reorder_window,
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "sampling_rate": self.sampling_rate,
            "aggregate_size": self.aggregate_size,
            "marker_rate": self.marker_rate,
            "reorder_window": self.reorder_window,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HOPSpec":
        _check_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class ProtocolSpec:
    """Who deploys VPM, and with which knobs.

    ``default`` applies to every domain not listed in ``domains``; a domain
    mapped to ``None`` (or a ``None`` default) has *not deployed VPM* and
    produces no receipts — the partial-deployment scenario of Section 8.
    """

    default: HOPSpec | None = field(default_factory=HOPSpec)
    domains: dict[str, HOPSpec | None] = field(default_factory=dict)
    max_diff: float = 1e-3

    def __post_init__(self) -> None:
        check_positive("max_diff", self.max_diff)
        if self.default is not None and not isinstance(self.default, HOPSpec):
            raise ValueError(
                f"ProtocolSpec.default must be a HOPSpec or None, "
                f"got {type(self.default).__name__}"
            )
        for domain, hop_spec in self.domains.items():
            if hop_spec is not None and not isinstance(hop_spec, HOPSpec):
                raise ValueError(
                    f"ProtocolSpec.domains[{domain!r}] must be a HOPSpec or None, "
                    f"got {type(hop_spec).__name__}"
                )

    def build_configs(self, path: HOPPath) -> dict[str, HOPConfig | None]:
        """The per-domain config mapping :class:`VPMSession` consumes.

        Raises a :class:`ValueError` when ``domains`` names a domain that is
        not on the path — a typo'd override would otherwise silently leave the
        intended domain on the default config.
        """
        return self.build_configs_for(
            [domain.name for domain in path.domains], where="the path"
        )

    def build_configs_for(
        self, domain_names: Sequence[str], where: str = "the mesh"
    ) -> dict[str, HOPConfig | None]:
        """The per-domain config mapping for an explicit domain list (mesh form)."""
        known = set(domain_names)
        unknown = sorted(set(self.domains) - known)
        if unknown:
            raise ValueError(
                f"ProtocolSpec.domains names {unknown}, which are not on "
                f"{where} (domains: {sorted(known)})"
            )
        configs: dict[str, HOPConfig | None] = {}
        for name in domain_names:
            hop_spec = self.domains.get(name, self.default)
            configs[name] = hop_spec.build() if hop_spec is not None else None
        return configs

    def to_dict(self) -> dict[str, Any]:
        return {
            "default": self.default.to_dict() if self.default is not None else None,
            "domains": {
                domain: hop_spec.to_dict() if hop_spec is not None else None
                for domain, hop_spec in sorted(self.domains.items())
            },
            "max_diff": self.max_diff,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProtocolSpec":
        _check_keys(cls, data)
        payload = dict(data)
        if payload.get("default") is not None:
            payload["default"] = HOPSpec.from_dict(payload["default"])
        payload["domains"] = {
            domain: HOPSpec.from_dict(hop_spec) if hop_spec is not None else None
            for domain, hop_spec in dict(payload.get("domains") or {}).items()
        }
        return cls(**payload)


# -- adversaries ---------------------------------------------------------------------


@dataclass(frozen=True)
class AdversarySpec:
    """One adversarial behaviour, by registry key, installed at one domain."""

    kind: str
    domain: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ADVERSARIES.get(self.kind)  # raises a clear ValueError when unknown
        if not self.domain:
            raise ValueError("AdversarySpec.domain must name a domain")
        _normalize_params(self, "params")

    @property
    def role(self) -> str:
        """``"agent"`` (receipt fabrication) or ``"condition"`` (forwarding)."""
        return getattr(ADVERSARIES.get(self.kind), "adversary_role", "agent")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "domain": self.domain,
            "params": _normalize_value(self.params, "params"),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdversarySpec":
        _check_keys(cls, data)
        return cls(**data)


# -- estimation ----------------------------------------------------------------------


def _check_estimation_mode(mode: str, sketch_size: int, where: str) -> None:
    """Shared validation for the estimation-tier knobs (cell + mesh specs)."""
    if mode not in ("exact", "sketch"):
        raise ValueError(
            f"{where} estimation mode must be 'exact' or 'sketch', got {mode!r}"
        )
    if not isinstance(sketch_size, int) or isinstance(sketch_size, bool):
        raise ValueError(
            f"{where} sketch_size must be an int, got {type(sketch_size).__name__}"
        )
    if sketch_size < MIN_SKETCH_SIZE:
        raise ValueError(
            f"{where} sketch_size must be >= {MIN_SKETCH_SIZE}, got {sketch_size}"
        )


@dataclass(frozen=True)
class EstimationSpec:
    """Who estimates whom, and what to compute per target.

    ``mode`` selects the campaign estimation tier: ``"exact"`` (the default)
    pools every matched delay sample through
    :class:`~repro.analysis.quantiles.MergedDelayPool`; ``"sketch"`` folds
    them through a :class:`~repro.analysis.sketch.DelayQuantileSketch` of
    budget ``sketch_size`` instead, bounding per-interval record size and
    campaign memory at a guaranteed ``1/(sketch_size+1)`` relative quantile
    error.  Both knobs serialize only in sketch mode, so every exact-mode
    artifact (goldens, spec hashes, stores) is byte-identical to before the
    tier existed.
    """

    observer: str = "L"
    targets: tuple[str, ...] = ("X",)
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES
    verify: bool = True
    independent: bool = True
    mode: str = "exact"
    sketch_size: int = DEFAULT_SKETCH_SIZE

    def __post_init__(self) -> None:
        object.__setattr__(self, "targets", tuple(self.targets))
        object.__setattr__(self, "quantiles", tuple(float(q) for q in self.quantiles))
        if not self.observer:
            raise ValueError("EstimationSpec.observer must name a domain")
        if not self.targets:
            raise ValueError("EstimationSpec.targets must name at least one domain")
        for quantile in self.quantiles:
            check_probability("quantile", quantile)
        _check_estimation_mode(self.mode, self.sketch_size, "EstimationSpec")

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "observer": self.observer,
            "targets": list(self.targets),
            "quantiles": list(self.quantiles),
            "verify": self.verify,
            "independent": self.independent,
        }
        if self.mode != "exact":
            payload["mode"] = self.mode
            payload["sketch_size"] = self.sketch_size
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EstimationSpec":
        _check_keys(cls, data)
        payload = dict(data)
        if "targets" in payload:
            payload["targets"] = tuple(payload["targets"])
        if "quantiles" in payload:
            payload["quantiles"] = tuple(payload["quantiles"])
        return cls(**payload)


# -- the composed experiment ---------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """One evaluation cell: traffic × path × protocol × adversaries × question.

    ``engine`` selects the execution path: ``"batch"`` (the default) drives the
    vectorized collector fast path; ``"scalar"`` drives the per-packet object
    path; ``"streaming"`` drives the chunked engine
    (:mod:`repro.engine`), which runs in bounded memory and accepts
    ``shards=N`` at run time for process-parallel execution.  All engines
    produce identical results for every streamable registered component (they
    consume the same RNG streams in the same order), so the choice is a
    performance/memory knob, not a semantic one.
    """

    name: str = "experiment"
    seed: int = 0
    engine: str = "batch"
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    path: PathSpec = field(default_factory=PathSpec)
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    adversaries: tuple[AdversarySpec, ...] = ()
    estimation: EstimationSpec = field(default_factory=EstimationSpec)

    def __post_init__(self) -> None:
        if self.engine not in ("batch", "scalar", "streaming"):
            raise ValueError(
                f"engine must be 'batch', 'scalar' or 'streaming', got {self.engine!r}"
            )
        object.__setattr__(self, "adversaries", tuple(self.adversaries))
        for adversary in self.adversaries:
            if not isinstance(adversary, AdversarySpec):
                raise ValueError(
                    f"adversaries must be AdversarySpec instances, "
                    f"got {type(adversary).__name__}"
                )

    # -- convenience -----------------------------------------------------------------

    def run(self):
        """Run this spec as a one-cell experiment (see :class:`repro.api.Experiment`)."""
        from repro.api.runner import Experiment

        return Experiment(self).run()

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ExperimentSpec":
        """A copy of this spec with dotted-path overrides applied.

        Keys are dotted paths through nested specs and dicts, e.g.
        ``"protocol.default.sampling_rate"`` or
        ``"path.conditions.X.loss_params.target_rate"``.  Replacement re-runs
        every touched spec's validation.
        """
        return _apply_overrides(self, overrides)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "engine": self.engine,
            "traffic": self.traffic.to_dict(),
            "path": self.path.to_dict(),
            "protocol": self.protocol.to_dict(),
            "adversaries": [adversary.to_dict() for adversary in self.adversaries],
            "estimation": self.estimation.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        _check_keys(cls, data)
        payload = dict(data)
        if "traffic" in payload:
            payload["traffic"] = TrafficSpec.from_dict(payload["traffic"])
        if "path" in payload:
            payload["path"] = PathSpec.from_dict(payload["path"])
        if "protocol" in payload:
            payload["protocol"] = ProtocolSpec.from_dict(payload["protocol"])
        if "adversaries" in payload:
            payload["adversaries"] = tuple(
                AdversarySpec.from_dict(adversary)
                for adversary in payload["adversaries"]
            )
        if "estimation" in payload:
            payload["estimation"] = EstimationSpec.from_dict(payload["estimation"])
        return cls(**payload)


def _apply_overrides(spec, overrides: Mapping[str, Any]):
    """Apply dotted-path overrides to any frozen spec (shared by the specs)."""
    for dotted, value in overrides.items():
        parts = dotted.split(".")
        if not all(parts):
            raise ValueError(f"invalid override path {dotted!r}")
        spec = _replace_path(spec, parts, value, dotted)
    return spec


def _replace_path(obj: Any, parts: list[str], value: Any, dotted: str) -> Any:
    head, rest = parts[0], parts[1:]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        field_names = {spec_field.name for spec_field in dataclasses.fields(obj)}
        if head not in field_names:
            raise ValueError(
                f"override {dotted!r}: {type(obj).__name__} has no field {head!r} "
                f"(fields: {sorted(field_names)})"
            )
        child = value if not rest else _replace_path(getattr(obj, head), rest, value, dotted)
        return dataclasses.replace(obj, **{head: child})
    if isinstance(obj, Mapping):
        if rest and head not in obj:
            raise ValueError(
                f"override {dotted!r}: key {head!r} not present "
                f"(keys: {sorted(obj)})"
            )
        replaced = dict(obj)
        replaced[head] = value if not rest else _replace_path(obj[head], rest, value, dotted)
        return replaced
    raise ValueError(
        f"override {dotted!r}: cannot descend into {type(obj).__name__} at {head!r}"
    )


# -- mesh experiments ----------------------------------------------------------------


@dataclass(frozen=True)
class MeshSpec:
    """One mesh evaluation cell: N paths over one topology, run together.

    The mesh sibling of :class:`ExperimentSpec`.  ``traffic`` is the
    *per-path* traffic template — every path synthesizes its own trace with
    its prefix pair and a seed derived per path index, so the workload scales
    with the path count.  ``conditions`` configure each transit domain once;
    at build time each crossing path gets its own freshly seeded model
    instances (per-(path, domain) seed labels), which is what keeps every
    path's outcome bit-identical to running it in isolation.

    ``engine`` is ``"batch"`` (materialize every path's trace) or
    ``"streaming"`` (chunked lockstep execution, ``shards=N`` at run time);
    both produce byte-identical results.  Estimation is fixed-form: every
    transit domain of every path is estimated and verified (observed by that
    path's source domain), and the per-path suspect links are triangulated
    across paths (:func:`repro.analysis.localization.triangulate_suspects`).
    """

    name: str = "mesh"
    seed: int = 0
    engine: str = "batch"
    topology: TopologySpec = field(default_factory=TopologySpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    conditions: dict[str, ConditionSpec] = field(default_factory=dict)
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    adversaries: tuple[AdversarySpec, ...] = ()
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES
    estimation_mode: str = "exact"
    sketch_size: int = DEFAULT_SKETCH_SIZE

    def __post_init__(self) -> None:
        if self.engine not in ("batch", "streaming"):
            raise ValueError(
                f"mesh engine must be 'batch' or 'streaming', got {self.engine!r}"
            )
        if not isinstance(self.topology, TopologySpec):
            raise ValueError(
                f"MeshSpec.topology must be a TopologySpec, "
                f"got {type(self.topology).__name__}"
            )
        for domain, condition in self.conditions.items():
            if not isinstance(condition, ConditionSpec):
                raise ValueError(
                    f"MeshSpec.conditions[{domain!r}] must be a ConditionSpec, "
                    f"got {type(condition).__name__}"
                )
        object.__setattr__(self, "adversaries", tuple(self.adversaries))
        for adversary in self.adversaries:
            if not isinstance(adversary, AdversarySpec):
                raise ValueError(
                    f"adversaries must be AdversarySpec instances, "
                    f"got {type(adversary).__name__}"
                )
        object.__setattr__(self, "quantiles", tuple(float(q) for q in self.quantiles))
        if not self.quantiles:
            raise ValueError("MeshSpec.quantiles must name at least one quantile")
        for quantile in self.quantiles:
            check_probability("quantile", quantile)
        _check_estimation_mode(self.estimation_mode, self.sketch_size, "MeshSpec")

    # -- convenience -------------------------------------------------------------------

    def run(self):
        """Run this spec as a one-cell mesh experiment."""
        from repro.api.runner import Experiment

        return Experiment(self).run()

    def with_overrides(self, overrides: Mapping[str, Any]) -> "MeshSpec":
        """A copy of this spec with dotted-path overrides applied.

        Same path language as :meth:`ExperimentSpec.with_overrides`, e.g.
        ``"topology.params.path_count"`` or
        ``"conditions.T1.loss_params.loss_rate"``.
        """
        return _apply_overrides(self, overrides)

    def traffic_seed(self, path_index: int) -> int:
        """The trace seed of one path (derived per index, pinnable as a base)."""
        base = self.traffic.seed if self.traffic.seed is not None else self.seed
        return derive_seed(base, f"mesh.traffic.{path_index}")

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "seed": self.seed,
            "engine": self.engine,
            "topology": self.topology.to_dict(),
            "traffic": self.traffic.to_dict(),
            "conditions": {
                domain: condition.to_dict()
                for domain, condition in sorted(self.conditions.items())
            },
            "protocol": self.protocol.to_dict(),
            "adversaries": [adversary.to_dict() for adversary in self.adversaries],
            "quantiles": list(self.quantiles),
        }
        # The estimation-tier knobs serialize only in sketch mode, keeping
        # every exact-mode artifact (goldens, spec hashes) byte-identical.
        if self.estimation_mode != "exact":
            payload["estimation_mode"] = self.estimation_mode
            payload["sketch_size"] = self.sketch_size
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MeshSpec":
        _check_keys(cls, data)
        payload = dict(data)
        if "topology" in payload:
            payload["topology"] = TopologySpec.from_dict(payload["topology"])
        if "traffic" in payload:
            payload["traffic"] = TrafficSpec.from_dict(payload["traffic"])
        if "conditions" in payload:
            payload["conditions"] = {
                domain: ConditionSpec.from_dict(condition)
                for domain, condition in dict(payload.get("conditions") or {}).items()
            }
        if "protocol" in payload:
            payload["protocol"] = ProtocolSpec.from_dict(payload["protocol"])
        if "adversaries" in payload:
            payload["adversaries"] = tuple(
                AdversarySpec.from_dict(adversary)
                for adversary in payload["adversaries"]
            )
        if "quantiles" in payload:
            payload["quantiles"] = tuple(payload["quantiles"])
        return cls(**payload)


# -- long-horizon campaigns ----------------------------------------------------------


@dataclass(frozen=True)
class SLATargetSpec:
    """A declarative SLA contract a campaign is held to (see :mod:`repro.analysis.sla`).

    ``delay_bound`` (seconds) applies at ``delay_quantile`` of the pooled
    campaign delay samples; ``loss_bound`` applies to the campaign-wide loss
    rate — the "certain level of packet loss per month" framing the paper
    opens with.
    """

    delay_bound: float = 50e-3
    delay_quantile: float = 0.9
    loss_bound: float = 0.001
    name: str = "default-sla"

    def __post_init__(self) -> None:
        self.build()  # eagerly validate bounds via SLASpec's own checks

    def build(self):
        """Materialize the :class:`repro.analysis.sla.SLASpec` this describes."""
        from repro.analysis.sla import SLASpec

        return SLASpec(
            delay_bound=self.delay_bound,
            delay_quantile=self.delay_quantile,
            loss_bound=self.loss_bound,
            name=self.name,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "delay_bound": self.delay_bound,
            "delay_quantile": self.delay_quantile,
            "loss_bound": self.loss_bound,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SLATargetSpec":
        _check_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class CampaignSpec:
    """A long-horizon measurement campaign: N intervals of one cell spec.

    SLAs are contracted over long horizons while receipts arrive per
    reporting interval; a campaign runs ``cell`` (an :class:`ExperimentSpec`
    or a :class:`MeshSpec` — any engine, including streaming and mesh) once
    per interval and folds the interval outcomes into campaign-level
    statistics held against ``sla``.

    Interval ``i`` runs the cell re-rooted at
    ``derive_seed(cell.seed, f"interval.{i}")`` — the existing BLAKE2b
    seed-spacing — so every interval draws fresh, statistically independent
    traffic *and* path randomness while the whole campaign stays a pure
    function of the one root seed.  That purity is what makes campaigns
    checkpointable: interval ``i`` is a function of ``(spec, i)`` alone, so a
    resumed campaign reproduces the remaining intervals byte-identically
    (see :class:`repro.engine.campaign.CampaignRunner` and
    :class:`repro.store.RunStore`).

    Execution knobs (engine override, shards, chunk size) are deliberately
    *not* part of the spec: the engines are byte-identical, so they may vary
    freely between a run and its resume without perturbing the stored record.
    They live in :class:`ExecutionPolicy` instead.
    """

    name: str = "campaign"
    intervals: int = 6
    cell: "ExperimentSpec | MeshSpec" = field(default_factory=lambda: ExperimentSpec())
    sla: SLATargetSpec | None = None

    def __post_init__(self) -> None:
        check_positive("intervals", self.intervals)
        if not isinstance(self.cell, (ExperimentSpec, MeshSpec)):
            raise ValueError(
                f"CampaignSpec.cell must be an ExperimentSpec or MeshSpec, "
                f"got {type(self.cell).__name__}"
            )
        if self.sla is not None and not isinstance(self.sla, SLATargetSpec):
            raise ValueError(
                f"CampaignSpec.sla must be an SLATargetSpec or None, "
                f"got {type(self.sla).__name__}"
            )
        if not self.name:
            raise ValueError("CampaignSpec.name must be non-empty")
        if self.sla is not None:
            # The delay check silently passes (verdict "unknown" counts as
            # compliant) when the SLA's quantile is never estimated — refuse
            # the mismatch up front instead of certifying compliance on a
            # quantile nobody measured.
            estimated = (
                self.cell.quantiles
                if isinstance(self.cell, MeshSpec)
                else self.cell.estimation.quantiles
            )
            if self.sla.delay_quantile not in estimated:
                raise ValueError(
                    f"CampaignSpec.sla checks delay at quantile "
                    f"{self.sla.delay_quantile}, but the cell only estimates "
                    f"{sorted(estimated)}; add it to the cell's quantiles"
                )

    # -- interval derivation -----------------------------------------------------------

    def interval_seed(self, index: int) -> int:
        """The root seed of interval ``index`` (BLAKE2b seed-spacing)."""
        if not 0 <= index < self.intervals:
            raise ValueError(
                f"interval index {index} out of range [0, {self.intervals})"
            )
        return derive_seed(self.cell.seed, f"interval.{index}")

    def interval_cell(self, index: int) -> "ExperimentSpec | MeshSpec":
        """The cell spec interval ``index`` executes.

        The cell is re-rooted at the interval seed; a traffic seed pinned in
        the template is re-spaced per interval too (otherwise every interval
        would replay identical traffic, which is never what a campaign
        means).  A mesh cell's *topology* seed is the opposite case: the
        network under contract is one fixed graph, so the template's
        effective topology seed is pinned before re-rooting — intervals vary
        traffic and path randomness, never the topology.
        """
        seed = self.interval_seed(index)
        replaced: dict[str, Any] = {"seed": seed}
        if self.cell.traffic.seed is not None:
            replaced["traffic"] = dataclasses.replace(
                self.cell.traffic,
                seed=derive_seed(self.cell.traffic.seed, f"interval.{index}"),
            )
        if isinstance(self.cell, MeshSpec) and self.cell.topology.seed is None:
            replaced["topology"] = dataclasses.replace(
                self.cell.topology,
                seed=self.cell.topology.effective_seed(self.cell.seed),
            )
        return dataclasses.replace(self.cell, **replaced)

    # -- identity ----------------------------------------------------------------------

    def spec_hash(self) -> str:
        """Stable hex digest of the campaign's canonical JSON form.

        Recorded in every run-store record; resume refuses to continue a
        store whose spec hash does not match the spec it was opened with.
        """
        return hashlib.blake2b(
            self.to_json().encode("utf-8"), digest_size=16
        ).hexdigest()

    # -- convenience -------------------------------------------------------------------

    def with_overrides(self, overrides: Mapping[str, Any]) -> "CampaignSpec":
        """A copy with dotted-path overrides applied (``"cell.traffic.packet_count"``)."""
        return _apply_overrides(self, overrides)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "intervals": self.intervals,
            "cell": self.cell.to_dict(),
            "sla": self.sla.to_dict() if self.sla is not None else None,
        }

    def to_json(self) -> str:
        """Byte-stable JSON (sorted keys, fixed separators)."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        _check_keys(cls, data)
        payload = dict(data)
        if "cell" in payload and not isinstance(
            payload["cell"], (ExperimentSpec, MeshSpec)
        ):
            cell_data = payload["cell"]
            # Mesh cells are recognized by their topology key, exactly as the
            # sweep worker entry point recognizes mesh payloads.
            if "topology" in cell_data:
                payload["cell"] = MeshSpec.from_dict(cell_data)
            else:
                payload["cell"] = ExperimentSpec.from_dict(cell_data)
        if payload.get("sla") is not None and not isinstance(
            payload["sla"], SLATargetSpec
        ):
            payload["sla"] = SLATargetSpec.from_dict(payload["sla"])
        return cls(**payload)

    @classmethod
    def from_json(cls, payload: str) -> "CampaignSpec":
        import json

        return cls.from_dict(json.loads(payload))


# -- execution policy ----------------------------------------------------------------

_POLICY_ENGINES = ("batch", "scalar", "streaming")


@dataclass(frozen=True)
class ExecutionPolicy:
    """*How* to execute a cell, as a frozen, JSON-round-trippable value.

    Specs above describe *what* to measure; an execution policy describes
    *how* to run it — engine choice, sharding, chunking, pacing and
    mid-interval checkpointing.  Because every engine is byte-identical, a
    policy never changes a result: it is deliberately excluded from
    :meth:`CampaignSpec.spec_hash` and from every stored record, and may vary
    freely between a run and its resume.

    Attributes
    ----------
    engine:
        ``"batch"``, ``"scalar"`` or ``"streaming"``; ``None`` defers to the
        cell spec's own ``engine`` field.
    shards:
        Worker processes for the streaming engines.  The coordinator runs one
        cheap propagation-plan pass, captures a
        :class:`~repro.engine.checkpoint.StreamCheckpoint` per shard
        boundary, and workers seek straight to their chunk span — zero
        prefix replay.
    chunk_size:
        Streaming chunk size in packets; ``None`` uses the engine default.
    throttle:
        Seconds to sleep between campaign intervals (and after each
        mid-interval checkpoint write) — the pacing knob long soak runs use.
    checkpoint_every:
        Emit a mid-interval :class:`~repro.engine.streaming.RunnerCheckpoint`
        every this many chunks (streaming, ``shards=1`` only): a killed run
        resumes from the last checkpoint bit-identically.

    Validation is eager: impossible combinations (``scalar`` with shards,
    ``checkpoint_every`` with ``shards > 1``) are rejected at construction,
    and :meth:`bind` rejects spec-dependent conflicts (mesh cells have no
    scalar engine) before any work starts.
    """

    engine: str | None = None
    shards: int = 1
    chunk_size: int | None = None
    throttle: float = 0.0
    checkpoint_every: int | None = None

    def __post_init__(self) -> None:
        if self.engine is not None and self.engine not in _POLICY_ENGINES:
            raise ValueError(
                f"engine must be 'batch', 'scalar' or 'streaming', got {self.engine!r}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.chunk_size is not None:
            check_positive("chunk_size", self.chunk_size)
        check_non_negative("throttle", self.throttle)
        if self.checkpoint_every is not None:
            check_positive("checkpoint_every", self.checkpoint_every)
            if self.shards != 1:
                raise ValueError(
                    "mid-interval checkpointing requires shards=1; a sharded "
                    "run has no single resumable stream position"
                )
        if self.engine is not None and self.engine != "streaming":
            if self.shards != 1:
                raise ValueError(
                    f"engine {self.engine!r} does not support shards; "
                    f"use engine='streaming'"
                )
            if self.chunk_size is not None:
                raise ValueError(
                    f"engine {self.engine!r} does not support chunk_size; "
                    f"use engine='streaming'"
                )
            if self.checkpoint_every is not None:
                raise ValueError(
                    f"engine {self.engine!r} does not support checkpoint_every; "
                    f"use engine='streaming'"
                )

    # -- normalization -----------------------------------------------------------------

    @classmethod
    def coerce(
        cls,
        policy: "ExecutionPolicy | None" = None,
        *,
        engine: str | None = None,
        shards: int = 1,
        chunk_size: int | None = None,
        throttle: float = 0.0,
        checkpoint_every: int | None = None,
    ) -> "ExecutionPolicy":
        """Normalize legacy keyword arguments into a policy.

        Callers pass *either* a ready policy *or* the individual knobs;
        passing both (policy plus any non-default knob) is ambiguous and
        refused.
        """
        if policy is not None:
            if not isinstance(policy, cls):
                raise ValueError(
                    f"policy must be an ExecutionPolicy, got {type(policy).__name__}"
                )
            if (
                engine is not None
                or shards != 1
                or chunk_size is not None
                or throttle != 0.0
                or checkpoint_every is not None
            ):
                raise ValueError(
                    "pass either policy= or the individual engine/shards/"
                    "chunk_size/throttle/checkpoint_every arguments, not both"
                )
            return policy
        return cls(
            engine=engine,
            shards=shards,
            chunk_size=chunk_size,
            throttle=throttle,
            checkpoint_every=checkpoint_every,
        )

    def bind(self, spec: "ExperimentSpec | MeshSpec") -> "ExecutionPolicy":
        """Resolve this policy against a cell spec.

        Fills in the effective engine (the spec's own ``engine`` when this
        policy leaves it ``None``) and rejects spec-dependent conflicts
        eagerly, before any trace is synthesized.
        """
        engine = self.engine if self.engine is not None else spec.engine
        if isinstance(spec, MeshSpec):
            if engine == "scalar":
                raise ValueError(
                    "mesh cells have no scalar engine; use 'batch' or 'streaming'"
                )
            if self.checkpoint_every is not None:
                raise ValueError(
                    "checkpoint_every applies to single-path streaming cells "
                    "only; mesh intervals checkpoint at interval boundaries"
                )
        if engine != "streaming":
            if self.shards != 1:
                raise ValueError(
                    f"engine {engine!r} does not support shards; "
                    f"use engine='streaming'"
                )
            if self.chunk_size is not None:
                raise ValueError(
                    f"engine {engine!r} does not support chunk_size; "
                    f"use engine='streaming'"
                )
            if self.checkpoint_every is not None:
                raise ValueError(
                    f"engine {engine!r} does not support checkpoint_every; "
                    f"use engine='streaming'"
                )
        return dataclasses.replace(self, engine=engine)

    # -- convenience -------------------------------------------------------------------

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ExecutionPolicy":
        """A copy with field overrides applied (``{"shards": 4}``)."""
        return _apply_overrides(self, overrides)

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "shards": self.shards,
            "chunk_size": self.chunk_size,
            "throttle": self.throttle,
            "checkpoint_every": self.checkpoint_every,
        }

    def to_json(self) -> str:
        """Byte-stable JSON (sorted keys, fixed separators)."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionPolicy":
        _check_keys(cls, data)
        return cls(**data)

    @classmethod
    def from_json(cls, payload: str) -> "ExecutionPolicy":
        import json

        return cls.from_dict(json.loads(payload))
