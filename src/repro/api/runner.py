"""The experiment orchestrator: one cell, or a parallel sweep of cells.

:class:`Experiment` turns a declarative :class:`~repro.api.spec.ExperimentSpec`
into results:

* :meth:`Experiment.run` executes one cell — synthesize traffic, drive the
  path scenario (batch fast path by default), run every domain's HOPs, and
  answer the spec's estimation question — returning a
  :class:`~repro.api.results.CellResult`;
* :meth:`Experiment.sweep` executes a cartesian parameter grid of cells,
  serially or fanned across a :class:`~concurrent.futures.ProcessPoolExecutor`.

Every cell is a pure function of its spec (all randomness is seeded from the
spec), so a parallel sweep is **bit-identical** to a serial one: results come
back in grid order and serialize to the same bytes regardless of ``workers``.
"""

from __future__ import annotations

import dataclasses
import itertools
from concurrent.futures import ProcessPoolExecutor
from functools import lru_cache, partial
from typing import Any, Mapping, NamedTuple, Sequence

from repro.analysis.localization import identify_suspects, triangulate_suspects
from repro.api.registry import ADVERSARIES
from repro.api.results import (
    CellResult,
    DomainEstimate,
    MeshPathResult,
    MeshResult,
    OverheadSummary,
    SweepCell,
    SweepResult,
    TargetResult,
    TriangulationSummary,
    TruthSummary,
    VerificationSummary,
)
from repro.api.spec import (
    ExecutionPolicy,
    ExperimentSpec,
    MeshSpec,
    TrafficSpec,
    derive_seed,
)
from repro.adversary.lying import MeshLyingDomainAgent
from repro.core.hop import HOPConfig
from repro.core.protocol import MeshSession, VPMSession
from repro.engine.mesh import MeshCell, MeshRunner
from repro.engine.streaming import DEFAULT_CHUNK_SIZE, StreamingCell, StreamingRunner
from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.net.prefixes import PrefixPair
from repro.net.topology import HOPPath
from repro.simulation.mesh import MeshScenario
from repro.simulation.scenario import PathScenario
from repro.traffic.trace import SyntheticTrace, default_prefix_pair

__all__ = [
    "CellRun",
    "Experiment",
    "MeshRun",
    "clear_trace_cache",
    "run_cell",
    "run_cell_full",
    "run_mesh_cell",
    "run_mesh_cell_full",
]


# Traffic synthesis is the one reusable piece of a cell (scenarios and
# sessions are stateful and must be rebuilt per cell, but a trace is a pure
# function of its spec, seed and prefix pair).  A small per-process cache
# means a sweep over protocol knobs synthesizes its packet sequence once, and
# — for batches — every cell shares one digest pass through the memoized
# root.  The batch cache is sized to hold a whole mesh's per-path traces, so
# mesh sweeps that don't touch traffic reuse them too.
@lru_cache(maxsize=8)
def _cached_batch(
    traffic: TrafficSpec, seed: int, prefix_pair: PrefixPair | None = None
) -> PacketBatch:
    return SyntheticTrace(
        config=traffic.trace_config(),
        prefix_pair=prefix_pair or default_prefix_pair(),
        seed=seed,
    ).packet_batch()


@lru_cache(maxsize=4)
def _cached_packets(traffic: TrafficSpec, seed: int) -> tuple[Packet, ...]:
    return tuple(
        SyntheticTrace(
            config=traffic.trace_config(), prefix_pair=default_prefix_pair(), seed=seed
        ).packets()
    )


def clear_trace_cache() -> None:
    """Release the cached traffic traces (and their memoized digest arrays).

    The cache holds at most 8 batches + 4 packet tuples, but at million-packet
    scale those pin substantial memory for the process lifetime — call this
    after a large run to hand it back.
    """
    _cached_batch.cache_clear()
    _cached_packets.cache_clear()


def _apply_condition_adversaries(spec: ExperimentSpec, scenario: PathScenario) -> None:
    for adversary in spec.adversaries:
        if adversary.role != "condition":
            continue
        factory = ADVERSARIES.get(adversary.kind)
        try:
            overrides = factory(**adversary.params)
        except TypeError as exc:
            raise ValueError(
                f"invalid parameters for adversary {adversary.kind!r}: {exc}"
            ) from exc
        condition = scenario.condition_for(adversary.domain)
        scenario.configure_domain(
            adversary.domain, dataclasses.replace(condition, **overrides)
        )


def _build_agent_adversaries(
    spec: ExperimentSpec, path: HOPPath, configs: Mapping[str, HOPConfig | None]
) -> dict[str, Any]:
    agents: dict[str, Any] = {}
    for adversary in spec.adversaries:
        if adversary.role != "agent":
            continue
        factory = ADVERSARIES.get(adversary.kind)
        if adversary.domain not in configs:
            raise ValueError(
                f"adversary {adversary.kind!r} targets domain "
                f"{adversary.domain!r}, which is not on the path "
                f"(path domains: {sorted(configs)})"
            )
        config = configs[adversary.domain]
        if config is None:
            # A receipt-fabricating adversary needs deployed HOPs; silently
            # handing it a default config would contradict the spec's
            # partial-deployment declaration.
            raise ValueError(
                f"adversary {adversary.kind!r} at domain {adversary.domain!r} "
                f"fabricates receipts, but the protocol spec declares that "
                f"domain non-deployed (config None)"
            )
        try:
            agents[adversary.domain] = factory(
                adversary.domain,
                path,
                config,
                spec.protocol.max_diff,
                agents,
                **adversary.params,
            )
        except TypeError as exc:
            raise ValueError(
                f"invalid parameters for adversary {adversary.kind!r}: {exc}"
            ) from exc
    return agents


def _build_cell(payload: dict[str, Any]) -> StreamingCell:
    """Build the (scenario, trace, session) triple every engine drives.

    The single construction path for all three engines — any spec field that
    must influence cell construction is wired here exactly once, which is
    what keeps the engines' byte-identical contract honest.  Top-level (and
    fed a plain dict) so ``shards > 1`` worker processes can unpickle and
    re-execute it; a cell is a pure function of the spec's seeds, so every
    rebuild is identical.
    """
    spec = ExperimentSpec.from_dict(payload)
    scenario = spec.path.build(spec.seed)
    _apply_condition_adversaries(spec, scenario)
    trace = SyntheticTrace(
        config=spec.traffic.trace_config(),
        prefix_pair=default_prefix_pair(),
        seed=spec.traffic.effective_seed(spec.seed),
    )
    configs = spec.protocol.build_configs(scenario.path)
    agents = _build_agent_adversaries(spec, scenario.path, configs)
    session = VPMSession(
        scenario.path, configs=configs, agents=agents, max_diff=spec.protocol.max_diff
    )
    return StreamingCell(scenario=scenario, trace=trace, session=session)


def _summarize_cell(spec: ExperimentSpec, session: VPMSession, truth_source) -> CellResult:
    """Turn a fed session (+ ground truth) into a :class:`CellResult`."""
    estimation = spec.estimation
    verifier = session.verifier_for(estimation.observer, quantiles=estimation.quantiles)
    consistency_findings = len(verifier.check_consistency()) if estimation.verify else 0

    targets: list[TargetResult] = []
    for target in estimation.targets:
        performance = verifier.estimate_domain(target)
        truth = None
        if target in truth_source.domain_truth:
            truth = TruthSummary.from_truth(
                truth_source.truth_for(target), estimation.quantiles
            )
        verification = None
        if estimation.verify:
            verification = VerificationSummary.from_result(
                verifier.verify_domain(target)
            )
        independent = None
        if estimation.independent:
            neighbor_view = verifier.estimate_domain_via_neighbors(target)
            if neighbor_view is not None:
                independent = DomainEstimate.from_performance(neighbor_view)
        targets.append(
            TargetResult(
                estimate=DomainEstimate.from_performance(performance),
                truth=truth,
                verification=verification,
                independent=independent,
            )
        )

    return CellResult(
        spec=spec.to_dict(),
        targets=tuple(targets),
        consistency_findings=consistency_findings,
        overhead=OverheadSummary.from_overhead(session.overhead()),
    )


class CellRun(NamedTuple):
    """One executed cell with its engine-layer artefacts still attached.

    ``result`` is the summarized :class:`CellResult`; ``session`` is the fed
    :class:`VPMSession` (its bus holds the published reports, so callers can
    build further verifiers); ``reports`` are the per-HOP receipts — what the
    campaign engine digests into its per-interval audit records.
    """

    result: CellResult
    session: VPMSession
    reports: dict[str, Any]


def run_cell_full(
    spec: ExperimentSpec,
    engine: str | None = None,
    shards: int = 1,
    chunk_size: int | None = None,
    policy: ExecutionPolicy | None = None,
    checkpoint_sink=None,
    resume_from=None,
) -> CellRun:
    """Execute one cell and return the result *and* its session/receipts.

    The engine contract of :func:`run_cell` applies unchanged; this variant
    exists for callers (the campaign runner, receipt auditing) that need the
    receipts or additional verifier views, not just the summary.

    ``policy`` is the declarative form of the execution knobs
    (:class:`~repro.api.spec.ExecutionPolicy`); the individual ``engine`` /
    ``shards`` / ``chunk_size`` keywords keep working and normalize into one.
    ``checkpoint_sink`` / ``resume_from`` forward to
    :class:`~repro.engine.streaming.StreamingRunner` for mid-run
    checkpointing (streaming, ``shards=1`` only).
    """
    policy = ExecutionPolicy.coerce(
        policy, engine=engine, shards=shards, chunk_size=chunk_size
    ).bind(spec)

    if policy.engine == "streaming":
        runner = StreamingRunner(
            partial(_build_cell, spec.to_dict()),
            chunk_size=policy.chunk_size or DEFAULT_CHUNK_SIZE,
            shards=policy.shards,
            checkpoint_every=policy.checkpoint_every,
            checkpoint_sink=checkpoint_sink,
            resume_from=resume_from,
        )
        streamed = runner.run()
        result = _summarize_cell(spec, streamed.session, streamed)
        return CellRun(result=result, session=streamed.session, reports=streamed.reports)

    if checkpoint_sink is not None or resume_from is not None:
        raise ValueError(
            f"mid-run checkpointing requires the streaming engine "
            f"(this cell executes on {policy.engine!r})"
        )
    cell = _build_cell(spec.to_dict())
    traffic_seed = spec.traffic.effective_seed(spec.seed)
    if policy.engine == "batch":
        observation = cell.scenario.run_batch(_cached_batch(spec.traffic, traffic_seed))
    else:
        observation = cell.scenario.run(_cached_packets(spec.traffic, traffic_seed))
    reports = cell.session.run(observation)
    result = _summarize_cell(spec, cell.session, observation)
    return CellRun(result=result, session=cell.session, reports=reports)


def run_cell(
    spec: ExperimentSpec,
    engine: str | None = None,
    shards: int = 1,
    chunk_size: int | None = None,
    policy: ExecutionPolicy | None = None,
) -> CellResult:
    """Execute one experiment cell and summarize everything it produced.

    ``engine`` overrides the spec's engine *for execution only* — the result
    still embeds the spec unchanged, so the same spec run under different
    engines yields byte-identical ``CellResult.to_json()`` (the engines'
    exactness guarantee, asserted by the conformance suite).  ``shards`` and
    ``chunk_size`` apply to the streaming engine; ``policy`` is the
    declarative equivalent of all three.
    """
    return run_cell_full(
        spec, engine=engine, shards=shards, chunk_size=chunk_size, policy=policy
    ).result


# -- mesh cells ----------------------------------------------------------------------


def _build_mesh_cell(payload: dict[str, Any]) -> MeshCell:
    """Build the (mesh scenario, per-path traces, mesh session) triple.

    The single construction path for the batch and streaming mesh engines —
    top-level and dict-fed so ``shards > 1`` worker processes can rebuild the
    identical cell (a mesh cell is a pure function of the spec's seeds).
    """
    spec = MeshSpec.from_dict(payload)
    topology, paths = spec.topology.build(spec.seed)
    scenario = MeshScenario(topology, paths, seed=spec.seed)

    transit_names = set(scenario.transit_domain_names())
    for domain in sorted(spec.conditions):
        if domain not in transit_names:
            known = ", ".join(sorted(transit_names)) or "<none>"
            raise ValueError(
                f"MeshSpec.conditions names {domain!r}, which is a transit "
                f"domain of no path (transit domains: {known})"
            )
        condition_spec = spec.conditions[domain]
        scenario.configure_domain(
            domain,
            lambda index, name=domain, built=condition_spec: built.build(
                spec.seed, domain=f"{name}.path{index}"
            ),
        )

    all_domains: list[str] = []
    for path in paths:
        for domain in path.domains:
            if domain.name not in all_domains:
                all_domains.append(domain.name)

    agents: dict[str, Any] = {}
    for adversary in spec.adversaries:
        if adversary.domain not in all_domains:
            raise ValueError(
                f"adversary {adversary.kind!r} targets domain "
                f"{adversary.domain!r}, which is on no mesh path "
                f"(mesh domains: {sorted(all_domains)})"
            )
        if adversary.role == "condition":
            factory = ADVERSARIES.get(adversary.kind)
            try:
                overrides = factory(**adversary.params)
            except TypeError as exc:
                raise ValueError(
                    f"invalid parameters for adversary {adversary.kind!r}: {exc}"
                ) from exc
            scenario.override_domain(adversary.domain, **overrides)
            continue
        if adversary.kind != "lying":
            raise ValueError(
                f"agent-role adversary {adversary.kind!r} is not supported on "
                f"meshes yet; the mesh engines support 'lying' (per-path "
                f"fabrication) and every condition-role adversary"
            )

    configs = spec.protocol.build_configs_for(all_domains)
    for adversary in spec.adversaries:
        if adversary.role != "agent":
            continue
        config = configs[adversary.domain]
        if config is None:
            raise ValueError(
                f"adversary {adversary.kind!r} at domain {adversary.domain!r} "
                f"fabricates receipts, but the protocol spec declares that "
                f"domain non-deployed (config None)"
            )
        crossing = tuple(
            path
            for path in paths
            if any(hop.domain.name == adversary.domain for hop in path.hops)
        )
        try:
            agents[adversary.domain] = MeshLyingDomainAgent(
                adversary.domain,
                crossing,
                config=config,
                max_diff=spec.protocol.max_diff,
                **adversary.params,
            )
        except TypeError as exc:
            raise ValueError(
                f"invalid parameters for adversary {adversary.kind!r}: {exc}"
            ) from exc

    session = MeshSession(
        paths, configs=configs, agents=agents, max_diff=spec.protocol.max_diff
    )
    traces = tuple(
        SyntheticTrace(
            config=spec.traffic.trace_config(),
            prefix_pair=path.prefix_pair,
            seed=spec.traffic_seed(index),
        )
        for index, path in enumerate(paths)
    )
    return MeshCell(scenario=scenario, traces=traces, session=session)


def _summarize_mesh(spec: MeshSpec, session: MeshSession, truth_for) -> MeshResult:
    """Turn a fed mesh session (+ per-path ground truth) into a :class:`MeshResult`.

    ``truth_for(path_index, domain)`` returns the ground truth of one domain
    on one path — the batch observation and the streaming result both provide
    it, with elementwise-identical values.
    """
    path_results: list[MeshPathResult] = []
    suspects_by_path: dict[str, tuple] = {}
    for index, path in enumerate(session.paths):
        observer = path.domains[0].name
        verifier = session.verifier_for(observer, path, quantiles=spec.quantiles)
        findings = verifier.check_consistency()
        suspects = identify_suspects(path, findings)
        suspects_by_path[str(path.prefix_pair)] = suspects

        targets: list[TargetResult] = []
        for domain, _, _ in path.domain_segments():
            performance = verifier.estimate_domain(domain)
            truth = TruthSummary.from_truth(
                truth_for(index, domain.name), spec.quantiles
            )
            verification = VerificationSummary.from_result(
                verifier.verify_domain(domain)
            )
            independent = None
            neighbor_view = verifier.estimate_domain_via_neighbors(domain)
            if neighbor_view is not None:
                independent = DomainEstimate.from_performance(neighbor_view)
            targets.append(
                TargetResult(
                    estimate=DomainEstimate.from_performance(performance),
                    truth=truth,
                    verification=verification,
                    independent=independent,
                )
            )
        path_results.append(
            MeshPathResult(
                pair=str(path.prefix_pair),
                observer=observer,
                targets=tuple(targets),
                consistency_findings=len(findings),
                suspect_links=tuple(
                    (entry.upstream_domain, entry.downstream_domain)
                    for entry in suspects
                ),
            )
        )

    triangulation = TriangulationSummary.from_triangulation(
        triangulate_suspects(suspects_by_path)
    )
    return MeshResult(
        spec=spec.to_dict(),
        paths=tuple(path_results),
        triangulation=triangulation,
        overhead=OverheadSummary.from_overhead(session.overhead()),
    )


class MeshRun(NamedTuple):
    """One executed mesh cell with its engine-layer artefacts still attached."""

    result: MeshResult
    session: MeshSession
    reports: dict[str, Any]


def run_mesh_cell_full(
    spec: MeshSpec,
    engine: str | None = None,
    shards: int = 1,
    chunk_size: int | None = None,
    policy: ExecutionPolicy | None = None,
) -> MeshRun:
    """Execute one mesh cell and return the result *and* its session/receipts."""
    policy = ExecutionPolicy.coerce(
        policy, engine=engine, shards=shards, chunk_size=chunk_size
    ).bind(spec)

    if policy.engine == "streaming":
        runner = MeshRunner(
            partial(_build_mesh_cell, spec.to_dict()),
            chunk_size=policy.chunk_size or DEFAULT_CHUNK_SIZE,
            shards=policy.shards,
        )
        streamed = runner.run()
        result = _summarize_mesh(spec, streamed.session, streamed.truth_for)
        return MeshRun(result=result, session=streamed.session, reports=streamed.reports)

    cell = _build_mesh_cell(spec.to_dict())
    batches = [
        _cached_batch(spec.traffic, spec.traffic_seed(index), path.prefix_pair)
        for index, path in enumerate(cell.scenario.paths)
    ]
    observation = cell.scenario.run_batch(batches)
    reports = cell.session.run(observation)
    result = _summarize_mesh(spec, cell.session, observation.truth_for)
    return MeshRun(result=result, session=cell.session, reports=reports)


def run_mesh_cell(
    spec: MeshSpec,
    engine: str | None = None,
    shards: int = 1,
    chunk_size: int | None = None,
    policy: ExecutionPolicy | None = None,
) -> MeshResult:
    """Execute one mesh cell and summarize everything it produced.

    Like :func:`run_cell`, ``engine`` overrides the spec's engine for
    execution only; batch and streaming (any ``shards``/``chunk_size``)
    produce byte-identical ``MeshResult.to_json()``.
    """
    return run_mesh_cell_full(
        spec, engine=engine, shards=shards, chunk_size=chunk_size, policy=policy
    ).result


def _run_cell_payload(
    payload: dict[str, Any], policy_payload: dict[str, Any] | None = None
) -> CellResult | MeshResult:
    """Worker entry point: rebuild the spec from plain data and run the cell.

    Specs (and the optional execution policy) cross the process boundary as
    dicts (their canonical wire form), so a worker reconstructs and
    re-validates them against its own registries.  Mesh payloads are
    recognized by their ``topology`` key.
    """
    policy = (
        ExecutionPolicy.from_dict(policy_payload)
        if policy_payload is not None
        else None
    )
    if "topology" in payload:
        return run_mesh_cell(MeshSpec.from_dict(payload), policy=policy)
    return run_cell(ExperimentSpec.from_dict(payload), policy=policy)


class Experiment:
    """Runs a declarative :class:`~repro.api.spec.ExperimentSpec` or
    :class:`~repro.api.spec.MeshSpec`.

    >>> spec = ExperimentSpec(
    ...     traffic=TrafficSpec(workload="bench-sequence"),
    ...     path=PathSpec(conditions={"X": ConditionSpec(loss="bernoulli",
    ...                                                  loss_params={"loss_rate": 0.1})}),
    ... )
    >>> result = Experiment(spec).run()
    >>> result.target("X").estimate.loss_rate

    A mesh spec runs the same way (``.run()`` returns a
    :class:`~repro.api.results.MeshResult`), and sweeps accept the same
    dotted-path grids over either spec type.
    """

    def __init__(self, spec: ExperimentSpec | MeshSpec) -> None:
        self.spec = spec

    # -- single cell -----------------------------------------------------------------

    def run(
        self,
        engine: str | None = None,
        shards: int = 1,
        chunk_size: int | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> CellResult | MeshResult:
        """Run one cell.

        By default the spec's engine runs (the batch fast path unless the
        spec says otherwise).  ``engine="streaming"`` drives the chunked
        bounded-memory engine; ``shards=N`` additionally splits the stream
        across a process pool, byte-identical to the single-process run::

            Experiment(spec).run(engine="streaming", shards=4)

        or, equivalently, as one declarative value::

            Experiment(spec).run(policy=ExecutionPolicy(engine="streaming",
                                                        shards=4))

        The override affects execution only — the returned result embeds the
        spec unchanged, so results are directly comparable across engines.
        """
        if isinstance(self.spec, MeshSpec):
            return run_mesh_cell(
                self.spec,
                engine=engine,
                shards=shards,
                chunk_size=chunk_size,
                policy=policy,
            )
        return run_cell(
            self.spec,
            engine=engine,
            shards=shards,
            chunk_size=chunk_size,
            policy=policy,
        )

    # -- sweeps ----------------------------------------------------------------------

    def sweep(
        self,
        grid: Mapping[str, Sequence[Any]],
        workers: int = 1,
        policy: ExecutionPolicy | None = None,
    ) -> SweepResult:
        """Run the cartesian product of ``grid`` over this experiment's spec.

        ``grid`` maps dotted spec paths (as accepted by
        :meth:`ExperimentSpec.with_overrides`) to the values to sweep, e.g.::

            experiment.sweep({
                "protocol.default.sampling_rate": [0.05, 0.01, 0.001],
                "path.conditions.X.loss_params.loss_rate": [0.0, 0.25],
            }, workers=4)

        Cells are enumerated row-major in the grid's key order.  With
        ``workers > 1`` cells execute on a process pool; because every cell is
        a pure function of its spec, the sweep result — including its
        ``to_json()`` bytes — is identical to the serial run.

        Worker processes rebuild each spec against their *own* registries.
        Built-in components always resolve; custom ``register_*`` components
        must be registered at import time of a module the workers import too
        (e.g. the plugin module itself) — registrations made only in a
        ``__main__`` script are invisible to spawn/forkserver workers (the
        default start method on macOS and Windows) and such sweeps should run
        with ``workers=1`` or register from an importable module.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        keys = list(grid)
        combos = list(itertools.product(*(list(grid[key]) for key in keys)))
        overrides_list = [dict(zip(keys, combo)) for combo in combos]
        specs = [self.spec.with_overrides(overrides) for overrides in overrides_list]
        if policy is not None:
            # Validate the policy against every cell before any work starts —
            # a sweep that would die on cell 40 of 60 should die on cell 0.
            for cell_spec in specs:
                policy.bind(cell_spec)

        if workers > 1 and len(specs) > 1:
            payloads = [cell_spec.to_dict() for cell_spec in specs]
            runner = partial(
                _run_cell_payload,
                policy_payload=policy.to_dict() if policy is not None else None,
            )
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(runner, payloads))
        else:
            results = [
                run_mesh_cell(cell_spec, policy=policy)
                if isinstance(cell_spec, MeshSpec)
                else run_cell(cell_spec, policy=policy)
                for cell_spec in specs
            ]

        return SweepResult(
            cells=tuple(
                SweepCell(overrides=overrides, result=result)
                for overrides, result in zip(overrides_list, results)
            )
        )

    # -- campaigns -------------------------------------------------------------------

    def campaign(self):
        """Build a :class:`~repro.core.campaign.MeasurementCampaign` from the spec.

        The campaign tracks the spec's first estimation target, observed by the
        spec's observer, over the scenario and per-domain configs the spec
        describes; agent-role adversaries are rebuilt fresh each interval.
        Feed it interval traces (e.g. from :meth:`interval_packets`).
        """
        from repro.core.campaign import MeasurementCampaign

        spec = self.spec
        if isinstance(spec, MeshSpec):
            raise ValueError(
                "campaigns run over single-path ExperimentSpecs; run a mesh "
                "with Experiment.run() / .sweep() instead"
            )
        scenario = spec.path.build(spec.seed)
        _apply_condition_adversaries(spec, scenario)
        configs = spec.protocol.build_configs(scenario.path)

        agents_factory = None
        if any(adversary.role == "agent" for adversary in spec.adversaries):

            def agents_factory(path: HOPPath) -> dict[str, Any]:
                return _build_agent_adversaries(spec, path, configs)

        return MeasurementCampaign(
            scenario,
            target=spec.estimation.targets[0],
            observer=spec.estimation.observer,
            configs=configs,
            agents_factory=agents_factory,
        )

    def campaign_runner(
        self,
        intervals: int,
        sla=None,
        name: str | None = None,
        store=None,
        engine: str | None = None,
        shards: int = 1,
        chunk_size: int | None = None,
        policy: ExecutionPolicy | None = None,
    ):
        """A checkpointable :class:`~repro.engine.campaign.CampaignRunner`.

        Wraps this experiment's spec (single-path or mesh) in a
        :class:`~repro.api.spec.CampaignSpec` over ``intervals`` intervals
        with the optional declarative ``sla``
        (:class:`~repro.api.spec.SLATargetSpec`), checkpointing into
        ``store`` (a :class:`repro.store.RunStore`, or ``None`` for an
        in-memory run).  Each interval runs the whole cell on the fast
        engines; see :mod:`repro.engine.campaign` for the resume contract.
        """
        from repro.api.spec import CampaignSpec
        from repro.engine.campaign import CampaignRunner

        spec = CampaignSpec(
            name=name or f"{self.spec.name}-campaign",
            intervals=intervals,
            cell=self.spec,
            sla=sla,
        )
        return CampaignRunner(
            spec,
            store=store,
            engine=engine,
            shards=shards,
            chunk_size=chunk_size,
            policy=policy,
        )

    def interval_packets(self, count: int, first: int = 0) -> list[list[Packet]]:
        """Per-interval packet sequences with seed-spaced traffic.

        Interval ``i`` uses the traffic spec re-seeded with
        ``derive_seed(root, f"interval.{i}")``, so campaigns are as
        reproducible as single cells.  ``first`` shifts the interval index
        (e.g. ``interval_packets(1, first=4)`` synthesizes just interval 4).
        """
        sequences: list[list[Packet]] = []
        for index in range(first, first + count):
            traffic = dataclasses.replace(
                self.spec.traffic, seed=derive_seed(self.spec.seed, f"interval.{index}")
            )
            sequences.append(traffic.build(self.spec.seed).packets())
        return sequences
