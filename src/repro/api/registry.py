"""String-keyed component registries behind the declarative experiment API.

Specs (:mod:`repro.api.spec`) name their components — delay models, loss
models, reordering models, adversaries, scenarios — by registry key instead of
importing classes, which is what makes an :class:`~repro.api.spec.ExperimentSpec`
a plain, JSON-round-trippable value.  Third parties plug in new components
with the decorators exported here:

>>> from repro.api import register_delay_model
>>> @register_delay_model("spike")
... class SpikeDelayModel(DelayModel):
...     ...

and any spec may then say ``ConditionSpec(delay="spike", delay_params={...})``.

Every model already shipped in :mod:`repro.traffic` and every adversary in
:mod:`repro.adversary` is registered at import time, so the registries are the
complete catalogue of what a spec can name.

Adversary factories come in two roles:

* ``"agent"`` — build a :class:`~repro.core.domain.DomainAgent` subclass that
  fabricates receipts (lying, collusion).  The factory receives
  ``(domain, path, config, max_diff, agents, **params)`` where ``agents`` maps
  the adversarial agents built so far (specs are built in order, so a colluder
  can reference its liar by domain name).
* ``"condition"`` — build forwarding-behaviour overrides for the domain's
  :class:`~repro.simulation.scenario.SegmentCondition` (biased treatment,
  marker dropping).  The factory receives only ``**params`` and returns a dict
  of ``SegmentCondition`` field overrides.  The predicates it installs accept
  both a single :class:`~repro.net.packet.Packet` and a whole
  :class:`~repro.net.batch.PacketBatch` (returning a boolean mask), so they
  work under either execution engine.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.adversary.bias import BiasedTreatmentAttack
from repro.adversary.collusion import ColludingDomainAgent
from repro.adversary.lying import LyingDomainAgent
from repro.adversary.marker_drop import MarkerDropAttack
from repro.core.sampling import DEFAULT_MARKER_RATE
from repro.net.batch import PacketBatch
from repro.net.hashing import MASK64, splitmix64_batch, threshold_for_rate
from repro.net.topology import (
    MeshTopologyConfig,
    figure1_topology,
    generate_mesh_topology,
    star_topology,
)
from repro.simulation.scenario import PathScenario
from repro.traffic.delay_models import (
    CongestionDelayModel,
    ConstantDelayModel,
    EmpiricalDelayModel,
    JitterDelayModel,
)
from repro.traffic.loss_models import (
    BernoulliLossModel,
    GilbertElliottLossModel,
    NoLossModel,
)
from repro.traffic.reordering import NoReordering, WindowReordering

__all__ = [
    "Registry",
    "DELAY_MODELS",
    "LOSS_MODELS",
    "REORDERING_MODELS",
    "ADVERSARIES",
    "SCENARIOS",
    "TOPOLOGIES",
    "register_delay_model",
    "register_loss_model",
    "register_reordering_model",
    "register_adversary",
    "register_scenario",
    "register_topology",
]


class Registry:
    """A named mapping from string keys to component factories.

    ``register`` doubles as a decorator factory; ``get`` raises a
    :class:`ValueError` that lists the known keys, so a typo in a spec fails
    with an actionable message instead of a bare ``KeyError``.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Callable] = {}

    def register(
        self, name: str, factory: Callable | None = None, *, overwrite: bool = False
    ) -> Callable:
        """Register ``factory`` under ``name`` (usable as a decorator)."""

        def decorate(obj: Callable) -> Callable:
            if not overwrite and name in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass overwrite=True to replace it"
                )
            self._entries[name] = obj
            return obj

        if factory is not None:
            return decorate(factory)
        return decorate

    def unregister(self, name: str) -> None:
        """Remove a registration (mainly for tests and plugin teardown)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> Callable:
        """The factory registered under ``name``; clear error when unknown."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered {self.kind}s: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered keys, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"


DELAY_MODELS = Registry("delay model")
LOSS_MODELS = Registry("loss model")
REORDERING_MODELS = Registry("reordering model")
ADVERSARIES = Registry("adversary")
SCENARIOS = Registry("scenario")
TOPOLOGIES = Registry("topology")


def register_delay_model(name: str, factory: Callable | None = None, **kwargs):
    """Register a delay-model factory for use in ``ConditionSpec.delay``."""
    return DELAY_MODELS.register(name, factory, **kwargs)


def register_loss_model(name: str, factory: Callable | None = None, **kwargs):
    """Register a loss-model factory for use in ``ConditionSpec.loss``."""
    return LOSS_MODELS.register(name, factory, **kwargs)


def register_reordering_model(name: str, factory: Callable | None = None, **kwargs):
    """Register a reordering-model factory for ``ConditionSpec.reordering``."""
    return REORDERING_MODELS.register(name, factory, **kwargs)


def register_adversary(name: str, *, role: str = "agent", **kwargs):
    """Register an adversary factory for use in ``AdversarySpec.kind``.

    ``role`` is ``"agent"`` (receipt fabrication) or ``"condition"``
    (forwarding misbehaviour); see the module docstring for the factory
    signatures.
    """
    if role not in ("agent", "condition"):
        raise ValueError(f"adversary role must be 'agent' or 'condition', got {role!r}")

    def decorate(factory: Callable) -> Callable:
        factory.adversary_role = role
        return ADVERSARIES.register(name, factory, **kwargs)

    return decorate


def register_scenario(name: str, factory: Callable | None = None, **kwargs):
    """Register a scenario factory (``seed=..., **params -> PathScenario``)."""
    return SCENARIOS.register(name, factory, **kwargs)


def register_topology(name: str, factory: Callable | None = None, **kwargs):
    """Register a topology factory for use in ``TopologySpec.kind``.

    The factory signature is ``seed=..., **params -> (Topology, tuple[HOPPath, ...])``:
    it returns the topology and the HOP paths (distinct prefix pairs) a mesh
    workload drives over it.
    """
    return TOPOLOGIES.register(name, factory, **kwargs)


# -- built-in traffic models ---------------------------------------------------------

DELAY_MODELS.register("constant", ConstantDelayModel)
DELAY_MODELS.register("jitter", JitterDelayModel)
DELAY_MODELS.register("congestion", CongestionDelayModel)
DELAY_MODELS.register("empirical", EmpiricalDelayModel)

LOSS_MODELS.register("none", NoLossModel)
LOSS_MODELS.register("bernoulli", BernoulliLossModel)
LOSS_MODELS.register("gilbert-elliott", GilbertElliottLossModel)
LOSS_MODELS.register("gilbert-elliott-rate", GilbertElliottLossModel.from_target_rate)

REORDERING_MODELS.register("none", NoReordering)
REORDERING_MODELS.register("window", WindowReordering)


# -- built-in scenarios --------------------------------------------------------------


@register_scenario("figure1")
def _figure1_scenario(seed: int = 0) -> PathScenario:
    """The paper's Figure-1 path S → L → X → N → D (HOPs 1..8)."""
    return PathScenario(seed=seed)


# -- built-in topologies -------------------------------------------------------------


@register_topology("figure1")
def _figure1_topology_entry(seed: int = 0):
    """The Figure-1 topology as a one-path mesh (its named instance)."""
    topology, path = figure1_topology()
    return topology, (path,)


@register_topology("star")
def _star_topology_entry(seed: int = 0, path_count: int = 3):
    """Core-and-spokes: every path crosses the single transit core ``X``."""
    return star_topology(path_count=path_count)


@register_topology("mesh-random")
def _mesh_random_topology_entry(
    seed: int = 0,
    transit_domains: int = 4,
    stub_domains: int = 4,
    transit_degree: float = 2.0,
    path_count: int = 4,
    backbone: str = "ring",
    stub_attachment: str = "random",
):
    """A seeded random transit/stub mesh (see :class:`MeshTopologyConfig`)."""
    config = MeshTopologyConfig(
        transit_domains=transit_domains,
        stub_domains=stub_domains,
        transit_degree=transit_degree,
        path_count=path_count,
        backbone=backbone,
        stub_attachment=stub_attachment,
    )
    return generate_mesh_topology(config, seed=seed)


# -- built-in adversaries ------------------------------------------------------------


@register_adversary("lying", role="agent")
def _lying_agent(domain, path, config, max_diff, agents, **params):
    """A domain that fabricates its egress receipts (Section 3.1 / 4)."""
    return LyingDomainAgent(domain, path, config=config, max_diff=max_diff, **params)


@register_adversary("colluding", role="agent")
def _colluding_agent(domain, path, config, max_diff, agents, *, colluding_with, **params):
    """A downstream neighbor covering a liar's claims (Section 3.1).

    ``colluding_with`` names the lying domain, whose :class:`LyingDomainAgent`
    must appear earlier in the spec's adversary list.
    """
    try:
        liar = agents[colluding_with]
    except KeyError:
        raise ValueError(
            f"colluding domain {domain!r} references {colluding_with!r}, but no "
            f"adversary was built for it; list the 'lying' spec first"
        ) from None
    return ColludingDomainAgent(
        domain, path, colluding_with=liar, config=config, max_diff=max_diff, **params
    )


@register_adversary("marker-drop", role="condition")
def _marker_drop_condition(*, marker_rate: float = DEFAULT_MARKER_RATE):
    """Drop every marker packet inside the domain (Section 5.3)."""
    attack = MarkerDropAttack(marker_rate=marker_rate)
    digester = attack.digester
    threshold = np.uint64(attack.marker_threshold)

    def predicate(target):
        if isinstance(target, PacketBatch):
            return digester.digest_batch(target) > threshold
        return attack.is_marker(target)

    return {"drop_predicate": predicate}


@register_adversary("biased-treatment", role="condition")
def _biased_treatment_condition(
    *,
    guess_rate: float = 0.01,
    guess_salt: int = 0xBAD,
    preferential_delay: float = 0.2e-3,
):
    """Fast-path a blindly guessed packet subset (Section 3.2 / 5.1).

    Against VPM's delay-keyed sampling the attacker cannot predict the sampled
    set, so the strongest condition-level bias is a salted random guess at the
    configured budget — which cannot shift the estimate systematically.
    """
    attack = BiasedTreatmentAttack(guess_rate=guess_rate, guess_salt=guess_salt)
    scalar_predicate = attack.blind_guess_predicate()
    digester = attack.digester
    threshold = np.uint64(threshold_for_rate(guess_rate))
    salt = np.uint64(guess_salt & MASK64)

    def predicate(target):
        if isinstance(target, PacketBatch):
            return splitmix64_batch(digester.digest_batch(target) ^ salt) > threshold
        return scalar_predicate(target)

    return {
        "preferential_predicate": predicate,
        "preferential_delay": preferential_delay,
    }
