"""Checkpointable long-horizon campaign execution.

The paper's framing is a contract held over a long horizon ("a certain level
of packet loss per month") audited from per-interval receipts.
:class:`CampaignRunner` executes a :class:`~repro.api.spec.CampaignSpec` one
interval at a time on the fast engines (batch, streaming with any shard
count, or the mesh engines, per the cell spec / runtime override), folds each
interval into campaign-level statistics **incrementally** — pooled delay
quantiles live in a :class:`~repro.analysis.quantiles.MergedDelayPool`, never
re-pooled from raw samples, or (with ``EstimationSpec.mode="sketch"``) in a
bounded-memory :class:`~repro.analysis.sketch.DelayQuantileSketch` whose
per-interval record state is O(sketch) bytes regardless of traffic volume —
and checkpoints after every interval to a :class:`~repro.store.RunStore`.

Because interval ``i`` is a pure function of ``(spec, i)`` (the spec's
BLAKE2b seed-spacing) and the store append is atomic, a campaign killed at
any instant resumes from its last completed interval and finishes with a
store **byte-identical** to an uninterrupted run — the property the
``campaign-smoke`` CI job and the resume property suite enforce.  Engine
choice never perturbs the store either: the engines' byte-identical results
contract means a run started on the batch engine may resume on streaming
``shards=4`` and still match.

An :class:`~repro.api.spec.ExecutionPolicy` with ``checkpoint_every`` set
tightens the granularity further: the streaming engine persists a
mid-interval :class:`~repro.engine.streaming.RunnerCheckpoint` every N
chunks, so a kill *inside* a long interval resumes from the last chunk
boundary — seeking the propagation state instead of replaying the prefix —
and still finishes with the identical store.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, NamedTuple, Sequence

import numpy as np

from repro.analysis.quantiles import MergedDelayPool
from repro.analysis.sketch import DelayQuantileSketch
from repro.analysis.sla import SLAVerdict, check_sla
from repro.api.spec import CampaignSpec, ExecutionPolicy, ExperimentSpec, MeshSpec
from repro.engine.streaming import DEFAULT_CHUNK_SIZE, RunnerCheckpoint
from repro.core.estimation import (
    DelayQuantileEstimate,
    estimate_delay_quantiles,
    match_sample_delays,
)
from repro.core.verifier import DomainPerformance, Verifier
from repro.net.topology import HOPPath
from repro.reporting.serialization import receipts_digest
from repro.store import RunStore

__all__ = [
    "CampaignAccumulator",
    "CampaignEvent",
    "CampaignRunner",
    "CampaignRunOutcome",
    "CheckpointWritten",
    "IntervalCommitted",
    "RunComplete",
    "estimation_settings",
    "interval_record",
]

RECORD_VERSION = 1


@dataclass(frozen=True)
class IntervalCommitted:
    """Interval ``interval`` finished and its record is durably in the store."""

    interval: int
    intervals: int
    record: Mapping[str, Any]


@dataclass(frozen=True)
class CheckpointWritten:
    """A mid-interval stream checkpoint landed at a chunk boundary."""

    interval: int
    intervals: int
    chunk_index: int


@dataclass(frozen=True)
class RunComplete:
    """The campaign's final interval committed and the summary was written."""

    intervals: int
    summary: Mapping[str, Any]


#: Everything a campaign run can report while it executes.  Consumers match on
#: the concrete type; the union exists so a sink can be typed once and handed
#: to any driver (the CLI's progress printer and the measurement service's job
#: event log both consume exactly this stream).
CampaignEvent = IntervalCommitted | CheckpointWritten | RunComplete


def estimation_settings(cell: ExperimentSpec | MeshSpec) -> tuple[str, int]:
    """The estimation tier ``(mode, sketch_size)`` one cell spec selects."""
    if isinstance(cell, MeshSpec):
        return cell.estimation_mode, cell.sketch_size
    return cell.estimation.mode, cell.estimation.sketch_size


def _matched_delays(verifier: Verifier, path: HOPPath, domain: str) -> np.ndarray:
    """The domain's matched ingress/egress delay samples on one path."""
    hops = path.hops_of(domain)
    if len(hops) < 2:
        return np.empty(0, dtype=np.float64)
    ingress = verifier.sample_receipt_for(hops[0].hop_id)
    egress = verifier.sample_receipt_for(hops[-1].hop_id)
    if ingress is None or egress is None:
        return np.empty(0, dtype=np.float64)
    return match_sample_delays(ingress, egress)


def _performance_from(
    domain: str,
    delays: np.ndarray,
    quantiles: Sequence[float],
    offered: int,
    lost: int,
) -> DomainPerformance:
    """A synthetic performance view over pooled samples (for SLA checking)."""
    estimates: dict[float, DelayQuantileEstimate] = {}
    if len(delays):
        estimates = estimate_delay_quantiles(delays, quantiles)
    return DomainPerformance(
        domain=domain,
        delay_quantiles=estimates,
        delay_sample_count=int(len(delays)),
        offered_packets=int(offered),
        lost_packets=int(lost),
    )


def _quantile_payload(
    delays: np.ndarray, quantiles: Sequence[float]
) -> dict[str, dict[str, float]]:
    if not len(delays):
        return {}
    estimates = estimate_delay_quantiles(delays, quantiles)
    return {
        repr(float(quantile)): {
            "estimate": entry.estimate,
            "lower": entry.lower,
            "upper": entry.upper,
        }
        for quantile, entry in sorted(estimates.items())
    }


class _IntervalOutcome(NamedTuple):
    """Per-domain raw material of one executed interval."""

    delays: dict[str, np.ndarray]
    offered: dict[str, int]
    lost: dict[str, int]
    accepted: dict[str, bool | None]
    receipts_digest: str
    result_digest: str


def _run_single_path_interval(
    cell: ExperimentSpec,
    policy: ExecutionPolicy,
    checkpoint_sink: Callable[[RunnerCheckpoint], None] | None = None,
    resume_from: RunnerCheckpoint | None = None,
) -> _IntervalOutcome:
    from repro.api.runner import run_cell_full

    run = run_cell_full(
        cell,
        policy=policy,
        checkpoint_sink=checkpoint_sink,
        resume_from=resume_from,
    )
    verifier = run.session.verifier_for(cell.estimation.observer)
    path = run.session.path
    delays: dict[str, np.ndarray] = {}
    offered: dict[str, int] = {}
    lost: dict[str, int] = {}
    accepted: dict[str, bool | None] = {}
    for target in cell.estimation.targets:
        entry = run.result.target(target)
        delays[target] = _matched_delays(verifier, path, target)
        offered[target] = entry.estimate.offered_packets
        lost[target] = entry.estimate.lost_packets
        accepted[target] = (
            entry.verification.accepted if entry.verification is not None else None
        )
    return _IntervalOutcome(
        delays=delays,
        offered=offered,
        lost=lost,
        accepted=accepted,
        receipts_digest=receipts_digest(run.reports),
        result_digest=hashlib.blake2b(
            run.result.to_json().encode("utf-8"), digest_size=16
        ).hexdigest(),
    )


def _run_mesh_interval(
    cell: MeshSpec,
    policy: ExecutionPolicy,
) -> _IntervalOutcome:
    from repro.api.runner import run_mesh_cell_full

    run = run_mesh_cell_full(cell, policy=policy)
    delays: dict[str, list[np.ndarray]] = {}
    offered: dict[str, int] = {}
    lost: dict[str, int] = {}
    accepted: dict[str, bool | None] = {}
    for index, path in enumerate(run.session.paths):
        observer = path.domains[0].name
        verifier = run.session.verifier_for(observer, path)
        path_result = run.result.paths[index]
        for domain, _, _ in path.domain_segments():
            name = domain.name
            entry = path_result.target(name)
            delays.setdefault(name, []).append(_matched_delays(verifier, path, name))
            offered[name] = offered.get(name, 0) + entry.estimate.offered_packets
            lost[name] = lost.get(name, 0) + entry.estimate.lost_packets
            # A domain is accepted this interval only if every crossing
            # path's verification accepted its receipts.
            path_accepted = (
                entry.verification.accepted if entry.verification is not None else None
            )
            if path_accepted is not None:
                previous = accepted.get(name)
                accepted[name] = (
                    path_accepted if previous is None else (previous and path_accepted)
                )
            else:
                accepted.setdefault(name, None)
    pooled = {
        name: np.concatenate(spans) if spans else np.empty(0, dtype=np.float64)
        for name, spans in delays.items()
    }
    return _IntervalOutcome(
        delays=pooled,
        offered=offered,
        lost=lost,
        accepted=accepted,
        receipts_digest=receipts_digest(run.reports),
        result_digest=hashlib.blake2b(
            run.result.to_json().encode("utf-8"), digest_size=16
        ).hexdigest(),
    )


def interval_record(
    spec: CampaignSpec,
    index: int,
    engine: str | None = None,
    shards: int = 1,
    chunk_size: int | None = None,
    policy: ExecutionPolicy | None = None,
    checkpoint_sink: Callable[[RunnerCheckpoint], None] | None = None,
    resume_from: RunnerCheckpoint | None = None,
) -> dict[str, Any]:
    """Execute interval ``index`` and build its store record.

    A pure function of ``(spec, index)`` — the execution knobs (individual
    keywords or one :class:`~repro.api.spec.ExecutionPolicy`) select an
    engine but cannot perturb the record (the engines are byte-identical and
    ``time_sum``, the one tolerant field, is canonicalized inside the
    receipts digest).  This purity is the whole checkpoint/resume story.
    ``checkpoint_sink`` / ``resume_from`` enable *mid-interval* streaming
    checkpoints (single-path cells, ``shards=1``): resuming from a sink-fed
    :class:`~repro.engine.streaming.RunnerCheckpoint` yields the identical
    record.
    """
    policy = ExecutionPolicy.coerce(
        policy, engine=engine, shards=shards, chunk_size=chunk_size
    )
    cell = spec.interval_cell(index)
    if isinstance(cell, MeshSpec):
        if checkpoint_sink is not None or resume_from is not None:
            raise ValueError(
                "mid-interval checkpointing applies to single-path streaming "
                "cells only; mesh campaigns checkpoint at interval boundaries"
            )
        outcome = _run_mesh_interval(cell, policy)
        quantiles = cell.quantiles
    else:
        outcome = _run_single_path_interval(
            cell, policy, checkpoint_sink=checkpoint_sink, resume_from=resume_from
        )
        quantiles = cell.estimation.quantiles

    mode, sketch_size = estimation_settings(cell)
    estimates: dict[str, Any] = {}
    verdicts: dict[str, Any] = {}
    delay_samples: dict[str, list[str]] = {}
    delay_sketch: dict[str, dict[str, Any]] = {}
    for domain in sorted(outcome.delays):
        delays = outcome.delays[domain]
        offered = outcome.offered[domain]
        lost = outcome.lost[domain]
        estimates[domain] = {
            "offered_packets": offered,
            "lost_packets": lost,
            "loss_rate": (lost / offered) if offered else 0.0,
            "delay_sample_count": int(len(delays)),
            "quantiles": _quantile_payload(delays, quantiles),
        }
        sla_compliant: bool | None = None
        if spec.sla is not None:
            performance = _performance_from(domain, delays, quantiles, offered, lost)
            sla_compliant = check_sla(performance, spec.sla.build()).compliant
        verdicts[domain] = {
            "accepted": outcome.accepted[domain],
            "sla_compliant": sla_compliant,
        }
        if mode == "sketch":
            delay_sketch[domain] = DelayQuantileSketch(
                sketch_size, delays
            ).to_state()
        else:
            delay_samples[domain] = [value.hex() for value in delays.tolist()]

    record: dict[str, Any] = {
        "version": RECORD_VERSION,
        "interval": index,
        "spec_hash": spec.spec_hash(),
        "seed": spec.interval_seed(index),
        "receipts_digest": outcome.receipts_digest,
        "result_digest": outcome.result_digest,
        "estimates": estimates,
        "verdicts": verdicts,
    }
    # Sketch-mode records carry O(sketch) bucket state instead of the raw
    # sample hex — the field name switch is what bounds record size.
    if mode == "sketch":
        record["delay_sketch"] = delay_sketch
    else:
        record["delay_samples"] = delay_samples
    return record


class CampaignAccumulator:
    """Campaign-level statistics folded incrementally from interval records.

    Pooled delay quantiles come from a per-domain
    :class:`~repro.analysis.quantiles.MergedDelayPool` — each record's
    samples merge into sorted state in linear time, never re-pooling past
    intervals.  The fold consumes *records* (not in-memory run objects), so a
    resumed campaign rebuilding its state from disk takes exactly the same
    path as an uninterrupted run and the final summary cannot diverge.
    """

    def __init__(self, spec: CampaignSpec) -> None:
        self.spec = spec
        self.mode, self.sketch_size = estimation_settings(spec.cell)
        self.pools: dict[str, MergedDelayPool | DelayQuantileSketch] = {}
        self.offered: dict[str, int] = {}
        self.lost: dict[str, int] = {}
        self.accepted_intervals: dict[str, int] = {}
        self.verified_intervals: dict[str, int] = {}
        self.intervals_folded = 0

    @property
    def quantiles(self) -> tuple[float, ...]:
        cell = self.spec.cell
        if isinstance(cell, MeshSpec):
            return cell.quantiles
        return cell.estimation.quantiles

    def _new_pool(self) -> MergedDelayPool | DelayQuantileSketch:
        if self.mode == "sketch":
            return DelayQuantileSketch(self.sketch_size)
        return MergedDelayPool()

    def fold(self, record: Mapping[str, Any]) -> None:
        """Fold one interval record (in interval order) into the campaign."""
        if record.get("interval") != self.intervals_folded:
            raise ValueError(
                f"expected record for interval {self.intervals_folded}, "
                f"got {record.get('interval')!r}"
            )
        for domain, estimate in record["estimates"].items():
            self.offered[domain] = (
                self.offered.get(domain, 0) + estimate["offered_packets"]
            )
            self.lost[domain] = self.lost.get(domain, 0) + estimate["lost_packets"]
            pool = self.pools.setdefault(domain, self._new_pool())
            if self.mode == "sketch":
                state = record.get("delay_sketch", {}).get(domain)
                if state is None:
                    raise ValueError(
                        f"sketch-mode campaign record for interval "
                        f"{record.get('interval')!r} carries no delay_sketch "
                        f"state for domain {domain!r} (was the store written "
                        f"by an exact-mode spec?)"
                    )
                pool.merge(DelayQuantileSketch.from_state(state))
            else:
                pool.extend(
                    [float.fromhex(value) for value in record["delay_samples"][domain]]
                )
            verdict = record["verdicts"][domain]
            if verdict["accepted"] is not None:
                self.verified_intervals[domain] = (
                    self.verified_intervals.get(domain, 0) + 1
                )
                if verdict["accepted"]:
                    self.accepted_intervals[domain] = (
                        self.accepted_intervals.get(domain, 0) + 1
                    )
        self.intervals_folded += 1

    @classmethod
    def from_records(
        cls, spec: CampaignSpec, records: Sequence[Mapping[str, Any]]
    ) -> "CampaignAccumulator":
        accumulator = cls(spec)
        for record in records:
            accumulator.fold(record)
        return accumulator

    def _sketch_estimates(
        self, pool: DelayQuantileSketch
    ) -> dict[float, DelayQuantileEstimate]:
        """Sketch quantiles as confidence-bounded estimates (for SLA checks).

        The lower/upper bounds are the sketch's guaranteed relative-error
        interval, so ``check_sla``'s optimistic-bound semantics carry over:
        a violation is flagged only when even the lower end of the guaranteed
        interval exceeds the promised bound.
        """
        estimates: dict[float, DelayQuantileEstimate] = {}
        for quantile, value in sorted(pool.quantiles(self.quantiles).items()):
            lower, upper = pool.value_bounds(value)
            estimates[quantile] = DelayQuantileEstimate(
                quantile=quantile,
                estimate=value,
                lower=lower,
                upper=upper,
                sample_count=len(pool),
            )
        return estimates

    def sla_verdict(self, domain: str) -> SLAVerdict | None:
        """The campaign-level SLA verdict for one domain (None without an SLA)."""
        if self.spec.sla is None:
            return None
        pool = self.pools.get(domain, self._new_pool())
        if self.mode == "sketch":
            performance = DomainPerformance(
                domain=domain,
                delay_quantiles=self._sketch_estimates(pool),
                delay_sample_count=len(pool),
                offered_packets=self.offered.get(domain, 0),
                lost_packets=self.lost.get(domain, 0),
            )
        else:
            performance = _performance_from(
                domain,
                np.asarray(pool.sorted_samples),
                self.quantiles,
                self.offered.get(domain, 0),
                self.lost.get(domain, 0),
            )
        return check_sla(performance, self.spec.sla.build())

    def summary(self) -> dict[str, Any]:
        """The campaign-level summary (a pure function of the folded records)."""
        domains: dict[str, Any] = {}
        for domain in sorted(self.pools):
            pool = self.pools[domain]
            offered = self.offered.get(domain, 0)
            lost = self.lost.get(domain, 0)
            verified = self.verified_intervals.get(domain, 0)
            accepted = self.accepted_intervals.get(domain, 0)
            verdict = self.sla_verdict(domain)
            if self.mode == "sketch":
                pooled_quantiles = {
                    repr(float(quantile)): {
                        "estimate": entry.estimate,
                        "lower": entry.lower,
                        "upper": entry.upper,
                        "relative_error_bound": pool.relative_accuracy,
                    }
                    for quantile, entry in sorted(
                        self._sketch_estimates(pool).items()
                    )
                }
            else:
                pooled_quantiles = _quantile_payload(
                    np.asarray(pool.sorted_samples), self.quantiles
                )
            domains[domain] = {
                "offered_packets": offered,
                "lost_packets": lost,
                "loss_rate": (lost / offered) if offered else 0.0,
                "delay_sample_count": len(pool),
                "pooled_quantiles": pooled_quantiles,
                "pool_digest": pool.state_digest(),
                "acceptance_rate": (accepted / verified) if verified else 1.0,
                "sla_compliant": verdict.compliant if verdict is not None else None,
            }
            # Sketch summaries annotate their precision so downstream
            # consumers (report, compare) are honest about the error bound;
            # exact summaries stay byte-identical to the pre-sketch format.
            if self.mode == "sketch":
                domains[domain]["estimation"] = {
                    "mode": "sketch",
                    "sketch_size": self.sketch_size,
                    "relative_error_bound": pool.relative_accuracy,
                    "bucket_count": pool.bucket_count,
                }
        return {
            "version": RECORD_VERSION,
            "spec_hash": self.spec.spec_hash(),
            "intervals": self.intervals_folded,
            "sla": self.spec.sla.to_dict() if self.spec.sla is not None else None,
            "domains": domains,
        }


class CampaignRunOutcome(NamedTuple):
    """What one :meth:`CampaignRunner.run` call achieved."""

    completed: bool
    intervals_run: int
    next_interval: int
    summary: dict[str, Any] | None


class CampaignRunner:
    """Drives a :class:`~repro.api.spec.CampaignSpec` with per-interval checkpoints.

    Parameters
    ----------
    spec:
        The campaign to run.  May be omitted when ``store`` holds one (the
        resume path); when both are given they must hash identically.
    store:
        The durable :class:`~repro.store.RunStore` to checkpoint into.  With
        ``store=None`` the runner keeps records in memory only (useful for
        programmatic one-shot campaigns and tests).
    engine, shards, chunk_size, policy:
        Execution-only knobs forwarded to every interval's cell run — either
        the individual keywords or one declarative
        :class:`~repro.api.spec.ExecutionPolicy` (not both); the stored
        records never depend on them.  A policy with ``checkpoint_every`` set
        (streaming, ``shards=1``, single-path cell, durable store) also
        persists *mid-interval* stream checkpoints to
        ``<store>/interval.ckpt``, so a kill inside a long interval resumes
        from the last chunk boundary instead of the interval's start; the
        finished store is byte-identical either way (the checkpoint file is
        removed when its interval commits).
    """

    #: Mid-interval checkpoint file, inside the run store directory.
    CHECKPOINT_NAME = "interval.ckpt"

    def __init__(
        self,
        spec: CampaignSpec | None = None,
        store: RunStore | None = None,
        engine: str | None = None,
        shards: int = 1,
        chunk_size: int | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        if spec is None and store is None:
            raise ValueError("CampaignRunner needs a spec, a store, or both")
        if store is not None and spec is not None:
            store.validate_spec(spec)
        if store is not None:
            # The runner is the store's (single) writer: drop any tail a
            # previous life's kill left mid-append before continuing.
            store.repair_torn_tail()
        self.spec = spec if spec is not None else store.spec()
        self.store = store
        self.policy = ExecutionPolicy.coerce(
            policy, engine=engine, shards=shards, chunk_size=chunk_size
        )
        # Resolve against the cell eagerly: impossible combinations (mesh +
        # scalar, checkpoint_every off the streaming engine) die here, not
        # forty intervals into a soak run.
        self._bound = self.policy.bind(self.spec.cell)
        if self._bound.checkpoint_every is not None and isinstance(
            self.spec.cell, MeshSpec
        ):  # pragma: no cover - bind() already rejects this
            raise ValueError("mid-interval checkpointing needs a single-path cell")
        self._memory_records: list[dict[str, Any]] = []
        self._event_sink: Callable[[CampaignEvent], None] | None = None
        existing = store.records() if store is not None else []
        self.accumulator = CampaignAccumulator.from_records(self.spec, existing)

    # Back-compat views of the policy (the pre-policy constructor surface).
    @property
    def engine(self) -> str | None:
        return self.policy.engine

    @property
    def shards(self) -> int:
        return self.policy.shards

    @property
    def chunk_size(self) -> int | None:
        return self.policy.chunk_size

    @classmethod
    def resume(
        cls,
        store: RunStore | str,
        engine: str | None = None,
        shards: int = 1,
        chunk_size: int | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> "CampaignRunner":
        """Reopen a store and continue from its last completed interval.

        The store's spec hash is re-validated on open; the accumulated
        campaign state is rebuilt by folding the persisted records, so the
        eventual summary is byte-identical to an uninterrupted run's.  If the
        killed run left a compatible mid-interval checkpoint, the next
        interval picks up at its chunk boundary.
        """
        if not isinstance(store, RunStore):
            store = RunStore.open(store)
        return cls(
            spec=None,
            store=store,
            engine=engine,
            shards=shards,
            chunk_size=chunk_size,
            policy=policy,
        )

    # -- mid-interval checkpoints ------------------------------------------------------

    @property
    def _checkpoint_path(self) -> Path | None:
        if self.store is None:
            return None
        return Path(self.store.path) / self.CHECKPOINT_NAME

    def _clear_interval_checkpoint(self) -> None:
        path = self._checkpoint_path
        if path is not None:
            path.unlink(missing_ok=True)

    def _load_interval_checkpoint(self, index: int) -> RunnerCheckpoint | None:
        """The persisted mid-interval checkpoint for ``index``, if compatible.

        Compatibility is strict — same spec hash, same interval, a streaming
        ``shards=1`` policy with the same chunk size — and anything else
        (including an unreadable file) discards the checkpoint and re-runs
        the interval from its start, which is always correct.
        """
        path = self._checkpoint_path
        if path is None or not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            checkpoint = payload["checkpoint"]
            compatible = (
                payload["spec_hash"] == self.spec.spec_hash()
                and payload["interval"] == index
                and isinstance(checkpoint, RunnerCheckpoint)
                and self._bound.engine == "streaming"
                and self._bound.shards == 1
                and checkpoint.chunk_size
                == (self._bound.chunk_size or DEFAULT_CHUNK_SIZE)
            )
        except Exception:
            compatible = False
        if not compatible:
            self._clear_interval_checkpoint()
            return None
        return checkpoint

    def _interval_checkpoint_sink(
        self, index: int
    ) -> Callable[[RunnerCheckpoint], None] | None:
        if self._bound.checkpoint_every is None or self.store is None:
            return None
        path = self._checkpoint_path
        spec_hash = self.spec.spec_hash()
        throttle = self.policy.throttle

        def sink(checkpoint: RunnerCheckpoint) -> None:
            payload = {
                "spec_hash": spec_hash,
                "interval": index,
                "checkpoint": checkpoint,
            }
            scratch = path.with_name(path.name + ".tmp")
            with open(scratch, "wb") as handle:
                pickle.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(scratch, path)
            self._emit(
                CheckpointWritten(
                    interval=index,
                    intervals=self.spec.intervals,
                    chunk_index=checkpoint.stream.chunk_index,
                )
            )
            if throttle > 0:
                # The checkpoint is durable; sleeping here gives a kill
                # signal a deterministic window at every chunk boundary.
                time.sleep(throttle)

        return sink

    # -- progress ----------------------------------------------------------------------

    @property
    def next_interval(self) -> int:
        return self.accumulator.intervals_folded

    @property
    def completed(self) -> bool:
        return self.next_interval >= self.spec.intervals

    def records(self) -> list[dict[str, Any]]:
        if self.store is not None:
            return self.store.records()
        return list(self._memory_records)

    # -- execution ---------------------------------------------------------------------

    def _emit(self, event: CampaignEvent) -> None:
        if self._event_sink is not None:
            self._event_sink(event)

    def run_interval(self, index: int) -> dict[str, Any]:
        """Execute one interval, persist its record, fold it; returns the record."""
        if index != self.next_interval:
            raise ValueError(
                f"intervals run strictly in order; next is {self.next_interval}, "
                f"got {index}"
            )
        record = interval_record(
            self.spec,
            index,
            policy=self.policy,
            checkpoint_sink=self._interval_checkpoint_sink(index),
            resume_from=self._load_interval_checkpoint(index),
        )
        if self.store is not None:
            self.store.append(record)
        # The interval is durably committed; its mid-interval checkpoint is
        # now stale (and must not survive into the finished store, which is
        # diffed byte-for-byte against uninterrupted runs).
        self._clear_interval_checkpoint()
        if self.store is None:
            self._memory_records.append(record)
        self.accumulator.fold(record)
        self._emit(
            IntervalCommitted(
                interval=index, intervals=self.spec.intervals, record=record
            )
        )
        return record

    def run(
        self,
        max_intervals: int | None = None,
        on_interval: Callable[[dict[str, Any]], None] | None = None,
        on_event: Callable[[CampaignEvent], None] | None = None,
    ) -> CampaignRunOutcome:
        """Run remaining intervals (up to ``max_intervals``) with checkpoints.

        On completion the campaign summary is written to the store.  The
        runner may be killed at any point; a later :meth:`resume` continues
        from the last completed interval.

        ``on_event`` receives the typed :data:`CampaignEvent` stream —
        :class:`IntervalCommitted` after each durable interval append,
        :class:`CheckpointWritten` at every persisted mid-interval chunk
        boundary, :class:`RunComplete` once the summary lands.  Every event
        fires *after* its state is durable, so a consumer that dies inside a
        handler never observes progress the store does not hold.
        ``on_interval`` is the older record-only hook and is equivalent to
        matching :class:`IntervalCommitted` and taking ``.record``.
        """
        if max_intervals is not None and max_intervals < 0:
            raise ValueError(f"max_intervals must be >= 0, got {max_intervals}")
        previous_sink = self._event_sink
        self._event_sink = on_event
        try:
            ran = 0
            while not self.completed:
                if max_intervals is not None and ran >= max_intervals:
                    break
                record = self.run_interval(self.next_interval)
                ran += 1
                if on_interval is not None:
                    on_interval(record)
            summary = None
            if self.completed:
                summary = self.accumulator.summary()
                if self.store is not None and self.store.summary() != summary:
                    self.store.write_summary(summary)
                self._emit(
                    RunComplete(intervals=self.spec.intervals, summary=summary)
                )
        finally:
            self._event_sink = previous_sink
        return CampaignRunOutcome(
            completed=self.completed,
            intervals_run=ran,
            next_interval=self.next_interval,
            summary=summary,
        )

    def summary(self) -> dict[str, Any]:
        """The campaign summary over the intervals folded so far."""
        return self.accumulator.summary()
