"""Mesh execution: N paths over one topology, batch or chunked/sharded.

Two engines drive a :class:`~repro.simulation.mesh.MeshScenario`:

* :func:`run_mesh_batch` materializes every path's whole trace, propagates it
  (:meth:`MeshScenario.run_batch`), and feeds each HOP's merged observation
  union to the session's collectors in one call;
* :class:`MeshRunner` streams all paths *in lockstep*, one trace chunk per
  path per round, pushing each path's chunk through its own
  :class:`~repro.engine.streaming.ScenarioStream` and feeding each HOP the
  chunk-wise timestamp-merged union.  ``shards=N`` splits the chunk-index
  range across a process pool exactly as the single-path streaming engine
  does: the coordinator runs a cheap propagation-plan pass over all paths,
  captures one :class:`~repro.engine.checkpoint.StreamCheckpoint` per path at
  each shard boundary, and workers seek every path stream straight to their
  span (zero prefix replay), merging per-shard collector states in stream
  order (:meth:`~repro.core.hop.HOPCollector.merge` handles multi-path
  state).

Both engines leave every collector in bit-identical state: per-path collector
state depends only on that path's sub-stream (in its own time order), which
both the whole-run merge and the chunk-wise merges preserve — so receipts,
estimates, verdicts and triangulation byte-match across engines and shard
counts (``time_sum`` at its documented tolerance), which the mesh conformance
suite asserts.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, NamedTuple, Sequence

import numpy as np

from repro.core.hop import HOPCollector, HOPReport
from repro.core.protocol import MeshSession
from repro.engine.checkpoint import StreamCheckpoint
from repro.engine.streaming import (
    DEFAULT_CHUNK_SIZE,
    ScenarioStream,
    StreamingTruth,
    _collectors_by_hop,
    _merge_shard_states,
    _session_digesters,
    _shard_bounds,
)
from repro.net.batch import PacketBatch
from repro.net.topology import Domain
from repro.simulation.mesh import MeshObservation, MeshScenario, merge_hop_streams
from repro.traffic.trace import SyntheticTrace

__all__ = ["MeshCell", "MeshRunner", "MeshStreamingResult", "run_mesh_batch"]


class MeshCell(NamedTuple):
    """Everything one mesh run needs: scenario, one trace per path, session."""

    scenario: MeshScenario
    traces: tuple[SyntheticTrace, ...]
    session: MeshSession


@dataclass
class MeshStreamingResult:
    """Everything a streaming mesh run produced.

    ``path_truth[i]`` maps domain name to that domain's
    :class:`~repro.engine.streaming.StreamingTruth` on path ``i`` — the same
    read API as the batch engine's per-path ground truth, and elementwise
    identical delay/loss values.
    """

    reports: dict[int, HOPReport]
    session: MeshSession
    path_truth: tuple[dict[str, StreamingTruth], ...]
    chunk_size: int
    shards: int
    chunks: int
    #: Chunk rounds each shard actually evaluated, in shard order (span
    #: sizes — zero prefix replay); ``(chunks,)`` for a single-process run.
    shard_chunks: tuple[int, ...] = ()

    def truth_for(self, path_index: int, domain: Domain | str) -> StreamingTruth:
        name = domain.name if isinstance(domain, Domain) else domain
        return self.path_truth[path_index][name]


def run_mesh_batch(cell: MeshCell) -> MeshObservation:
    """Drive a mesh cell through the batch engine (observe + report)."""
    batches = [trace.packet_batch() for trace in cell.traces]
    observation = cell.scenario.run_batch(batches)
    cell.session.run(observation)
    return observation


def _total_chunks(traces: Sequence[SyntheticTrace], chunk_size: int) -> int:
    return max(
        -(-trace.config.packet_count // chunk_size) for trace in traces
    )


def _feed_merged(
    collectors: dict[int, HOPCollector],
    per_path_emissions: Iterable[list[tuple[int, PacketBatch, np.ndarray]]],
) -> None:
    """Merge one round's emissions across paths per HOP and feed collectors."""
    spans_by_hop: dict[int, list[tuple[PacketBatch, np.ndarray]]] = {}
    for emissions in per_path_emissions:
        for hop_id, batch, times in emissions:
            if len(batch):
                spans_by_hop.setdefault(hop_id, []).append((batch, times))
    for hop_id, spans in spans_by_hop.items():
        collector = collectors.get(hop_id)
        if collector is None:
            continue
        batch, times = merge_hop_streams(spans)
        collector.observe_batch(batch, times)


def _advance_round(
    streams: Sequence[ScenarioStream], iterators: Sequence, flush: bool = False
) -> list[list[tuple[int, PacketBatch, np.ndarray]]]:
    """Push one chunk per path (or flush every stream) and gather emissions."""
    per_path: list[list[tuple[int, PacketBatch, np.ndarray]]] = []
    for stream, iterator in zip(streams, iterators):
        if flush:
            per_path.append(stream.flush())
            continue
        chunk = next(iterator, None)
        per_path.append(stream.push(chunk) if chunk is not None else [])
    return per_path


def _run_mesh_shard(
    setup: Callable[[], MeshCell],
    chunk_size: int,
    start: int,
    stop: int,
    checkpoints: tuple[StreamCheckpoint, ...] | None,
    flush: bool,
) -> tuple[dict[int, HOPCollector], int]:
    """Worker entry point: rebuild the mesh cell, seek every path's stream to
    this shard's round boundary, feed exactly rounds ``[start, stop)``, and
    return the collector states plus the rounds actually evaluated.

    The chunk index is synchronized across paths, so a shard's span covers a
    contiguous sub-stream of *every* path — exactly what stream-order
    collector merging requires.  Paths shorter than ``start`` chunks arrive
    exhausted (their checkpoint already sits at their end of stream) and
    contribute nothing until the flush.
    """
    cell = setup()
    collectors = _collectors_by_hop(cell.session)
    digesters = _session_digesters(cell.session)
    streams = [
        ScenarioStream(scenario, collect_truth=False, predigest=digesters)
        for scenario in cell.scenario.path_scenarios
    ]
    if checkpoints is not None:
        for stream, checkpoint in zip(streams, checkpoints):
            stream.seek(checkpoint)
    iterators = [
        trace.iter_batches(chunk_size, start_chunk=start) for trace in cell.traces
    ]
    evaluated = 0
    for _ in range(start, stop):
        _feed_merged(collectors, _advance_round(streams, iterators))
        evaluated += 1
    if flush:
        _feed_merged(collectors, _advance_round(streams, iterators, flush=True))
    return collectors, evaluated


class MeshRunner:
    """Drives a mesh measurement interval chunk-by-chunk, optionally sharded.

    Mirrors :class:`~repro.engine.streaming.StreamingRunner`: ``setup`` is a
    ready :class:`MeshCell` or a picklable zero-argument callable returning
    one (required for ``shards > 1``).  The coordinator runs one cheap
    propagation-plan pass over all paths in lockstep (truth included, nothing
    hashed), captures per-path checkpoints at each shard's round boundary,
    and dispatches shards to a process pool as soon as their checkpoints
    exist; workers seek to their boundary and evaluate only their own span.
    Collector states merge in stream order — receipt-identical to
    ``shards=1``, which is receipt-identical to the batch engine.
    """

    def __init__(
        self,
        setup: MeshCell | Callable[[], MeshCell],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        shards: int = 1,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards > 1 and not callable(setup):
            raise ValueError(
                "shards > 1 needs a picklable zero-argument setup callable so "
                "worker processes can rebuild the mesh cell"
            )
        self._setup = setup
        self.chunk_size = int(chunk_size)
        self.shards = int(shards)

    def run(self) -> MeshStreamingResult:
        cell = self._setup() if callable(self._setup) else self._setup
        total_chunks = _total_chunks(cell.traces, self.chunk_size)
        if self.shards == 1:
            return self._run_single(cell, total_chunks)
        return self._run_sharded(cell, total_chunks)

    def _run_single(self, cell: MeshCell, total_chunks: int) -> MeshStreamingResult:
        collectors = _collectors_by_hop(cell.session)
        digesters = _session_digesters(cell.session)
        streams = [
            ScenarioStream(scenario, collect_truth=True, predigest=digesters)
            for scenario in cell.scenario.path_scenarios
        ]
        iterators = [trace.iter_batches(self.chunk_size) for trace in cell.traces]
        for _ in range(total_chunks):
            _feed_merged(collectors, _advance_round(streams, iterators))
        _feed_merged(collectors, _advance_round(streams, iterators, flush=True))
        reports = cell.session.collect_reports()
        return MeshStreamingResult(
            reports=reports,
            session=cell.session,
            path_truth=tuple(stream.domain_truth for stream in streams),
            chunk_size=self.chunk_size,
            shards=1,
            chunks=total_chunks,
            shard_chunks=(total_chunks,),
        )

    def _run_sharded(self, cell: MeshCell, total_chunks: int) -> MeshStreamingResult:
        bounds = _shard_bounds(total_chunks, self.shards)
        plan_streams = [
            ScenarioStream(scenario, collect_truth=True, predigest=())
            for scenario in cell.scenario.path_scenarios
        ]
        iterators = [trace.iter_batches(self.chunk_size) for trace in cell.traces]
        futures: list = [None] * self.shards
        with ProcessPoolExecutor(max_workers=self.shards) as pool:

            def dispatch(
                shard: int, checkpoints: tuple[StreamCheckpoint, ...] | None
            ) -> None:
                futures[shard] = pool.submit(
                    _run_mesh_shard,
                    self._setup,
                    self.chunk_size,
                    bounds[shard],
                    bounds[shard + 1],
                    checkpoints,
                    shard == self.shards - 1,
                )

            dispatch(0, None)
            next_shard = 1
            for round_index in range(total_chunks):
                _advance_round(plan_streams, iterators)
                while (
                    next_shard < self.shards
                    and round_index + 1 == bounds[next_shard]
                ):
                    dispatch(
                        next_shard,
                        tuple(stream.checkpoint() for stream in plan_streams),
                    )
                    next_shard += 1
            while next_shard < self.shards:
                dispatch(
                    next_shard,
                    tuple(stream.checkpoint() for stream in plan_streams),
                )
                next_shard += 1
            # Flush only after every checkpoint is captured, so held-back
            # packets complete the downstream domains' ground truth without
            # perturbing the dispatched propagation states.
            _advance_round(plan_streams, iterators, flush=True)
            shard_results = [future.result() for future in futures]

        _merge_shard_states([state for state, _ in shard_results], cell.session)
        reports = cell.session.collect_reports()
        return MeshStreamingResult(
            reports=reports,
            session=cell.session,
            path_truth=tuple(stream.domain_truth for stream in plan_streams),
            chunk_size=self.chunk_size,
            shards=self.shards,
            chunks=total_chunks,
            shard_chunks=tuple(evaluated for _, evaluated in shard_results),
        )
