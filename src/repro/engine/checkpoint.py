"""Seekable propagation state for the streaming engine.

A :class:`StreamCheckpoint` freezes everything a
:class:`~repro.engine.streaming.ScenarioStream` needs to resume mid-stream
bit-identically at a chunk boundary:

* every propagation model's position in its random stream (delay jitter,
  loss-chain state, reordering draws, link jitter/loss, clock jitter) — via
  the components' ``state_snapshot`` contract
  (:class:`~repro.util.rng.RNGStateMixin`);
* the :class:`~repro.traffic.delay_models.EmpiricalDelayModel` replay cursor
  and the Gilbert-Elliott Markov state (the models include them in their
  snapshots);
* the in-flight holdback of every watermark sorter (egress ordering, bounded
  reordering, link skew) — packets that have been perturbed past the current
  watermark but not yet emitted;
* the stream's watermark, chunk position, zero-row template batch, and the
  per-link lost-``uid`` sets;
* optionally (``include_truth=True``) the ground-truth accumulators, for
  checkpoints that must restore a truth-collecting stream (mid-interval
  campaign resume) rather than just plan a shard start.

``state_digest()`` canonically hashes the *propagation* state (not the
optional truth payload), so two streams that would produce identical futures
digest identically — the property the checkpoint/seek test suite pins down.

Checkpoints are plain picklable values: the sharded runners ship them to
worker processes, and the campaign engine persists one next to its
:class:`~repro.store.runstore.RunStore` records for mid-interval resume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.net.batch import PacketBatch

__all__ = ["StreamCheckpoint"]

#: Column order used when folding a PacketBatch into the digest.
_BATCH_COLUMNS = (
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
    "ip_id",
    "length",
    "payload",
    "uid",
    "send_time",
    "flow_id",
)


def _fold(hasher: "hashlib._Hash", value: Any) -> None:
    """Fold ``value`` into ``hasher`` canonically.

    Every container type is folded with a type tag and length so distinct
    structures never collide by concatenation; mappings fold in sorted key
    order so dict insertion order is irrelevant; floats fold as their exact
    hex form so the digest is bit-sensitive, matching the engine's
    bit-identity contract.
    """
    if value is None:
        hasher.update(b"N")
    elif isinstance(value, bool):
        hasher.update(b"B1" if value else b"B0")
    elif isinstance(value, (int, np.integer)):
        hasher.update(b"I" + repr(int(value)).encode())
    elif isinstance(value, (float, np.floating)):
        hasher.update(b"F" + float(value).hex().encode())
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        hasher.update(b"S" + repr(len(encoded)).encode())
        hasher.update(encoded)
    elif isinstance(value, bytes):
        hasher.update(b"Y" + repr(len(value)).encode())
        hasher.update(value)
    elif isinstance(value, np.ndarray):
        hasher.update(b"A" + value.dtype.str.encode() + repr(value.shape).encode())
        hasher.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, PacketBatch):
        hasher.update(b"P")
        for column in _BATCH_COLUMNS:
            _fold(hasher, getattr(value, column))
    elif isinstance(value, Mapping):
        hasher.update(b"M" + repr(len(value)).encode())
        for key in sorted(value):
            _fold(hasher, key)
            _fold(hasher, value[key])
    elif isinstance(value, (list, tuple)):
        hasher.update(b"L" + repr(len(value)).encode())
        for item in value:
            _fold(hasher, item)
    elif isinstance(value, (set, frozenset)):
        hasher.update(b"T" + repr(len(value)).encode())
        for item in sorted(value):
            _fold(hasher, item)
    else:
        raise TypeError(f"cannot fold {type(value).__name__} into a state digest")


@dataclass(frozen=True)
class StreamCheckpoint:
    """The complete propagation state of a scenario stream at a chunk boundary.

    Attributes
    ----------
    chunk_index:
        How many (non-empty) chunks the stream has consumed; the chunk a
        seeked stream processes next.
    watermark:
        The stream's completeness watermark (the last chunk's final send
        time), ``-inf`` before the first chunk.
    template:
        A zero-row batch with the trace's column schema, used to synthesize
        the flush batch; ``None`` before the first chunk.
    stages:
        One snapshot mapping per pipeline stage, in path order (domain
        stages and link stages interleaved exactly as the stream builds
        them).
    clocks:
        One snapshot mapping per path hop, in hop order.
    truth:
        Ground-truth accumulator snapshots (``include_truth=True`` only);
        never part of :meth:`state_digest`.
    """

    chunk_index: int
    watermark: float
    template: PacketBatch | None
    stages: tuple[dict, ...]
    clocks: tuple[dict, ...]
    truth: dict | None = field(default=None, compare=False)

    def state_digest(self) -> str:
        """A canonical BLAKE2b digest of the propagation state.

        Two checkpoints digest equal iff the streams they were captured from
        are in bit-identical propagation states — same RNG cursors, same
        holdbacks, same watermark/position.  The optional truth payload is
        excluded: truth is an *output* accumulator, not propagation state.
        """
        hasher = hashlib.blake2b(digest_size=16)
        _fold(hasher, self.chunk_index)
        _fold(hasher, self.watermark)
        _fold(hasher, self.template)
        _fold(hasher, list(self.stages))
        _fold(hasher, list(self.clocks))
        return hasher.hexdigest()
