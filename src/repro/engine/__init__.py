"""Execution engines for driving scenarios at scale.

The scalar and batch engines live with the scenario
(:meth:`repro.simulation.scenario.PathScenario.run` / ``run_batch``) and
materialize every HOP's whole observation stream.  This package adds the
third engine: **streaming** execution
(:class:`~repro.engine.streaming.StreamingRunner`), which drives a scenario
chunk-by-chunk in ``O(chunk)`` memory and optionally splits the stream across
a process pool (``shards=N``), merging the per-shard collector states exactly
(:meth:`repro.core.hop.HOPCollector.merge`).

All three engines produce identical receipts and results for every streamable
component (see ``README.md`` § Engines); the only documented difference is
``AggregateReceipt.time_sum``, whose float accumulation order varies.
"""

from repro.engine.mesh import (
    MeshCell,
    MeshRunner,
    MeshStreamingResult,
    run_mesh_batch,
)
from repro.engine.streaming import (
    DEFAULT_CHUNK_SIZE,
    ScenarioStream,
    StreamingCell,
    StreamingResult,
    StreamingRunner,
    StreamingTruth,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "MeshCell",
    "MeshRunner",
    "MeshStreamingResult",
    "ScenarioStream",
    "StreamingCell",
    "StreamingResult",
    "StreamingRunner",
    "StreamingTruth",
    "run_mesh_batch",
]
