"""Execution engines for driving scenarios at scale.

The scalar and batch engines live with the scenario
(:meth:`repro.simulation.scenario.PathScenario.run` / ``run_batch``) and
materialize every HOP's whole observation stream.  This package adds the
third engine: **streaming** execution
(:class:`~repro.engine.streaming.StreamingRunner`), which drives a scenario
chunk-by-chunk in ``O(chunk)`` memory and optionally splits the stream across
a process pool (``shards=N``), merging the per-shard collector states exactly
(:meth:`repro.core.hop.HOPCollector.merge`).  Sharding is *seek-based*: the
coordinator's cheap propagation-plan pass captures a
:class:`~repro.engine.checkpoint.StreamCheckpoint` at every shard boundary
and each worker seeks straight to its chunk span — zero prefix replay.

All three engines produce identical receipts and results for every streamable
component (see ``README.md`` § Engines); the only documented difference is
``AggregateReceipt.time_sum``, whose float accumulation order varies.

On top of the per-interval engines,
:class:`~repro.engine.campaign.CampaignRunner` drives long-horizon campaigns
— one cell run per interval on any of the engines — checkpointing every
interval into a :class:`repro.store.RunStore` so a killed campaign resumes
byte-identically.
"""

from repro.engine.campaign import (
    CampaignAccumulator,
    CampaignEvent,
    CampaignRunner,
    CampaignRunOutcome,
    CheckpointWritten,
    IntervalCommitted,
    RunComplete,
    interval_record,
)
from repro.engine.checkpoint import StreamCheckpoint
from repro.engine.mesh import (
    MeshCell,
    MeshRunner,
    MeshStreamingResult,
    run_mesh_batch,
)
from repro.engine.streaming import (
    DEFAULT_CHUNK_SIZE,
    RunnerCheckpoint,
    ScenarioStream,
    StreamingCell,
    StreamingResult,
    StreamingRunner,
    StreamingTruth,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "CampaignAccumulator",
    "CampaignEvent",
    "CampaignRunOutcome",
    "CampaignRunner",
    "CheckpointWritten",
    "IntervalCommitted",
    "MeshCell",
    "MeshRunner",
    "MeshStreamingResult",
    "RunComplete",
    "RunnerCheckpoint",
    "ScenarioStream",
    "StreamCheckpoint",
    "StreamingCell",
    "StreamingResult",
    "StreamingRunner",
    "StreamingTruth",
    "interval_record",
    "run_mesh_batch",
]
