"""Chunked, shard-parallel scenario execution with exact batch-engine parity.

The batch engine (:meth:`repro.simulation.scenario.PathScenario.run_batch`)
materializes every HOP's whole observation stream; at tens of millions of
packets that costs multiple gigabytes.  This module drives the *same*
simulation as a stream:

* :class:`ScenarioStream` pushes one trace chunk at a time through the path.
  Each propagation stage (domain segment, inter-domain link) applies its
  models to the chunk — consuming every model's RNG in exactly the order the
  whole-batch run would — and holds packets back in a small sort buffer until
  the **watermark** (the last source send time seen) guarantees no future
  packet can precede them.  Emissions at every HOP are therefore the
  whole-run observation stream, delivered incrementally, bit-for-bit.

* :class:`StreamingRunner` feeds those emissions to the VPM collectors
  chunk-by-chunk (single process), or splits the chunk index range across a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``shards=N``) and merges
  the per-shard collector states exactly
  (:meth:`repro.core.hop.HOPCollector.merge`), so a sharded run's receipts
  equal the single-process run's.

Exactness contract: every component must be *streamable* — delay and loss
models declare it (:attr:`repro.traffic.delay_models.DelayModel.streamable`),
reordering models expose a sequential :meth:`perturb` with non-negative
offsets.  Non-streamable components (``CongestionDelayModel``, which
simulates the whole arrival series per call) are rejected with a clear error;
run those under the batch engine.  The one documented deviation is
``AggregateReceipt.time_sum`` (float accumulation order, as with scalar vs
batch).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, NamedTuple, Sequence

import numpy as np

from repro.core.hop import HOPCollector, HOPReport
from repro.core.protocol import VPMSession
from repro.net.batch import PacketBatch
from repro.net.hashing import PacketDigester
from repro.net.topology import HOP, Domain
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.trace import SyntheticTrace

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ScenarioStream",
    "StreamingCell",
    "StreamingResult",
    "StreamingRunner",
    "StreamingTruth",
]

# Large enough to amortize numpy dispatch, small enough that per-chunk
# working state stays comfortably in cache-friendly territory.
DEFAULT_CHUNK_SIZE = 1 << 18


class StreamingCell(NamedTuple):
    """Everything one streaming run needs: scenario, trace, VPM session."""

    scenario: PathScenario
    trace: SyntheticTrace
    session: VPMSession


@dataclass
class StreamingTruth:
    """Ground truth of one domain, accumulated chunk-by-chunk.

    Stores per-chunk true-delay arrays plus loss/delivery counts — the pieces
    result summaries actually consume — instead of the full per-uid maps the
    batch engine keeps, so memory stays proportional to delivered packets
    (one float each) rather than three columns.  The accessors mirror
    :class:`repro.simulation.scenario.BatchDomainTruth`, and the delay values
    are elementwise identical to the batch engine's, so quantiles match
    exactly.
    """

    domain: str
    lost_packets: int = 0
    delivered_packets: int = 0
    _delay_chunks: list[np.ndarray] = field(default_factory=list)
    _delays: np.ndarray | None = None

    def record(self, ingress_times: np.ndarray, egress_times: np.ndarray, lost: int) -> None:
        """Fold in one chunk's outcomes (delivered ingress/egress, lost count)."""
        if len(ingress_times):
            self._delay_chunks.append(egress_times - ingress_times)
            self._delays = None
        self.delivered_packets += len(ingress_times)
        self.lost_packets += lost

    @property
    def offered_packets(self) -> int:
        """Packets that entered the domain."""
        return self.delivered_packets + self.lost_packets

    @property
    def loss_rate(self) -> float:
        """True fraction of entering packets dropped inside the domain."""
        offered = self.offered_packets
        return self.lost_packets / offered if offered else 0.0

    @property
    def lost(self) -> range:
        """Sized stand-in for the dropped-packet set (only its length is used)."""
        return range(self.lost_packets)

    def delays(self) -> np.ndarray:
        """True per-packet delays of the packets the domain delivered."""
        if self._delays is None:
            self._delays = (
                np.concatenate(self._delay_chunks)
                if self._delay_chunks
                else np.empty(0, dtype=float)
            )
            self._delay_chunks = [self._delays] if len(self._delays) else []
        return self._delays

    def delay_quantiles(self, quantiles: Sequence[float]) -> dict[float, float]:
        """True delay quantiles of the delivered packets."""
        delays = self.delays()
        if delays.size == 0:
            return {quantile: 0.0 for quantile in quantiles}
        return {quantile: float(np.quantile(delays, quantile)) for quantile in quantiles}


class _StreamSorter:
    """Stable time-sort over an append-only stream, emitted up to a watermark.

    Rows are appended in arrival order with a sort key; :meth:`push` emits the
    stable-sorted prefix whose keys are ``<= watermark`` (the caller
    guarantees every future key exceeds the watermark) and holds the rest.
    The emitted concatenation across pushes equals one stable whole-stream
    argsort — including tie-breaks, because held rows stay ordered ahead of
    later arrivals.
    """

    def __init__(self) -> None:
        self._batch: PacketBatch | None = None
        self._keys: np.ndarray | None = None

    @property
    def pending(self) -> int:
        return 0 if self._keys is None else len(self._keys)

    def push(
        self, batch: PacketBatch, keys: np.ndarray, watermark: float
    ) -> tuple[PacketBatch, np.ndarray]:
        if self._batch is not None:
            if len(batch):
                batch = PacketBatch.concat([self._batch, batch])
                keys = np.concatenate([self._keys, keys])
            else:
                batch, keys = self._batch, self._keys
            self._batch = self._keys = None
        if len(batch) == 0:
            return batch, keys
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        cut = int(np.searchsorted(sorted_keys, watermark, side="right"))
        if cut < len(order):
            # Detach the held rows from their source chunk so a handful of
            # in-flight packets never pins a whole chunk (plus its digests).
            self._batch = batch.take(order[cut:]).detach_root()
            self._keys = sorted_keys[cut:]
        if cut == len(order) and np.array_equal(order, np.arange(len(order))):
            return batch, keys  # already sorted and fully emittable
        return batch.take(order[:cut]), sorted_keys[:cut]


class _DomainStage:
    """Streaming twin of ``PathScenario._traverse_domain_batch``."""

    def __init__(
        self,
        scenario: PathScenario,
        domain: Domain,
        condition: SegmentCondition,
        truth: StreamingTruth | None,
    ) -> None:
        self._scenario = scenario
        self._condition = condition
        self._truth = truth
        self._egress_sorter = _StreamSorter()
        self._reordering = condition.reordering
        self._reorder_sorter = (
            _StreamSorter() if self._reordering.max_lateness != 0.0 else None
        )

    def push(
        self, batch: PacketBatch, times: np.ndarray, watermark: float
    ) -> tuple[PacketBatch, np.ndarray]:
        if len(batch):
            lost, egress_times = self._scenario.domain_effects_batch(
                self._condition, batch, times
            )
            delivered = ~lost
            if self._truth is not None:
                self._truth.record(
                    times[delivered], egress_times[delivered], int(lost.sum())
                )
            survivors = np.flatnonzero(delivered)
            batch = batch.take(survivors)
            times = egress_times[survivors]
        # Natural reordering from variable delays, then any extra reordering —
        # the model's perturbation draws run in sorted-egress order, exactly
        # as one whole-stream ``reordering.apply`` would consume them.
        emitted, emitted_times = self._egress_sorter.push(batch, times, watermark)
        if self._reorder_sorter is None:
            return emitted, emitted_times
        perturbed = self._reordering.perturb(emitted_times)
        return self._reorder_sorter.push(emitted, perturbed, watermark)


class _LinkStage:
    """Streaming twin of ``PathScenario._traverse_link_batch``."""

    def __init__(self, link, key: tuple[int, int], losses: dict) -> None:
        self._link = link
        self._lost: set[int] = losses.setdefault(key, set())
        self._sorter = _StreamSorter()

    def push(
        self, batch: PacketBatch, times: np.ndarray, watermark: float
    ) -> tuple[PacketBatch, np.ndarray]:
        if len(batch):
            delivered, far_times = self._link.transfer_batch(times)
            if not delivered.all():
                self._lost.update(int(uid) for uid in batch.uid[~delivered])
                batch = batch.take(np.flatnonzero(delivered))
            times = far_times
        return self._sorter.push(batch, times, watermark)


class ScenarioStream:
    """Drives a :class:`PathScenario` chunk-by-chunk with exact parity.

    Push source chunks in send order (:meth:`push`), then :meth:`flush` once;
    each call returns the newly emitted ``(hop_id, batch, times)`` observation
    spans per HOP, whose concatenation over the whole run is bit-identical to
    :meth:`PathScenario.run_batch`'s per-HOP observations.  Memory is bounded
    by the chunk size plus the packets in flight inside delay/reorder
    holdback windows.

    ``predigest`` lists the packet digesters in play; each chunk is digested
    once up front so every downstream slice and splice reuses the cached
    values (the one-hash-per-packet property of the batch engine).
    """

    def __init__(
        self,
        scenario: PathScenario,
        collect_truth: bool = True,
        predigest: Sequence[PacketDigester] = (),
    ) -> None:
        check_scenario_streamable(scenario)
        self.scenario = scenario
        self.link_losses: dict[tuple[int, int], set[int]] = {}
        self.domain_truth: dict[str, StreamingTruth] = {}
        self._predigest = tuple(dict.fromkeys(predigest))
        self._watermark = -np.inf
        self._template: PacketBatch | None = None

        if collect_truth:
            for segment in scenario.path.domain_segments():
                name = segment[0].name
                self.domain_truth[name] = StreamingTruth(domain=name)

        self._stages: list[tuple[object, HOP]] = []
        hops = scenario.path.hops
        for index, hop in enumerate(hops[:-1]):
            next_hop = hops[index + 1]
            if hop.domain == next_hop.domain:
                stage = _DomainStage(
                    scenario,
                    hop.domain,
                    scenario.condition_for(hop.domain),
                    self.domain_truth.get(hop.domain.name),
                )
            else:
                link = scenario.topology.link_between(hop, next_hop)
                stage = _LinkStage(
                    link, (hop.hop_id, next_hop.hop_id), self.link_losses
                )
            self._stages.append((stage, next_hop))

    def push(self, chunk: PacketBatch) -> list[tuple[int, PacketBatch, np.ndarray]]:
        """Propagate one source chunk; return the emissions at every HOP."""
        if len(chunk) == 0:
            return []
        for digester in self._predigest:
            digester.digest_batch(chunk)
        self._template = chunk
        self._watermark = float(chunk.send_time[-1])
        return self._advance(chunk, chunk.send_time.copy(), self._watermark)

    def flush(self) -> list[tuple[int, PacketBatch, np.ndarray]]:
        """Drain every holdback buffer (end of stream)."""
        if self._template is None:
            return []
        empty = self._template.take(np.empty(0, dtype=np.int64))
        return self._advance(empty, np.empty(0, dtype=np.float64), np.inf)

    def _advance(
        self, batch: PacketBatch, times: np.ndarray, watermark: float
    ) -> list[tuple[int, PacketBatch, np.ndarray]]:
        source_hop = self.scenario.path.hops[0]
        emissions = [(source_hop.hop_id, batch, times)]
        current_batch, current_times = batch, times
        for stage, next_hop in self._stages:
            current_batch, current_times = stage.push(
                current_batch, current_times, watermark
            )
            emissions.append((next_hop.hop_id, current_batch, current_times))
        return emissions


def check_scenario_streamable(scenario: PathScenario) -> None:
    """Raise ``ValueError`` naming every component streaming cannot drive exactly."""
    problems: list[str] = []
    for segment in scenario.path.domain_segments():
        name = segment[0].name
        condition = scenario.condition_for(name)
        if not getattr(condition.delay_model, "streamable", False):
            problems.append(
                f"domain {name!r}: delay model "
                f"{type(condition.delay_model).__name__} is not streamable"
            )
        if not getattr(condition.loss_model, "streamable", False):
            problems.append(
                f"domain {name!r}: loss model "
                f"{type(condition.loss_model).__name__} is not streamable"
            )
        if getattr(condition.reordering, "max_lateness", None) is None:
            problems.append(
                f"domain {name!r}: reordering model "
                f"{type(condition.reordering).__name__} declares no max_lateness"
            )
    if problems:
        raise ValueError(
            "the streaming engine cannot reproduce this scenario exactly: "
            + "; ".join(problems)
            + " (use the batch engine, or make the component streamable)"
        )


@dataclass
class StreamingResult:
    """Everything a streaming run produced.

    ``truth_for``/``domain_truth`` mirror the batch observation's read API so
    result summarization code accepts either.  ``session`` is the (parent)
    VPM session whose bus now holds the published reports.
    """

    reports: dict[int, HOPReport]
    session: VPMSession
    domain_truth: dict[str, StreamingTruth]
    link_losses: dict[tuple[int, int], set[int]]
    chunk_size: int
    shards: int
    chunks: int

    def truth_for(self, domain: Domain | str) -> StreamingTruth:
        name = domain.name if isinstance(domain, Domain) else domain
        return self.domain_truth[name]


def _collectors_by_hop(session: VPMSession) -> dict[int, HOPCollector]:
    collectors: dict[int, HOPCollector] = {}
    for agent in session.agents.values():
        for hop_id in agent.hop_ids:
            collectors[hop_id] = agent.collector(hop_id)
    return collectors


def _session_digesters(session: VPMSession) -> list[PacketDigester]:
    return list(
        dict.fromkeys(
            agent.collector(hop_id).config.digester
            for agent in session.agents.values()
            for hop_id in agent.hop_ids
        )
    )


def _shard_bounds(total_chunks: int, shards: int) -> list[int]:
    return [shard * total_chunks // shards for shard in range(shards + 1)]


def _merge_shard_states(
    shard_states: list[dict[int, HOPCollector]],
    local_collectors: dict[int, HOPCollector],
    session,
) -> None:
    """Fold shard collector states in stream order and install the result.

    ``shard_states`` are the pool shards' collectors in shard (= stream)
    order; ``local_collectors`` belong to the calling process, which ran the
    last span, so they fold in last.  The merged collectors replace the
    session agents' — shared by the single-path and mesh runners so the
    merge discipline cannot drift between engines.
    """
    merged = shard_states[0]
    for state in shard_states[1:]:
        for hop_id, collector in merged.items():
            collector.merge(state[hop_id])
    for hop_id, collector in merged.items():
        collector.merge(local_collectors[hop_id])
    for agent in session.agents.values():
        for hop_id in agent.hop_ids:
            agent.replace_collector(hop_id, merged[hop_id])


def _feed(
    collectors: dict[int, HOPCollector],
    emissions: Iterable[tuple[int, PacketBatch, np.ndarray]],
) -> None:
    for hop_id, batch, times in emissions:
        collector = collectors.get(hop_id)
        if collector is not None and len(batch):
            collector.observe_batch(batch, times)


def _run_streaming_shard(
    setup: Callable[[], StreamingCell], chunk_size: int, shards: int, shard: int
) -> dict[int, HOPCollector]:
    """Worker entry point: rebuild the cell, replay the stream prefix, feed
    only this shard's chunk span, and return the collector states.

    Every shard rebuilds the identical deterministic cell and replays
    propagation from chunk 0 (model RNG streams are strictly sequential, so a
    shard cannot start mid-stream), but stops right after its own span — the
    expensive collector work (hashing, sampling, aggregation) is what gets
    split ``shards`` ways.
    """
    cell = setup()
    collectors = _collectors_by_hop(cell.session)
    stream = ScenarioStream(
        cell.scenario, collect_truth=False, predigest=_session_digesters(cell.session)
    )
    total_chunks = -(-cell.trace.config.packet_count // chunk_size)
    bounds = _shard_bounds(total_chunks, shards)
    start, stop = bounds[shard], bounds[shard + 1]
    for index, chunk in enumerate(cell.trace.iter_batches(chunk_size)):
        if index >= stop:
            break
        emissions = stream.push(chunk)
        if index >= start:
            _feed(collectors, emissions)
    return collectors


class StreamingRunner:
    """Drives a VPM measurement interval chunk-by-chunk, optionally sharded.

    Parameters
    ----------
    setup:
        Either a ready :class:`StreamingCell` or a zero-argument callable
        returning one.  With ``shards > 1`` it must be a *picklable* callable
        (worker processes rebuild the cell themselves — a cell is a pure
        function of its seeds, so every rebuild is identical).
    chunk_size:
        Trace packets per chunk; memory scales with this, results never
        depend on it.
    shards:
        Number of contiguous chunk spans processed in parallel.  Shard
        ``N-1`` runs in the calling process (it is the one that must replay
        the whole stream anyway and it accumulates ground truth); shards
        ``0..N-2`` run on a process pool, and their collector states are
        merged in stream order before reports are generated — byte-identical
        to ``shards=1``.

    :meth:`run` returns a :class:`StreamingResult`; afterwards the session's
    receipt bus holds the published reports, exactly as after
    :meth:`VPMSession.run`.
    """

    def __init__(
        self,
        setup: StreamingCell | Callable[[], StreamingCell],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        shards: int = 1,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards > 1 and not callable(setup):
            raise ValueError(
                "shards > 1 needs a picklable zero-argument setup callable so "
                "worker processes can rebuild the cell"
            )
        self._setup = setup
        self.chunk_size = int(chunk_size)
        self.shards = int(shards)

    def run(self) -> StreamingResult:
        cell = self._setup() if callable(self._setup) else self._setup
        futures = []
        pool = None
        if self.shards > 1:
            pool = ProcessPoolExecutor(max_workers=self.shards - 1)
            futures = [
                pool.submit(
                    _run_streaming_shard, self._setup, self.chunk_size, self.shards, shard
                )
                for shard in range(self.shards - 1)
            ]

        try:
            collectors = _collectors_by_hop(cell.session)
            stream = ScenarioStream(
                cell.scenario,
                collect_truth=True,
                predigest=_session_digesters(cell.session),
            )
            total_chunks = -(-cell.trace.config.packet_count // self.chunk_size)
            start = _shard_bounds(total_chunks, self.shards)[self.shards - 1]
            for index, chunk in enumerate(cell.trace.iter_batches(self.chunk_size)):
                emissions = stream.push(chunk)
                if index >= start:
                    _feed(collectors, emissions)
            _feed(collectors, stream.flush())

            if futures:
                _merge_shard_states(
                    [future.result() for future in futures], collectors, cell.session
                )
        finally:
            if pool is not None:
                pool.shutdown()

        reports = cell.session.collect_reports()
        return StreamingResult(
            reports=reports,
            session=cell.session,
            domain_truth=stream.domain_truth,
            link_losses=stream.link_losses,
            chunk_size=self.chunk_size,
            shards=self.shards,
            chunks=total_chunks,
        )
