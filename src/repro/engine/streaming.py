"""Chunked, shard-parallel scenario execution with exact batch-engine parity.

The batch engine (:meth:`repro.simulation.scenario.PathScenario.run_batch`)
materializes every HOP's whole observation stream; at tens of millions of
packets that costs multiple gigabytes.  This module drives the *same*
simulation as a stream:

* :class:`ScenarioStream` pushes one trace chunk at a time through the path.
  Each propagation stage (domain segment, inter-domain link) applies its
  models to the chunk — consuming every model's RNG in exactly the order the
  whole-batch run would — and holds packets back in a small sort buffer until
  the **watermark** (the last source send time seen) guarantees no future
  packet can precede them.  Emissions at every HOP are therefore the
  whole-run observation stream, delivered incrementally, bit-for-bit.

* :class:`ScenarioStream` is **seekable**: :meth:`ScenarioStream.checkpoint`
  freezes the complete propagation state at a chunk boundary (every model RNG
  cursor, every holdback buffer, the watermark) as a
  :class:`~repro.engine.checkpoint.StreamCheckpoint`, and
  :meth:`ScenarioStream.seek` restores a fresh stream to that point so it
  continues bit-identically — in another process, or in a later run.

* :class:`StreamingRunner` feeds those emissions to the VPM collectors
  chunk-by-chunk (single process), or splits the chunk index range across a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``shards=N``): the
  coordinator makes one cheap propagation-plan pass (no hashing, no
  collectors), captures a checkpoint at each shard boundary, and every worker
  seeks straight to its span — zero prefix replay.  Per-shard collector
  states are merged exactly (:meth:`repro.core.hop.HOPCollector.merge`), so a
  sharded run's receipts equal the single-process run's.

Exactness contract: every component must be *streamable* — delay and loss
models declare it (:attr:`repro.traffic.delay_models.DelayModel.streamable`),
reordering models expose a sequential :meth:`perturb` with non-negative
offsets.  Non-streamable components (``CongestionDelayModel``, which
simulates the whole arrival series per call) are rejected with a clear error;
run those under the batch engine.  The one documented deviation is
``AggregateReceipt.time_sum`` (float accumulation order, as with scalar vs
batch).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, NamedTuple, Sequence

import numpy as np

from repro.core.hop import HOPCollector, HOPReport
from repro.core.protocol import VPMSession
from repro.engine.checkpoint import StreamCheckpoint
from repro.net.batch import PacketBatch
from repro.net.hashing import PacketDigester
from repro.net.topology import HOP, Domain
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.trace import SyntheticTrace

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "RunnerCheckpoint",
    "ScenarioStream",
    "StreamingCell",
    "StreamingResult",
    "StreamingRunner",
    "StreamingTruth",
]

# Large enough to amortize numpy dispatch, small enough that per-chunk
# working state stays comfortably in cache-friendly territory.
DEFAULT_CHUNK_SIZE = 1 << 18


class StreamingCell(NamedTuple):
    """Everything one streaming run needs: scenario, trace, VPM session."""

    scenario: PathScenario
    trace: SyntheticTrace
    session: VPMSession


@dataclass
class StreamingTruth:
    """Ground truth of one domain, accumulated chunk-by-chunk.

    Stores per-chunk true-delay arrays plus loss/delivery counts — the pieces
    result summaries actually consume — instead of the full per-uid maps the
    batch engine keeps, so memory stays proportional to delivered packets
    (one float each) rather than three columns.  The accessors mirror
    :class:`repro.simulation.scenario.BatchDomainTruth`, and the delay values
    are elementwise identical to the batch engine's, so quantiles match
    exactly.
    """

    domain: str
    lost_packets: int = 0
    delivered_packets: int = 0
    _delay_chunks: list[np.ndarray] = field(default_factory=list)
    _delays: np.ndarray | None = None

    def record(self, ingress_times: np.ndarray, egress_times: np.ndarray, lost: int) -> None:
        """Fold in one chunk's outcomes (delivered ingress/egress, lost count)."""
        if len(ingress_times):
            self._delay_chunks.append(egress_times - ingress_times)
            self._delays = None
        self.delivered_packets += len(ingress_times)
        self.lost_packets += lost

    @property
    def offered_packets(self) -> int:
        """Packets that entered the domain."""
        return self.delivered_packets + self.lost_packets

    @property
    def loss_rate(self) -> float:
        """True fraction of entering packets dropped inside the domain."""
        offered = self.offered_packets
        return self.lost_packets / offered if offered else 0.0

    @property
    def lost(self) -> range:
        """Sized stand-in for the dropped-packet set (only its length is used)."""
        return range(self.lost_packets)

    def delays(self) -> np.ndarray:
        """True per-packet delays of the packets the domain delivered."""
        if self._delays is None:
            self._delays = (
                np.concatenate(self._delay_chunks)
                if self._delay_chunks
                else np.empty(0, dtype=float)
            )
            self._delay_chunks = [self._delays] if len(self._delays) else []
        return self._delays

    def delay_quantiles(self, quantiles: Sequence[float]) -> dict[float, float]:
        """True delay quantiles of the delivered packets."""
        delays = self.delays()
        if delays.size == 0:
            return {quantile: 0.0 for quantile in quantiles}
        return {quantile: float(np.quantile(delays, quantile)) for quantile in quantiles}

    def snapshot(self) -> dict:
        """A picklable snapshot of the accumulated ground truth."""
        return {
            "lost_packets": int(self.lost_packets),
            "delivered_packets": int(self.delivered_packets),
            "delays": self.delays().copy(),
        }

    def restore(self, state: dict) -> None:
        """Restore the accumulator to a :meth:`snapshot` (in place)."""
        self.lost_packets = int(state["lost_packets"])
        self.delivered_packets = int(state["delivered_packets"])
        delays = np.asarray(state["delays"], dtype=float)
        self._delay_chunks = [delays] if len(delays) else []
        self._delays = None


class _StreamSorter:
    """Stable time-sort over an append-only stream, emitted up to a watermark.

    Rows are appended in arrival order with a sort key; :meth:`push` emits the
    stable-sorted prefix whose keys are ``<= watermark`` (the caller
    guarantees every future key exceeds the watermark) and holds the rest.
    The emitted concatenation across pushes equals one stable whole-stream
    argsort — including tie-breaks, because held rows stay ordered ahead of
    later arrivals.
    """

    def __init__(self) -> None:
        self._batch: PacketBatch | None = None
        self._keys: np.ndarray | None = None

    @property
    def pending(self) -> int:
        return 0 if self._keys is None else len(self._keys)

    def push(
        self, batch: PacketBatch, keys: np.ndarray, watermark: float
    ) -> tuple[PacketBatch, np.ndarray]:
        if self._batch is not None:
            if len(batch):
                batch = PacketBatch.concat([self._batch, batch])
                keys = np.concatenate([self._keys, keys])
            else:
                batch, keys = self._batch, self._keys
            self._batch = self._keys = None
        if len(batch) == 0:
            return batch, keys
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        cut = int(np.searchsorted(sorted_keys, watermark, side="right"))
        if cut < len(order):
            # Detach the held rows from their source chunk so a handful of
            # in-flight packets never pins a whole chunk (plus its digests).
            self._batch = batch.take(order[cut:]).detach_root()
            self._keys = sorted_keys[cut:]
        if cut == len(order) and np.array_equal(order, np.arange(len(order))):
            return batch, keys  # already sorted and fully emittable
        return batch.take(order[:cut]), sorted_keys[:cut]

    def snapshot(self) -> dict:
        """The held rows and their keys (shared, never mutated in place)."""
        return {"batch": self._batch, "keys": self._keys}

    def restore(self, state: dict) -> None:
        self._batch = state["batch"]
        self._keys = state["keys"]


class _DomainStage:
    """Streaming twin of ``PathScenario._traverse_domain_batch``."""

    def __init__(
        self,
        scenario: PathScenario,
        domain: Domain,
        condition: SegmentCondition,
        truth: StreamingTruth | None,
    ) -> None:
        self._scenario = scenario
        self._condition = condition
        self._truth = truth
        self._egress_sorter = _StreamSorter()
        self._reordering = condition.reordering
        self._reorder_sorter = (
            _StreamSorter() if self._reordering.max_lateness != 0.0 else None
        )

    def push(
        self, batch: PacketBatch, times: np.ndarray, watermark: float
    ) -> tuple[PacketBatch, np.ndarray]:
        if len(batch):
            lost, egress_times = self._scenario.domain_effects_batch(
                self._condition, batch, times
            )
            delivered = ~lost
            if self._truth is not None:
                self._truth.record(
                    times[delivered], egress_times[delivered], int(lost.sum())
                )
            survivors = np.flatnonzero(delivered)
            batch = batch.take(survivors)
            times = egress_times[survivors]
        # Natural reordering from variable delays, then any extra reordering —
        # the model's perturbation draws run in sorted-egress order, exactly
        # as one whole-stream ``reordering.apply`` would consume them.
        emitted, emitted_times = self._egress_sorter.push(batch, times, watermark)
        if self._reorder_sorter is None:
            return emitted, emitted_times
        perturbed = self._reordering.perturb(emitted_times)
        return self._reorder_sorter.push(emitted, perturbed, watermark)

    def snapshot(self) -> dict:
        state = {
            "delay": self._condition.delay_model.state_snapshot(),
            "loss": self._condition.loss_model.state_snapshot(),
            "reordering": self._reordering.state_snapshot(),
            "egress": self._egress_sorter.snapshot(),
            "reorder": None,
        }
        if self._reorder_sorter is not None:
            state["reorder"] = self._reorder_sorter.snapshot()
        return state

    def restore(self, state: dict) -> None:
        self._condition.delay_model.state_restore(state["delay"])
        self._condition.loss_model.state_restore(state["loss"])
        self._reordering.state_restore(state["reordering"])
        self._egress_sorter.restore(state["egress"])
        if self._reorder_sorter is not None:
            self._reorder_sorter.restore(state["reorder"])


class _LinkStage:
    """Streaming twin of ``PathScenario._traverse_link_batch``."""

    def __init__(self, link, key: tuple[int, int], losses: dict) -> None:
        self._link = link
        self._lost: set[int] = losses.setdefault(key, set())
        self._sorter = _StreamSorter()

    def push(
        self, batch: PacketBatch, times: np.ndarray, watermark: float
    ) -> tuple[PacketBatch, np.ndarray]:
        if len(batch):
            delivered, far_times = self._link.transfer_batch(times)
            if not delivered.all():
                self._lost.update(int(uid) for uid in batch.uid[~delivered])
                batch = batch.take(np.flatnonzero(delivered))
            times = far_times
        return self._sorter.push(batch, times, watermark)

    def snapshot(self) -> dict:
        return {
            "link": self._link.state_snapshot(),
            "sorter": self._sorter.snapshot(),
            "lost": set(self._lost),
        }

    def restore(self, state: dict) -> None:
        self._link.state_restore(state["link"])
        self._sorter.restore(state["sorter"])
        # ``_lost`` aliases the stream's ``link_losses`` entry; mutate in
        # place so both views stay the same set object.
        self._lost.clear()
        self._lost.update(state["lost"])


class ScenarioStream:
    """Drives a :class:`PathScenario` chunk-by-chunk with exact parity.

    Push source chunks in send order (:meth:`push`), then :meth:`flush` once;
    each call returns the newly emitted ``(hop_id, batch, times)`` observation
    spans per HOP, whose concatenation over the whole run is bit-identical to
    :meth:`PathScenario.run_batch`'s per-HOP observations.  Memory is bounded
    by the chunk size plus the packets in flight inside delay/reorder
    holdback windows.

    ``predigest`` lists the packet digesters in play; each chunk is digested
    once up front so every downstream slice and splice reuses the cached
    values (the one-hash-per-packet property of the batch engine).
    """

    def __init__(
        self,
        scenario: PathScenario,
        collect_truth: bool = True,
        predigest: Sequence[PacketDigester] = (),
    ) -> None:
        check_scenario_streamable(scenario)
        self.scenario = scenario
        self.link_losses: dict[tuple[int, int], set[int]] = {}
        self.domain_truth: dict[str, StreamingTruth] = {}
        #: Chunks consumed so far — the chunk index the stream expects next.
        self.chunks_pushed = 0
        self._predigest = tuple(dict.fromkeys(predigest))
        self._watermark = -np.inf
        self._template: PacketBatch | None = None

        if collect_truth:
            for segment in scenario.path.domain_segments():
                name = segment[0].name
                self.domain_truth[name] = StreamingTruth(domain=name)

        self._stages: list[tuple[object, HOP]] = []
        hops = scenario.path.hops
        for index, hop in enumerate(hops[:-1]):
            next_hop = hops[index + 1]
            if hop.domain == next_hop.domain:
                stage = _DomainStage(
                    scenario,
                    hop.domain,
                    scenario.condition_for(hop.domain),
                    self.domain_truth.get(hop.domain.name),
                )
            else:
                link = scenario.topology.link_between(hop, next_hop)
                stage = _LinkStage(
                    link, (hop.hop_id, next_hop.hop_id), self.link_losses
                )
            self._stages.append((stage, next_hop))

    def push(self, chunk: PacketBatch) -> list[tuple[int, PacketBatch, np.ndarray]]:
        """Propagate one source chunk; return the emissions at every HOP."""
        if len(chunk) == 0:
            return []
        for digester in self._predigest:
            digester.digest_batch(chunk)
        self.chunks_pushed += 1
        self._template = chunk
        self._watermark = float(chunk.send_time[-1])
        return self._advance(chunk, chunk.send_time.copy(), self._watermark)

    def flush(self) -> list[tuple[int, PacketBatch, np.ndarray]]:
        """Drain every holdback buffer (end of stream)."""
        if self._template is None:
            return []
        empty = self._template.take(np.empty(0, dtype=np.int64))
        return self._advance(empty, np.empty(0, dtype=np.float64), np.inf)

    def _advance(
        self, batch: PacketBatch, times: np.ndarray, watermark: float
    ) -> list[tuple[int, PacketBatch, np.ndarray]]:
        source_hop = self.scenario.path.hops[0]
        emissions = [(source_hop.hop_id, batch, times)]
        current_batch, current_times = batch, times
        for stage, next_hop in self._stages:
            current_batch, current_times = stage.push(
                current_batch, current_times, watermark
            )
            emissions.append((next_hop.hop_id, current_batch, current_times))
        return emissions

    def checkpoint(self, include_truth: bool = False) -> StreamCheckpoint:
        """Freeze the complete propagation state at the current chunk boundary.

        The checkpoint is a plain picklable value; a fresh stream over the
        same scenario spec that :meth:`seek`\\ s to it continues the run
        bit-identically — same emissions, same holdback contents, same model
        draws.  ``include_truth`` additionally snapshots the ground-truth
        accumulators (needed when the seeked stream must keep collecting
        truth, e.g. a mid-interval campaign resume); plan-pass checkpoints
        shipped to truthless shard workers leave it off.
        """
        template = None
        if self._template is not None:
            template = self._template.take(np.empty(0, dtype=np.int64)).detach_root()
        truth = None
        if include_truth:
            truth = {
                name: accumulator.snapshot()
                for name, accumulator in self.domain_truth.items()
            }
        return StreamCheckpoint(
            chunk_index=self.chunks_pushed,
            watermark=float(self._watermark),
            template=template,
            stages=tuple(stage.snapshot() for stage, _ in self._stages),
            clocks=tuple(
                hop.clock.state_snapshot() for hop in self.scenario.path.hops
            ),
            truth=truth,
        )

    def seek(self, checkpoint: StreamCheckpoint) -> None:
        """Restore a freshly constructed stream to ``checkpoint``'s state.

        After seeking, the next :meth:`push` must carry chunk
        ``checkpoint.chunk_index`` of the same trace
        (:meth:`SyntheticTrace.iter_batches` with ``start_chunk``) — from
        there on the stream is bit-identical to one that processed the whole
        prefix.  Only a pristine stream may seek; the stream must be built
        over the same scenario spec the checkpoint was captured from.
        """
        if self.chunks_pushed or self._template is not None:
            raise ValueError("seek requires a freshly constructed stream")
        if len(checkpoint.stages) != len(self._stages):
            raise ValueError(
                f"checkpoint has {len(checkpoint.stages)} stage snapshots, "
                f"stream has {len(self._stages)} stages — different scenario?"
            )
        hops = self.scenario.path.hops
        if len(checkpoint.clocks) != len(hops):
            raise ValueError(
                f"checkpoint has {len(checkpoint.clocks)} clock snapshots, "
                f"path has {len(hops)} hops — different scenario?"
            )
        for (stage, _), state in zip(self._stages, checkpoint.stages):
            stage.restore(state)
        for hop, state in zip(hops, checkpoint.clocks):
            hop.clock.state_restore(state)
        self._watermark = checkpoint.watermark
        self._template = checkpoint.template
        self.chunks_pushed = checkpoint.chunk_index
        if checkpoint.truth is not None:
            for name, state in checkpoint.truth.items():
                accumulator = self.domain_truth.get(name)
                if accumulator is not None:
                    accumulator.restore(state)


def check_scenario_streamable(scenario: PathScenario) -> None:
    """Raise ``ValueError`` naming every component streaming cannot drive exactly."""
    problems: list[str] = []
    for segment in scenario.path.domain_segments():
        name = segment[0].name
        condition = scenario.condition_for(name)
        if not getattr(condition.delay_model, "streamable", False):
            problems.append(
                f"domain {name!r}: delay model "
                f"{type(condition.delay_model).__name__} is not streamable"
            )
        if not getattr(condition.loss_model, "streamable", False):
            problems.append(
                f"domain {name!r}: loss model "
                f"{type(condition.loss_model).__name__} is not streamable"
            )
        if getattr(condition.reordering, "max_lateness", None) is None:
            problems.append(
                f"domain {name!r}: reordering model "
                f"{type(condition.reordering).__name__} declares no max_lateness"
            )
    if problems:
        raise ValueError(
            "the streaming engine cannot reproduce this scenario exactly: "
            + "; ".join(problems)
            + " (use the batch engine, or make the component streamable)"
        )


@dataclass
class StreamingResult:
    """Everything a streaming run produced.

    ``truth_for``/``domain_truth`` mirror the batch observation's read API so
    result summarization code accepts either.  ``session`` is the (parent)
    VPM session whose bus now holds the published reports.
    """

    reports: dict[int, HOPReport]
    session: VPMSession
    domain_truth: dict[str, StreamingTruth]
    link_losses: dict[tuple[int, int], set[int]]
    chunk_size: int
    shards: int
    chunks: int
    #: Chunks each shard actually evaluated, in shard order.  With seekable
    #: sharding this equals each shard's span size (zero prefix replay) and
    #: makes span skew visible; ``(chunks,)`` for a single-process run.
    shard_chunks: tuple[int, ...] = ()

    def truth_for(self, domain: Domain | str) -> StreamingTruth:
        name = domain.name if isinstance(domain, Domain) else domain
        return self.domain_truth[name]


def _collectors_by_hop(session: VPMSession) -> dict[int, HOPCollector]:
    collectors: dict[int, HOPCollector] = {}
    for agent in session.agents.values():
        for hop_id in agent.hop_ids:
            collectors[hop_id] = agent.collector(hop_id)
    return collectors


def _session_digesters(session: VPMSession) -> list[PacketDigester]:
    return list(
        dict.fromkeys(
            agent.collector(hop_id).config.digester
            for agent in session.agents.values()
            for hop_id in agent.hop_ids
        )
    )


def _shard_bounds(total_chunks: int, shards: int) -> list[int]:
    """Chunk-index boundaries of each shard's span, remainder balanced.

    ``divmod`` spread: the first ``total_chunks % shards`` shards take one
    extra chunk each, so span sizes differ by at most one (any empty spans —
    more shards than chunks — land at the end, where the flush-owning last
    shard still drains the holdbacks correctly).
    """
    base, extra = divmod(total_chunks, shards)
    bounds = [0]
    for shard in range(shards):
        bounds.append(bounds[-1] + base + (1 if shard < extra else 0))
    return bounds


def _merge_shard_states(
    shard_states: list[dict[int, HOPCollector]],
    session,
) -> None:
    """Fold shard collector states in stream order and install the result.

    ``shard_states`` are the shards' collectors in shard (= stream) order.
    The merged collectors replace the session agents' — shared by the
    single-path and mesh runners so the merge discipline cannot drift
    between engines.
    """
    merged = shard_states[0]
    for state in shard_states[1:]:
        for hop_id, collector in merged.items():
            collector.merge(state[hop_id])
    for agent in session.agents.values():
        for hop_id in agent.hop_ids:
            agent.replace_collector(hop_id, merged[hop_id])


def _feed(
    collectors: dict[int, HOPCollector],
    emissions: Iterable[tuple[int, PacketBatch, np.ndarray]],
) -> None:
    for hop_id, batch, times in emissions:
        collector = collectors.get(hop_id)
        if collector is not None and len(batch):
            collector.observe_batch(batch, times)


def _run_streaming_shard(
    setup: Callable[[], StreamingCell],
    chunk_size: int,
    start: int,
    stop: int,
    checkpoint: StreamCheckpoint | None,
    flush: bool,
) -> tuple[dict[int, HOPCollector], int]:
    """Worker entry point: rebuild the cell, seek the stream to this shard's
    chunk boundary, feed exactly chunks ``[start, stop)``, and return the
    collector states plus the number of chunks actually evaluated.

    Zero prefix replay: the trace iterator seeks by fast-forwarding flow
    counters (no materialization) and the scenario stream seeks by restoring
    the coordinator's checkpoint (no propagation), so the worker's cost is
    proportional to its own span — this is what makes ``shards=N`` scale on
    N cores.  The returned chunk count therefore equals ``stop - start`` by
    construction, and the parity tests assert exactly that.
    """
    cell = setup()
    collectors = _collectors_by_hop(cell.session)
    stream = ScenarioStream(
        cell.scenario, collect_truth=False, predigest=_session_digesters(cell.session)
    )
    if checkpoint is not None:
        if checkpoint.chunk_index != start:
            raise ValueError(
                f"shard starts at chunk {start} but checkpoint was captured "
                f"at chunk {checkpoint.chunk_index}"
            )
        stream.seek(checkpoint)
    for chunk in cell.trace.iter_batches(chunk_size, start_chunk=start):
        if stream.chunks_pushed >= stop:
            break
        _feed(collectors, stream.push(chunk))
    if flush:
        _feed(collectors, stream.flush())
    return collectors, stream.chunks_pushed - start


@dataclass
class RunnerCheckpoint:
    """A mid-interval resume point for a ``shards=1`` streaming run.

    Couples the stream's propagation state (with ground truth) to the VPM
    collectors' state at the same chunk boundary, so a killed run can resume
    exactly where it stopped: install the collectors, seek the stream, and
    continue — receipts, estimates and truth come out byte-identical to an
    uninterrupted run.  A checkpoint handed to a ``checkpoint_sink`` holds
    *live* collector references; persist it (pickle) before the run
    continues, or the state will advance underneath it.
    """

    stream: StreamCheckpoint
    collectors: dict[int, HOPCollector]
    chunk_size: int


class StreamingRunner:
    """Drives a VPM measurement interval chunk-by-chunk, optionally sharded.

    Parameters
    ----------
    setup:
        Either a ready :class:`StreamingCell` or a zero-argument callable
        returning one.  With ``shards > 1`` it must be a *picklable* callable
        (worker processes rebuild the cell themselves — a cell is a pure
        function of its seeds, so every rebuild is identical).
    chunk_size:
        Trace packets per chunk; memory scales with this, results never
        depend on it.
    shards:
        Number of contiguous chunk spans processed in parallel.  The
        coordinator runs one cheap propagation-plan pass (models + holdbacks
        only — no hashing, no collectors) that also accumulates ground
        truth, captures a :class:`StreamCheckpoint` at each shard boundary,
        and dispatches every shard to a process pool the moment its
        checkpoint exists; workers seek to their boundary and evaluate only
        their own span.  Collector states merge in stream order before
        reports are generated — byte-identical to ``shards=1``.
    checkpoint_every:
        With ``shards=1``: hand a :class:`RunnerCheckpoint` to
        ``checkpoint_sink`` after every ``checkpoint_every`` chunks (skipping
        the final boundary, where finishing beats resuming).
    checkpoint_sink:
        Callable receiving those mid-interval checkpoints.
    resume_from:
        A previously captured :class:`RunnerCheckpoint` (typically pickled
        across a process boundary); the run installs its collectors, seeks
        its stream state, and continues from its chunk boundary.

    :meth:`run` returns a :class:`StreamingResult`; afterwards the session's
    receipt bus holds the published reports, exactly as after
    :meth:`VPMSession.run`.
    """

    def __init__(
        self,
        setup: StreamingCell | Callable[[], StreamingCell],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        shards: int = 1,
        checkpoint_every: int | None = None,
        checkpoint_sink: Callable[[RunnerCheckpoint], None] | None = None,
        resume_from: RunnerCheckpoint | None = None,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards > 1 and not callable(setup):
            raise ValueError(
                "shards > 1 needs a picklable zero-argument setup callable so "
                "worker processes can rebuild the cell"
            )
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if shards > 1 and (
            checkpoint_every is not None
            or checkpoint_sink is not None
            or resume_from is not None
        ):
            raise ValueError("mid-interval checkpointing requires shards=1")
        if resume_from is not None and resume_from.chunk_size != chunk_size:
            raise ValueError(
                f"resume checkpoint was captured at chunk_size="
                f"{resume_from.chunk_size}, runner uses {chunk_size}"
            )
        self._setup = setup
        self.chunk_size = int(chunk_size)
        self.shards = int(shards)
        self.checkpoint_every = checkpoint_every
        self._checkpoint_sink = checkpoint_sink
        self._resume_from = resume_from

    def run(self) -> StreamingResult:
        cell = self._setup() if callable(self._setup) else self._setup
        total_chunks = -(-cell.trace.config.packet_count // self.chunk_size)
        if self.shards == 1:
            return self._run_single(cell, total_chunks)
        return self._run_sharded(cell, total_chunks)

    def _run_single(self, cell: StreamingCell, total_chunks: int) -> StreamingResult:
        session = cell.session
        resume = self._resume_from
        start_chunk = 0
        if resume is not None:
            # Install the checkpointed collectors *before* wiring digesters,
            # so predigested chunks land in the caches the restored
            # collectors actually consult.
            for agent in session.agents.values():
                for hop_id in agent.hop_ids:
                    agent.replace_collector(hop_id, resume.collectors[hop_id])
            start_chunk = resume.stream.chunk_index
        collectors = _collectors_by_hop(session)
        stream = ScenarioStream(
            cell.scenario,
            collect_truth=True,
            predigest=_session_digesters(session),
        )
        if resume is not None:
            stream.seek(resume.stream)
        for chunk in cell.trace.iter_batches(self.chunk_size, start_chunk=start_chunk):
            _feed(collectors, stream.push(chunk))
            if (
                self._checkpoint_sink is not None
                and self.checkpoint_every
                and stream.chunks_pushed < total_chunks
                and stream.chunks_pushed % self.checkpoint_every == 0
            ):
                self._checkpoint_sink(
                    RunnerCheckpoint(
                        stream=stream.checkpoint(include_truth=True),
                        collectors=collectors,
                        chunk_size=self.chunk_size,
                    )
                )
        _feed(collectors, stream.flush())
        reports = session.collect_reports()
        return StreamingResult(
            reports=reports,
            session=session,
            domain_truth=stream.domain_truth,
            link_losses=stream.link_losses,
            chunk_size=self.chunk_size,
            shards=1,
            chunks=total_chunks,
            shard_chunks=(stream.chunks_pushed - start_chunk,),
        )

    def _run_sharded(self, cell: StreamingCell, total_chunks: int) -> StreamingResult:
        bounds = _shard_bounds(total_chunks, self.shards)
        # Plan pass: drive propagation (truth included, emissions discarded,
        # nothing hashed) and dispatch each shard the moment the plan reaches
        # its boundary, so workers run concurrently with the plan pass.
        plan_stream = ScenarioStream(cell.scenario, collect_truth=True, predigest=())
        futures: list = [None] * self.shards
        with ProcessPoolExecutor(max_workers=self.shards) as pool:

            def dispatch(shard: int, checkpoint: StreamCheckpoint | None) -> None:
                futures[shard] = pool.submit(
                    _run_streaming_shard,
                    self._setup,
                    self.chunk_size,
                    bounds[shard],
                    bounds[shard + 1],
                    checkpoint,
                    shard == self.shards - 1,
                )

            dispatch(0, None)
            next_shard = 1
            for chunk in cell.trace.iter_batches(self.chunk_size):
                plan_stream.push(chunk)
                while (
                    next_shard < self.shards
                    and plan_stream.chunks_pushed == bounds[next_shard]
                ):
                    dispatch(next_shard, plan_stream.checkpoint())
                    next_shard += 1
            while next_shard < self.shards:
                # Empty trailing spans (more shards than chunks): they start
                # at end-of-stream; the last one still owns the flush.
                dispatch(next_shard, plan_stream.checkpoint())
                next_shard += 1
            # Flush only after every checkpoint is captured: packets held
            # back upstream reach downstream domains' truth accumulators
            # here, completing the ground truth without touching the
            # propagation state the shards were dispatched with.
            plan_stream.flush()
            shard_results = [future.result() for future in futures]

        _merge_shard_states([state for state, _ in shard_results], cell.session)
        reports = cell.session.collect_reports()
        return StreamingResult(
            reports=reports,
            session=cell.session,
            domain_truth=plan_stream.domain_truth,
            link_losses=plan_stream.link_losses,
            chunk_size=self.chunk_size,
            shards=self.shards,
            chunks=total_chunks,
            shard_chunks=tuple(evaluated for _, evaluated in shard_results),
        )
