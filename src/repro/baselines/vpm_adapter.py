"""VPM wrapped in the baseline-protocol interface.

The comparison benchmark (experiment A4) runs every Section-3 baseline and VPM
over the same ingress/egress observations.  This adapter drives a
:class:`~repro.core.sampling.DelaySampler` and
:class:`~repro.core.aggregation.Aggregator` at each monitor and estimates with
the same machinery the real verifier uses, so the comparison reflects the
actual core implementation rather than a re-coded approximation.
"""

from __future__ import annotations

from repro.baselines.base import MeasurementProtocol, ProtocolEstimate
from repro.core.aggregation import Aggregator, AggregatorConfig
from repro.core.estimation import DEFAULT_QUANTILES
from repro.core.partition import aligned_aggregates
from repro.core.receipts import PathID
from repro.core.sampling import DelaySampler, SamplerConfig
from repro.net.prefixes import OriginPrefix, PrefixPair

__all__ = ["VPMProtocolAdapter"]


def _adapter_path_id(reporting_hop: int) -> PathID:
    """A synthetic PathID for the standalone two-monitor setting."""
    pair = PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    )
    return PathID(
        prefix_pair=pair,
        reporting_hop=reporting_hop,
        previous_hop=reporting_hop - 1,
        next_hop=reporting_hop + 1,
        max_diff=1e-3,
    )


class VPMProtocolAdapter(MeasurementProtocol):
    """VPM (sampling + aggregation) behind the two-monitor interface."""

    name = "vpm"
    sampling_predictable = False

    def __init__(
        self,
        sampling_rate: float = 0.01,
        expected_aggregate_size: int = 1000,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
        reorder_window: float = 0.5e-3,
    ) -> None:
        self.quantiles = quantiles
        sampler_config = SamplerConfig(sampling_rate=sampling_rate)
        aggregator_config = AggregatorConfig(
            expected_aggregate_size=expected_aggregate_size,
            reorder_window=reorder_window,
        )
        self._ingress_sampler = DelaySampler(sampler_config)
        self._egress_sampler = DelaySampler(sampler_config)
        self._ingress_aggregator = Aggregator(aggregator_config)
        self._egress_aggregator = Aggregator(aggregator_config)
        self._ingress_observed = 0

    def observe_ingress(self, digest: int, time: float) -> None:
        self._ingress_observed += 1
        self._ingress_sampler.observe(digest, time)
        self._ingress_aggregator.observe(digest, time)

    def observe_egress(self, digest: int, time: float) -> None:
        self._egress_sampler.observe(digest, time)
        self._egress_aggregator.observe(digest, time)

    def estimate(self) -> ProtocolEstimate:
        from repro.core.estimation import estimate_delay_quantiles, match_sample_delays

        ingress_path_id = _adapter_path_id(reporting_hop=1)
        egress_path_id = _adapter_path_id(reporting_hop=2)
        ingress_samples = self._ingress_sampler.receipt(ingress_path_id, reset=False)
        egress_samples = self._egress_sampler.receipt(egress_path_id, reset=False)

        self._ingress_aggregator.flush()
        self._egress_aggregator.flush()
        ingress_aggs = self._ingress_aggregator.receipts(ingress_path_id, reset=False)
        egress_aggs = self._egress_aggregator.receipts(egress_path_id, reset=False)

        delays = match_sample_delays(ingress_samples, egress_samples)
        if delays.size:
            quantile_estimates = estimate_delay_quantiles(delays, self.quantiles)
            delay_quantiles = {
                quantile: estimate.estimate
                for quantile, estimate in quantile_estimates.items()
            }
            mean_delay = float(delays.mean())
        else:
            delay_quantiles = None
            mean_delay = None

        aligned = aligned_aggregates(ingress_aggs, egress_aggs)
        offered = sum(pair.upstream.pkt_count for pair in aligned)
        lost = sum(max(pair.lost_packets, 0) for pair in aligned)
        receipt_bytes = (
            ingress_samples.wire_bytes
            + egress_samples.wire_bytes
            + sum(receipt.wire_bytes for receipt in ingress_aggs)
            + sum(receipt.wire_bytes for receipt in egress_aggs)
        )
        return ProtocolEstimate(
            protocol=self.name,
            loss_rate=(lost / offered) if offered else None,
            mean_delay=mean_delay,
            delay_quantiles=delay_quantiles,
            receipt_bytes=receipt_bytes,
            observed_packets=self._ingress_observed,
            notes="bias-resistant sampling + reordering-tolerant aggregation",
        )
