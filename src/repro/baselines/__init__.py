"""The baseline protocols of Section 3.

Each baseline implements the same two-monitor interface
(:class:`~repro.baselines.base.MeasurementProtocol`): observe the packets at a
domain's ingress and egress HOPs and estimate the domain's loss and delay.
The point of implementing them is to reproduce Section 3's comparison — which
properties (computability, verifiability, tunability) each strawman satisfies
and where it fails — and to serve as the baselines of the comparison and
ablation benchmarks.
"""

from repro.baselines.base import MeasurementProtocol, ProtocolEstimate
from repro.baselines.difference_aggregator import DifferenceAggregatorPlusPlus
from repro.baselines.strawman import StrawmanProtocol
from repro.baselines.trajectory_sampling import TrajectorySamplingPlusPlus
from repro.baselines.vpm_adapter import VPMProtocolAdapter

__all__ = [
    "DifferenceAggregatorPlusPlus",
    "MeasurementProtocol",
    "ProtocolEstimate",
    "StrawmanProtocol",
    "TrajectorySamplingPlusPlus",
    "VPMProtocolAdapter",
]
