"""Common interface of the Section-3 baseline protocols.

A measurement protocol monitors one domain edge-to-edge: it observes the
packet stream at the domain's ingress HOP and at its egress HOP and produces
an estimate of the loss and delay the domain introduced, together with the
receipt bytes it would have to disseminate to do so.

The interface deliberately mirrors how the VPM core is driven (per-packet
``observe_*`` calls with a digest and a local timestamp) so the comparison
benchmark can run every protocol over exactly the same observations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

__all__ = ["ProtocolEstimate", "MeasurementProtocol"]


@dataclass(frozen=True)
class ProtocolEstimate:
    """What a protocol could compute for one domain over one interval.

    ``None`` fields mean the protocol *cannot* provide that statistic (e.g.
    the Difference Aggregator cannot provide delay quantiles) — exactly the
    computability gaps Section 3 points out.
    """

    protocol: str
    loss_rate: float | None
    mean_delay: float | None
    delay_quantiles: dict[float, float] | None
    receipt_bytes: int
    observed_packets: int
    notes: str = ""

    @property
    def receipt_bytes_per_packet(self) -> float:
        """Receipt bytes per observed packet (both monitors combined)."""
        return self.receipt_bytes / self.observed_packets if self.observed_packets else 0.0


class MeasurementProtocol(abc.ABC):
    """A two-monitor (ingress/egress) measurement protocol for one domain."""

    #: Human-readable protocol name used in benchmark tables.
    name: str = "abstract"
    #: Whether an on-path domain can predict, at forwarding time, which
    #: packets the protocol will base its measurements on.  Predictable
    #: sampling is what makes a protocol vulnerable to the preferential
    #: treatment attack of Section 3.2.
    sampling_predictable: bool = False

    @abc.abstractmethod
    def observe_ingress(self, digest: int, time: float) -> None:
        """Process one packet observed at the domain's ingress HOP."""

    @abc.abstractmethod
    def observe_egress(self, digest: int, time: float) -> None:
        """Process one packet observed at the domain's egress HOP."""

    @abc.abstractmethod
    def estimate(self) -> ProtocolEstimate:
        """Produce the protocol's estimate for the observed interval."""

    def measurement_predicate(self, digest: int) -> bool:
        """Whether a packet with this digest will be measured (if predictable).

        Only meaningful when :attr:`sampling_predictable` is ``True``; the
        bias adversary uses it to decide which packets to treat
        preferentially.  Unpredictable protocols raise ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{self.name} does not expose a predictable measurement set"
        )

    # -- convenience driver ----------------------------------------------------

    def run(
        self,
        ingress: Sequence[tuple[int, float]],
        egress: Sequence[tuple[int, float]],
    ) -> ProtocolEstimate:
        """Feed full ingress/egress observation lists and estimate."""
        for digest, time in ingress:
            self.observe_ingress(digest, time)
        for digest, time in egress:
            self.observe_egress(digest, time)
        return self.estimate()


def quantiles_from_delays(
    delays: Sequence[float], quantiles: Sequence[float]
) -> dict[float, float]:
    """Empirical quantiles helper shared by the concrete baselines."""
    import numpy as np

    array = np.asarray(delays, dtype=float)
    if array.size == 0:
        return {}
    return {quantile: float(np.quantile(array, quantile)) for quantile in quantiles}
