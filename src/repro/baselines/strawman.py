"""The strawman: per-packet receipts (Section 3.1).

Every HOP produces a receipt (digest + timestamp) for every packet it
observes.  Computability and verifiability are trivially satisfied — the
verifier knows the fate and delay of every packet — but the protocol is not
tunable: the receipt volume is proportional to the traffic, which is the
failure Section 3.1 ends on.
"""

from __future__ import annotations

from repro.baselines.base import MeasurementProtocol, ProtocolEstimate, quantiles_from_delays
from repro.core.estimation import DEFAULT_QUANTILES
from repro.core.receipts import SAMPLE_RECORD_BYTES

__all__ = ["StrawmanProtocol"]


class StrawmanProtocol(MeasurementProtocol):
    """Per-packet receipts at both monitors."""

    name = "strawman"
    # The domain knows every packet counts toward its measured performance, so
    # there is no *subset* it can favour — biasing is meaningless, not
    # predictable in the exploitable sense.
    sampling_predictable = False

    def __init__(self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES) -> None:
        self.quantiles = quantiles
        self._ingress: dict[int, float] = {}
        self._egress: dict[int, float] = {}

    def observe_ingress(self, digest: int, time: float) -> None:
        self._ingress[digest] = time

    def observe_egress(self, digest: int, time: float) -> None:
        self._egress[digest] = time

    def estimate(self) -> ProtocolEstimate:
        observed = len(self._ingress)
        delivered = [
            (digest, self._egress[digest])
            for digest in self._ingress
            if digest in self._egress
        ]
        lost = observed - len(delivered)
        delays = [time - self._ingress[digest] for digest, time in delivered]
        mean_delay = sum(delays) / len(delays) if delays else None
        receipt_bytes = (len(self._ingress) + len(self._egress)) * SAMPLE_RECORD_BYTES
        return ProtocolEstimate(
            protocol=self.name,
            loss_rate=(lost / observed) if observed else None,
            mean_delay=mean_delay,
            delay_quantiles=quantiles_from_delays(delays, self.quantiles) or None,
            receipt_bytes=receipt_bytes,
            observed_packets=observed,
            notes="exact per-packet accounting; receipt volume grows with traffic",
        )
