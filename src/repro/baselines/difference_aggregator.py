"""Difference Aggregator ++ (Section 3.3).

Each HOP breaks the packet stream into aggregates at hash-selected cutting
points and keeps, per aggregate, a packet count and a timestamp sum (the Lossy
Difference Aggregator state).  Comparing the counts of the same aggregate at
the two monitors gives exact loss; comparing the timestamp sums of *loss-free*
aggregates gives average delay.  The protocol is tunable (aggregate size is a
local knob) but fails computability in two ways Section 3.3 spells out:

* it cannot produce delay **quantiles** — only averages over loss-free
  aggregates;
* packet reordering around a cutting point makes the two monitors disagree on
  aggregate membership, breaking the count comparison (there is no AggTrans
  patch-up here — adding one is exactly VPM's contribution on this axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import MeasurementProtocol, ProtocolEstimate
from repro.core.receipts import AGGREGATE_RECEIPT_BYTES
from repro.net.hashing import threshold_for_rate
from repro.util.validation import check_positive

__all__ = ["DifferenceAggregatorPlusPlus"]


@dataclass
class _LDAAggregate:
    """One aggregate's Lossy-Difference-Aggregator state."""

    first_digest: int
    pkt_count: int = 0
    time_sum: float = 0.0

    def add(self, time: float) -> None:
        self.pkt_count += 1
        self.time_sum += time


@dataclass
class _Monitor:
    """One monitor's aggregate list."""

    threshold: int
    aggregates: list[_LDAAggregate] = field(default_factory=list)
    observed: int = 0

    def observe(self, digest: int, time: float) -> None:
        self.observed += 1
        if not self.aggregates or digest > self.threshold:
            self.aggregates.append(_LDAAggregate(first_digest=digest))
        self.aggregates[-1].add(time)


class DifferenceAggregatorPlusPlus(MeasurementProtocol):
    """Per-aggregate counts and timestamp sums at both monitors."""

    name = "difference-aggregator++"
    # Every packet is counted, so there is no sampled subset to favour.
    sampling_predictable = False

    def __init__(self, expected_aggregate_size: int = 1000) -> None:
        check_positive("expected_aggregate_size", expected_aggregate_size)
        self.expected_aggregate_size = int(expected_aggregate_size)
        threshold = threshold_for_rate(1.0 / self.expected_aggregate_size)
        self._ingress = _Monitor(threshold=threshold)
        self._egress = _Monitor(threshold=threshold)

    def observe_ingress(self, digest: int, time: float) -> None:
        self._ingress.observe(digest, time)

    def observe_egress(self, digest: int, time: float) -> None:
        self._egress.observe(digest, time)

    def estimate(self) -> ProtocolEstimate:
        ingress_aggs = self._ingress.aggregates
        egress_aggs = self._egress.aggregates

        # Align aggregates on their cutting-point digests (first digest of
        # each aggregate); only aggregates whose boundaries match at both
        # monitors are comparable — lost or reordered cutting points silently
        # coarsen or break the alignment, which is the failure mode Section
        # 3.3 describes.
        egress_by_boundary = {agg.first_digest: agg for agg in egress_aggs}
        matched: list[tuple[_LDAAggregate, _LDAAggregate]] = []
        for aggregate in ingress_aggs:
            other = egress_by_boundary.get(aggregate.first_digest)
            if other is not None:
                matched.append((aggregate, other))

        offered = sum(up.pkt_count for up, _ in matched)
        lost = sum(max(up.pkt_count - down.pkt_count, 0) for up, down in matched)
        loss_rate = (lost / offered) if offered else None

        # Average delay from loss-free aggregates (the LDA estimator): the
        # difference of the timestamp sums divided by the (equal) counts.
        lossless = [
            (up, down) for up, down in matched if up.pkt_count == down.pkt_count > 0
        ]
        if lossless:
            total_packets = sum(up.pkt_count for up, _ in lossless)
            delay_sum = sum(down.time_sum - up.time_sum for up, down in lossless)
            mean_delay = delay_sum / total_packets
        else:
            mean_delay = None

        receipt_bytes = (len(ingress_aggs) + len(egress_aggs)) * AGGREGATE_RECEIPT_BYTES
        return ProtocolEstimate(
            protocol=self.name,
            loss_rate=loss_rate,
            mean_delay=mean_delay,
            delay_quantiles=None,
            receipt_bytes=receipt_bytes,
            observed_packets=self._ingress.observed,
            notes="exact loss and average delay only; no quantiles; "
            "breaks under reordering around cutting points",
        )
