"""Trajectory Sampling ++ (Section 3.2).

Each HOP applies a hash function to a fixed portion of every packet and keeps
a receipt (digest + timestamp) only for packets whose hash exceeds a
threshold.  Because both monitors hash the same bytes, they sample the same
packets, and the verifier estimates loss and delay quantiles from the sampled
subset — the protocol is tunable and computable.

Its failure is verifiability: the sampling decision is computable from the
packet alone *before* the packet is forwarded, so a domain (or a pair of
colluding domains) can treat the to-be-sampled packets preferentially and
exaggerate its measured performance.  That predictability is exposed through
:meth:`TrajectorySamplingPlusPlus.measurement_predicate` and exploited by the
bias adversary in the A1 ablation benchmark.
"""

from __future__ import annotations

from repro.baselines.base import MeasurementProtocol, ProtocolEstimate, quantiles_from_delays
from repro.core.estimation import DEFAULT_QUANTILES
from repro.core.receipts import SAMPLE_RECORD_BYTES
from repro.net.hashing import MASK64, splitmix64, threshold_for_rate
from repro.util.validation import check_fraction

__all__ = ["TrajectorySamplingPlusPlus"]


class TrajectorySamplingPlusPlus(MeasurementProtocol):
    """Hash-selected per-packet sampling at both monitors."""

    name = "trajectory-sampling++"
    sampling_predictable = True

    def __init__(
        self,
        sampling_rate: float = 0.01,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
        hash_salt: int = 0x5EED,
    ) -> None:
        check_fraction("sampling_rate", sampling_rate)
        self.sampling_rate = sampling_rate
        self.quantiles = quantiles
        self.hash_salt = hash_salt
        self._threshold = threshold_for_rate(sampling_rate)
        self._ingress: dict[int, float] = {}
        self._egress: dict[int, float] = {}
        self._ingress_observed = 0

    # -- sampling decision (the predictable part) ---------------------------------

    def measurement_predicate(self, digest: int) -> bool:
        """Whether a packet with this digest is sampled — knowable in advance."""
        return self._sample_value(digest) > self._threshold

    def _sample_value(self, digest: int) -> int:
        return splitmix64((digest ^ self.hash_salt) & MASK64)

    # -- observation ----------------------------------------------------------------

    def observe_ingress(self, digest: int, time: float) -> None:
        self._ingress_observed += 1
        if self.measurement_predicate(digest):
            self._ingress[digest] = time

    def observe_egress(self, digest: int, time: float) -> None:
        if self.measurement_predicate(digest):
            self._egress[digest] = time

    # -- estimation -------------------------------------------------------------------

    def estimate(self) -> ProtocolEstimate:
        sampled = len(self._ingress)
        delivered = [
            (digest, self._egress[digest])
            for digest in self._ingress
            if digest in self._egress
        ]
        lost_samples = sampled - len(delivered)
        delays = [time - self._ingress[digest] for digest, time in delivered]
        mean_delay = sum(delays) / len(delays) if delays else None
        receipt_bytes = (len(self._ingress) + len(self._egress)) * SAMPLE_RECORD_BYTES
        return ProtocolEstimate(
            protocol=self.name,
            loss_rate=(lost_samples / sampled) if sampled else None,
            mean_delay=mean_delay,
            delay_quantiles=quantiles_from_delays(delays, self.quantiles) or None,
            receipt_bytes=receipt_bytes,
            observed_packets=self._ingress_observed,
            notes="sampled estimates; sampling decision predictable by the domain",
        )
