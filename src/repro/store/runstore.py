"""Durable, append-only storage for long-horizon campaign runs.

A :class:`RunStore` is one directory holding everything a campaign run ever
produced, in a form a customer could audit months later:

* ``spec.json`` — the frozen :class:`~repro.api.spec.CampaignSpec` (canonical
  dict form), its spec hash, and the store format version; written once at
  creation.
* ``records.jsonl`` — one JSON line per **completed** interval, appended in
  interval order: the spec hash, the interval's derived root seed, a digest
  of every HOP's receipts (canonical form, ``time_sum`` at its documented
  tolerance), the per-domain estimates, verification/SLA verdicts, and the
  interval's matched delay samples as lossless float hex (the input to the
  campaign's mergeable pooled-quantile state).
* ``summary.json`` — the campaign-level statistics, written once when the
  final interval lands.

Durability discipline: ``spec.json`` and ``summary.json`` are written via a
fsynced temporary sibling plus atomic rename.  Records are **O(1) appends**
(a month-long campaign must not rewrite its whole history every interval):
one ``O_APPEND`` write of one newline-terminated line, flushed and fsynced.
A record is *committed* iff its newline made it to disk — a kill mid-write
can leave at most one torn (newline-less) tail line, which :meth:`open`
detects and truncates away before the store is used.  Either way, a run
killed at any instant leaves the store equal (after open) to the store of a
run stopped cleanly after its last completed interval — exactly the
contract :meth:`repro.engine.campaign.CampaignRunner.resume` needs to
continue a campaign byte-identically to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.api.spec import CampaignSpec

__all__ = [
    "STORE_FORMAT_VERSION",
    "RunStoreError",
    "SpecMismatchError",
    "RunStore",
    "stable_json",
]

STORE_FORMAT_VERSION = 1

SPEC_FILE = "spec.json"
RECORDS_FILE = "records.jsonl"
SUMMARY_FILE = "summary.json"


class RunStoreError(RuntimeError):
    """A run store is missing, malformed, or used inconsistently."""


class SpecMismatchError(RunStoreError):
    """The store's recorded spec hash does not match the spec in hand."""


def stable_json(data: Any) -> str:
    """Byte-stable JSON: sorted keys, fixed separators, no whitespace drift."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a fsynced temporary + atomic rename."""
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    # Persist the rename itself (directory entry) where the platform allows.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class RunStore:
    """One campaign run's durable state (see module docstring for layout)."""

    def __init__(self, path: Path | str, spec_payload: dict[str, Any]) -> None:
        self.path = Path(path)
        self._spec_payload = spec_payload
        self._spec: CampaignSpec | None = None
        self._record_count: int | None = None

    # -- lifecycle ---------------------------------------------------------------------

    @classmethod
    def create(cls, path: Path | str, spec: CampaignSpec) -> "RunStore":
        """Create a fresh store for ``spec`` at ``path`` (must not hold a run)."""
        path = Path(path)
        if (path / SPEC_FILE).exists():
            raise RunStoreError(
                f"{path} already holds a run store; resume it or choose "
                f"another directory"
            )
        path.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": STORE_FORMAT_VERSION,
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
        }
        _atomic_write(
            path / SPEC_FILE, (stable_json(payload) + "\n").encode("utf-8")
        )
        return cls(path, payload)

    @classmethod
    def list_runs(cls, root: Path | str) -> list[Path]:
        """Every run-store directory directly under ``root``, sorted by name.

        The scan is deliberately tolerant: a store root is a live directory
        with campaigns being written into it at any moment, so a child that
        is not (yet) a run store — a scratch directory, a store whose
        ``spec.json`` has not landed — is simply skipped rather than raised
        on.  Opening (and validating) an individual run stays :meth:`open`'s
        job; this helper only answers "which directories hold runs?", the
        question both the service's ``RunIndex`` and ``repro list`` ask.
        """
        root = Path(root)
        if not root.exists():
            return []
        if not root.is_dir():
            raise RunStoreError(f"store root {root} is not a directory")
        runs = []
        for child in sorted(root.iterdir()):
            if child.is_dir() and (child / SPEC_FILE).is_file():
                runs.append(child)
        return runs

    @classmethod
    def open(cls, path: Path | str) -> "RunStore":
        """Open an existing store, validating format version and spec hash."""
        path = Path(path)
        spec_path = path / SPEC_FILE
        if not spec_path.exists():
            raise RunStoreError(f"{path} is not a run store (no {SPEC_FILE})")
        try:
            payload = json.loads(spec_path.read_text())
        except json.JSONDecodeError as exc:
            raise RunStoreError(f"{spec_path} is not valid JSON: {exc}") from exc
        if payload.get("format") != STORE_FORMAT_VERSION:
            raise RunStoreError(
                f"{spec_path} has store format {payload.get('format')!r}; "
                f"this build reads format {STORE_FORMAT_VERSION}"
            )
        store = cls(path, payload)
        recorded = payload.get("spec_hash")
        actual = store.spec().spec_hash()
        if recorded != actual:
            raise SpecMismatchError(
                f"{spec_path} records spec hash {recorded}, but its own spec "
                f"hashes to {actual}; the store has been edited"
            )
        return store

    def repair_torn_tail(self) -> None:
        """Drop a newline-less tail line left by a kill mid-append.

        A record is committed only once its terminating newline is on disk;
        anything after the last newline is an interrupted append of the
        record the resumed run is about to redo, so truncating it restores
        the exact bytes of a run stopped cleanly one interval earlier.

        Called by the campaign runner before it appends (the store has one
        writer).  Read-only consumers (``repro report``) never invoke it —
        :meth:`iter_records` simply ignores an uncommitted tail — so looking
        at a store can never race the campaign that is writing it.
        """
        if not self.records_path.exists():
            return
        payload = self.records_path.read_bytes()
        if payload.endswith(b"\n"):
            return
        cut = payload.rfind(b"\n") + 1  # 0 when no complete record survived
        if cut == 0:
            # A fresh store has no records file at all (an empty or fully
            # torn file only exists mid-crash); restore that exact shape.
            self.records_path.unlink()
        else:
            _atomic_write(self.records_path, payload[:cut])
        self._record_count = None

    # -- identity ----------------------------------------------------------------------

    def spec(self) -> CampaignSpec:
        """The campaign spec this store was created for (re-validated on load)."""
        if self._spec is None:
            self._spec = CampaignSpec.from_dict(self._spec_payload["spec"])
        return self._spec

    @property
    def spec_hash(self) -> str:
        return self._spec_payload["spec_hash"]

    def validate_spec(self, spec: CampaignSpec) -> None:
        """Refuse to pair this store with a different campaign spec."""
        if spec.spec_hash() != self.spec_hash:
            raise SpecMismatchError(
                f"store {self.path} was created for spec hash {self.spec_hash}, "
                f"got a spec hashing to {spec.spec_hash()}"
            )

    # -- records -----------------------------------------------------------------------

    @property
    def records_path(self) -> Path:
        return self.path / RECORDS_FILE

    def records(self) -> list[dict[str, Any]]:
        """Every completed interval's record, in interval order."""
        return list(self.iter_records())

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Every *committed* record, in interval order.

        A record commits with its trailing newline; a newline-less tail is an
        append interrupted mid-write and is silently ignored (the writer's
        :meth:`repair_torn_tail` truncates it before the next append), so
        reading a store never requires mutating it.
        """
        if not self.records_path.exists():
            return
        payload = self.records_path.read_bytes()
        committed = payload[: payload.rfind(b"\n") + 1]
        for line_number, line in enumerate(committed.decode("utf-8").splitlines()):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RunStoreError(
                    f"{self.records_path}:{line_number + 1} is not valid "
                    f"JSON (a committed record can only be malformed if the "
                    f"store was edited): {exc}"
                ) from exc
            yield record

    @property
    def record_count(self) -> int:
        if self._record_count is None:
            self._record_count = sum(1 for _ in self.iter_records())
        return self._record_count

    @property
    def next_interval(self) -> int:
        """The index of the first interval not yet completed."""
        return self.record_count

    @property
    def is_complete(self) -> bool:
        return self.record_count >= self.spec().intervals

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one completed interval's record durably, in O(1).

        The record must carry this store's spec hash and the next expected
        interval index — a checkpoint written out of order or for a different
        spec is a logic error upstream, not something to paper over.  The
        write is a single ``O_APPEND`` line, flushed and fsynced; the record
        commits when its newline reaches disk (a kill mid-write leaves a torn
        tail that :meth:`open` truncates), so a month-long campaign never
        rewrites its history to checkpoint one more interval.
        """
        expected = self.next_interval
        if record.get("interval") != expected:
            raise RunStoreError(
                f"expected a record for interval {expected}, "
                f"got {record.get('interval')!r}"
            )
        if record.get("spec_hash") != self.spec_hash:
            raise SpecMismatchError(
                f"record carries spec hash {record.get('spec_hash')!r}, "
                f"store has {self.spec_hash}"
            )
        line = (stable_json(dict(record)) + "\n").encode("utf-8")
        fd = os.open(
            self.records_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            # os.write may return a short count (disk full, signal); anything
            # short of the newline must not be treated as a committed record.
            # On failure the newline never lands, so the torn tail is exactly
            # what the open()-time repair removes.
            written = 0
            while written < len(line):
                written += os.write(fd, line[written:])
            os.fsync(fd)
        finally:
            os.close(fd)
        if expected == 0:
            # First append created the file; persist its directory entry too.
            try:
                dir_fd = os.open(self.path, os.O_RDONLY)
            except OSError:
                pass
            else:
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
        self._record_count = expected + 1

    # -- summary -----------------------------------------------------------------------

    @property
    def summary_path(self) -> Path:
        return self.path / SUMMARY_FILE

    def write_summary(self, summary: Mapping[str, Any]) -> None:
        """Write the campaign-level summary (once, at completion)."""
        _atomic_write(
            self.summary_path, (stable_json(dict(summary)) + "\n").encode("utf-8")
        )

    def summary(self) -> dict[str, Any] | None:
        if not self.summary_path.exists():
            return None
        return json.loads(self.summary_path.read_text())

    # -- comparison --------------------------------------------------------------------

    def digest(self) -> str:
        """Stable hex digest over the store's persisted bytes.

        Two stores with equal digests are byte-identical: same spec, same
        per-interval records, same summary — the single number the CI smoke
        compares between an interrupted-and-resumed run and an uninterrupted
        one.
        """
        hasher = hashlib.blake2b(digest_size=16)
        for name in (SPEC_FILE, RECORDS_FILE, SUMMARY_FILE):
            file_path = self.path / name
            hasher.update(name.encode("utf-8") + b"\0")
            hasher.update(file_path.read_bytes() if file_path.exists() else b"\0absent")
            hasher.update(b"\0")
        return hasher.hexdigest()

    def __repr__(self) -> str:
        return (
            f"RunStore(path={str(self.path)!r}, spec_hash={self.spec_hash[:12]}, "
            f"records={self.record_count})"
        )
