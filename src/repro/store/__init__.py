"""Durable run storage for long-horizon campaigns (see :mod:`repro.store.runstore`)."""

from repro.store.runstore import (
    RECORDS_FILE,
    SPEC_FILE,
    STORE_FORMAT_VERSION,
    SUMMARY_FILE,
    RunStore,
    RunStoreError,
    SpecMismatchError,
    stable_json,
)

__all__ = [
    "RECORDS_FILE",
    "SPEC_FILE",
    "STORE_FORMAT_VERSION",
    "SUMMARY_FILE",
    "RunStore",
    "RunStoreError",
    "SpecMismatchError",
    "stable_json",
]
