"""Path-level performance localization.

The paper's introduction motivates VPM with troubleshooting: when a customer
cannot reach a destination (or gets bad performance), the operator needs to
know *which* domain on the path is responsible — its own network, the
customer's, a peer's, or the destination's.  This module turns the verifier's
per-domain outputs into that answer:

* :func:`localize_performance` ranks every transit domain of a path by its
  contribution to end-to-end delay and loss, and flags the domains violating a
  given SLA;
* :func:`identify_suspects` interprets receipt inconsistencies: for every
  inter-domain link with disagreeing receipts it names the two domains
  involved, reflecting the paper's exposure semantics (the rest of the world
  cannot tell which of the two is lying, but each of them knows);
* :func:`triangulate_suspects` reasons *across paths*: when several paths
  cross the same domain via different neighbors, the suspect pairs they
  produce share exactly one member — the lying domain — so the mesh narrows
  the exposure beyond what any single path can.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.sla import SLASpec, SLAVerdict, check_sla
from repro.core.consistency import Inconsistency
from repro.core.verifier import DomainPerformance, Verifier
from repro.net.topology import HOPPath

__all__ = [
    "DomainDiagnosis",
    "DomainImplication",
    "MeshTriangulation",
    "PathDiagnosis",
    "SuspectLink",
    "exposure_rule",
    "localize_performance",
    "identify_suspects",
    "triangulate_suspects",
]


@dataclass(frozen=True)
class DomainDiagnosis:
    """One transit domain's contribution to the path's performance."""

    domain: str
    performance: DomainPerformance
    sla_verdict: SLAVerdict | None
    delay_share: float
    loss_share: float

    @property
    def violating(self) -> bool:
        """Whether this domain violates the SLA it was checked against."""
        return self.sla_verdict is not None and not self.sla_verdict.compliant


@dataclass(frozen=True)
class SuspectLink:
    """An inter-domain link whose two ends produced inconsistent receipts."""

    upstream_domain: str
    downstream_domain: str
    upstream_hop: int
    downstream_hop: int
    findings: tuple[Inconsistency, ...]

    @property
    def finding_kinds(self) -> tuple[str, ...]:
        """The distinct kinds of disagreement observed on this link."""
        return tuple(sorted({finding.kind for finding in self.findings}))


@dataclass(frozen=True)
class PathDiagnosis:
    """The full localization result for one path."""

    path: HOPPath
    domains: tuple[DomainDiagnosis, ...]
    suspects: tuple[SuspectLink, ...] = ()

    @property
    def worst_delay_domain(self) -> DomainDiagnosis | None:
        """The transit domain contributing the most delay (if measurable)."""
        measurable = [entry for entry in self.domains if entry.performance.delay_quantiles]
        if not measurable:
            return None
        return max(measurable, key=lambda entry: entry.delay_share)

    @property
    def worst_loss_domain(self) -> DomainDiagnosis | None:
        """The transit domain contributing the most loss (if any loss at all)."""
        lossy = [entry for entry in self.domains if entry.performance.lost_packets > 0]
        if not lossy:
            return None
        return max(lossy, key=lambda entry: entry.loss_share)

    @property
    def violating_domains(self) -> tuple[str, ...]:
        """Names of the transit domains violating the SLA."""
        return tuple(entry.domain for entry in self.domains if entry.violating)


def localize_performance(
    verifier: Verifier,
    sla: SLASpec | None = None,
    quantile: float = 0.9,
) -> PathDiagnosis:
    """Rank the path's transit domains by their delay/loss contribution.

    ``delay_share`` is each domain's ``quantile`` delay divided by the sum over
    all measurable transit domains (0 when nothing is measurable);
    ``loss_share`` likewise for lost packets.  When ``sla`` is given, each
    domain is additionally checked against it.
    """
    diagnoses: list[tuple[str, DomainPerformance]] = []
    for domain, _, _ in verifier.path.domain_segments():
        diagnoses.append((domain.name, verifier.estimate_domain(domain)))

    total_delay = sum(
        performance.delay_quantile(quantile)
        for _, performance in diagnoses
        if performance.delay_quantiles
    )
    total_lost = sum(performance.lost_packets for _, performance in diagnoses)

    entries: list[DomainDiagnosis] = []
    for name, performance in diagnoses:
        delay_share = 0.0
        if performance.delay_quantiles and total_delay > 0:
            delay_share = performance.delay_quantile(quantile) / total_delay
        loss_share = (
            performance.lost_packets / total_lost if total_lost > 0 else 0.0
        )
        verdict = check_sla(performance, sla) if sla is not None else None
        entries.append(
            DomainDiagnosis(
                domain=name,
                performance=performance,
                sla_verdict=verdict,
                delay_share=delay_share,
                loss_share=loss_share,
            )
        )

    suspects = identify_suspects(verifier.path, verifier.check_consistency())
    return PathDiagnosis(path=verifier.path, domains=tuple(entries), suspects=suspects)


def identify_suspects(
    path: HOPPath, findings: Sequence[Inconsistency]
) -> tuple[SuspectLink, ...]:
    """Group inconsistencies per inter-domain link and name the two domains.

    Per the paper, an inconsistency on a link means either the link is faulty
    or one of its two endpoint domains is lying; both domains are notified, and
    only they can tell which case it is.  The verifier therefore reports the
    *pair*, not a single culprit.
    """
    owners = {hop.hop_id: hop.domain.name for hop in path.hops}
    grouped: dict[tuple[int, int], list[Inconsistency]] = {}
    for finding in findings:
        key = (finding.upstream_hop, finding.downstream_hop)
        grouped.setdefault(key, []).append(finding)

    suspects = []
    for (upstream_hop, downstream_hop), link_findings in sorted(grouped.items()):
        suspects.append(
            SuspectLink(
                upstream_domain=owners.get(upstream_hop, f"HOP{upstream_hop}"),
                downstream_domain=owners.get(downstream_hop, f"HOP{downstream_hop}"),
                upstream_hop=upstream_hop,
                downstream_hop=downstream_hop,
                findings=tuple(link_findings),
            )
        )
    return tuple(suspects)


# -- cross-path triangulation ---------------------------------------------------------


def exposure_rule(partners: Sequence[str], paths: Sequence[str]) -> bool:
    """The triangulation exposure rule, shared with the result summaries.

    A domain is exposed when it was implicated with **two or more distinct
    partners** across **two or more distinct paths**.  Both conditions are
    required: two flagged links on a *single* path (e.g. a faulty link on
    each side of an honest middle domain) reproduce the multi-partner
    signature without any cross-path evidence, and exposure is exactly the
    narrowing a single path cannot do.
    """
    return len(partners) >= 2 and len(paths) >= 2


@dataclass(frozen=True)
class DomainImplication:
    """How often (and with whom) one domain appears in suspect pairs.

    ``links`` are the distinct flagged inter-domain links involving the
    domain (as (upstream domain, downstream domain) name pairs); ``partners``
    are the distinct *other* domains it was paired with; ``paths`` are the
    prefix-pair labels of the paths whose verdicts implicated it.
    """

    domain: str
    links: tuple[tuple[str, str], ...]
    partners: tuple[str, ...]
    paths: tuple[str, ...]

    @property
    def exposed(self) -> bool:
        """Whether triangulation pins this domain down beyond a link pair.

        A single flagged link only exposes a *pair* (either endpoint may be
        lying, or the link itself may be faulty).  When a domain is implicated
        with two or more *distinct* partners across two or more *paths*, it is
        the only common member of those pairs — under the parsimonious
        single-culprit reading, it is the liar.  (Multiple independent liars
        or simultaneously faulty links could still mimic this; the paper's
        per-link semantics remain the ground truth each implicated pair can
        resolve internally.)
        """
        return exposure_rule(self.partners, self.paths)


@dataclass(frozen=True)
class MeshTriangulation:
    """The cross-path suspect analysis of one mesh run."""

    implications: tuple[DomainImplication, ...]

    @property
    def exposed_domains(self) -> tuple[str, ...]:
        """Domains triangulation exposes beyond a link pair, sorted."""
        return tuple(
            entry.domain for entry in self.implications if entry.exposed
        )

    def implication_for(self, domain: str) -> DomainImplication | None:
        """The implication record of one domain, or ``None``."""
        for entry in self.implications:
            if entry.domain == domain:
                return entry
        return None


def triangulate_suspects(
    suspects_by_path: Mapping[str, Sequence[SuspectLink]],
) -> MeshTriangulation:
    """Narrow the lying domain from every path's suspect links.

    ``suspects_by_path`` maps a path label (conventionally
    ``str(path.prefix_pair)``) to the :func:`identify_suspects` output of that
    path's verifier.  Every suspect link names a pair that single-path
    verification cannot split; a domain appearing in pairs with **two or more
    distinct partners across two or more paths** (:func:`exposure_rule`) is
    the unique common member of those pairs and is reported as exposed — the
    cross-path narrowing single paths cannot do.  Implications are returned
    for every implicated domain (exposed or not), sorted by name.
    """
    links: dict[str, set[tuple[str, str]]] = {}
    partners: dict[str, set[str]] = {}
    paths: dict[str, set[str]] = {}
    for label in sorted(suspects_by_path):
        for suspect in suspects_by_path[label]:
            pair = (suspect.upstream_domain, suspect.downstream_domain)
            for domain, partner in (pair, pair[::-1]):
                links.setdefault(domain, set()).add(pair)
                partners.setdefault(domain, set()).add(partner)
                paths.setdefault(domain, set()).add(label)
    implications = tuple(
        DomainImplication(
            domain=domain,
            links=tuple(sorted(links[domain])),
            partners=tuple(sorted(partners[domain])),
            paths=tuple(sorted(paths[domain])),
        )
        for domain in sorted(links)
    )
    return MeshTriangulation(implications=implications)
