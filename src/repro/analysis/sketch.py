"""Mergeable quantile sketch with a guaranteed relative error bound.

:class:`DelayQuantileSketch` is the bounded-memory sibling of
:class:`~repro.analysis.quantiles.MergedDelayPool`: same
``extend()``/``merge()``/``quantiles()``/``state_digest()`` contract, but it
keeps logarithmically spaced value buckets (DDSketch-style) instead of the raw
sample multiset, so its size is bounded by the value *range* of the samples —
never by their count — and a campaign in sketch mode commits O(sketch) bytes
per interval no matter how much traffic each interval carried.

Error bound
-----------
A sketch of size budget ``B`` uses buckets at ratio ``gamma = 1 + 2/B``,
giving a guaranteed **relative accuracy** ``alpha = 1/(B + 1)``: every sample
``x`` is represented by a value ``r`` with ``|r - x| <= alpha * |x|``.  An
interpolated quantile estimate is a convex combination of two such
representatives, so for every quantile ``q`` over ``n`` samples, with
``rank = q * (n - 1)``::

    |sketch_quantile(q) - exact_quantile(q)|
        <= alpha * max(|x_floor(rank)|, |x_ceil(rank)|)

where ``x_k`` is the k-th exact order statistic — the bound the differential
test tier (``tests/differential/``) asserts against the exact pool on every
conformance golden.  The default size 512 gives ``alpha ~= 0.195%``.  The
bound holds for magnitudes in ``[1e-300, 1e300]`` (beyond that ``gamma**i``
leaves float64 range); exact zeros are counted exactly.

Determinism
-----------
Construction is deterministic by design — bucket indices are a pure function
of the sample values and the size budget, there is no randomness to seed — so
two sketches built from the same multiset have byte-identical
``state_digest()`` regardless of how the samples were grouped into
``extend()`` calls or in which order sketches were ``merge()``-d.  That makes
merge associative *and* commutative byte-for-byte, which is what lets sharded
and resumed campaigns fold sketch state in any grouping and still converge on
identical stores.
"""

from __future__ import annotations

import hashlib
import math
import struct
from bisect import bisect_right
from typing import Any, Mapping, Sequence

import numpy as np

from repro.util.validation import check_probability

__all__ = ["DEFAULT_SKETCH_SIZE", "DelayQuantileSketch"]

#: Default size budget: alpha = 1/513 ~= 0.195% relative error.
DEFAULT_SKETCH_SIZE = 512

#: Smallest size budget we accept (alpha ~= 11% — already coarse).
MIN_SKETCH_SIZE = 8

_STATE_VERSION = 1


class DelayQuantileSketch:
    """DDSketch-style mergeable quantile sketch over float64 samples.

    ``size`` is the accuracy budget: relative accuracy is ``1/(size + 1)``.
    Buckets are sparse — memory is proportional to the number of *distinct
    log-spaced value buckets touched*, bounded by ``O(size * log(range))``
    and independent of the sample count.  Negative samples get a mirrored
    bucket map and exact zeros an exact counter, so the full signed delay
    range (clock skew can make matched delays negative) is covered.
    """

    def __init__(
        self, size: int = DEFAULT_SKETCH_SIZE, samples: Sequence[float] | np.ndarray = ()
    ) -> None:
        if not isinstance(size, int) or isinstance(size, bool):
            raise ValueError(f"sketch size must be an int, got {type(size).__name__}")
        if size < MIN_SKETCH_SIZE:
            raise ValueError(f"sketch size must be >= {MIN_SKETCH_SIZE}, got {size}")
        self._size = size
        self._gamma = 1.0 + 2.0 / size
        self._log_gamma = math.log(self._gamma)
        self._positive: dict[int, int] = {}
        self._negative: dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._min: float | None = None
        self._max: float | None = None
        self.extend(samples)

    # -- introspection -----------------------------------------------------------------

    @property
    def size(self) -> int:
        """The size (accuracy) budget the sketch was built with."""
        return self._size

    @property
    def relative_accuracy(self) -> float:
        """The guaranteed relative error bound ``alpha = 1/(size + 1)``."""
        return 1.0 / (self._size + 1)

    @property
    def sample_count(self) -> int:
        return self._count

    @property
    def bucket_count(self) -> int:
        """Occupied buckets — the actual memory footprint, count-independent."""
        return len(self._positive) + len(self._negative) + (1 if self._zero else 0)

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return (
            f"DelayQuantileSketch(size={self._size}, samples={self._count}, "
            f"buckets={self.bucket_count})"
        )

    # -- building ----------------------------------------------------------------------

    def extend(
        self, samples: Sequence[float] | np.ndarray
    ) -> "DelayQuantileSketch":
        """Fold samples into the sketch; returns self.

        NaN and infinite values are rejected with a :class:`ValueError` — a
        sketch bucket index for them is undefined, and silently dropping
        them would desynchronize the count.
        """
        array = np.asarray(samples, dtype=np.float64)
        if array.ndim != 1:
            array = array.reshape(-1)
        if not array.size:
            return self
        if not np.isfinite(array).all():
            raise ValueError(
                "delay samples must be finite; got NaN or infinity "
                "(check the matched-delay extraction upstream)"
            )
        self._count += int(array.size)
        self._zero += int(np.count_nonzero(array == 0.0))
        for mapping, magnitudes in (
            (self._positive, array[array > 0.0]),
            (self._negative, -array[array < 0.0]),
        ):
            if magnitudes.size:
                indices = np.ceil(
                    np.log(magnitudes) / self._log_gamma
                ).astype(np.int64)
                for index, count in zip(*np.unique(indices, return_counts=True)):
                    key = int(index)
                    mapping[key] = mapping.get(key, 0) + int(count)
        low = float(array.min())
        high = float(array.max())
        self._min = low if self._min is None else min(self._min, low)
        self._max = high if self._max is None else max(self._max, high)
        return self

    def merge(self, other: "DelayQuantileSketch") -> "DelayQuantileSketch":
        """Fold another sketch in; returns self.

        Merging is exact bucket-count addition, so it is associative and
        commutative byte-for-byte — any grouping of shards or intervals
        converges on the identical state.  Both sketches must share the same
        size budget (their bucket grids differ otherwise).
        """
        if not isinstance(other, DelayQuantileSketch):
            raise ValueError(
                f"can only merge another DelayQuantileSketch, "
                f"got {type(other).__name__}"
            )
        if other._size != self._size:
            raise ValueError(
                f"cannot merge sketches with different size budgets "
                f"({self._size} vs {other._size})"
            )
        for index, count in other._positive.items():
            self._positive[index] = self._positive.get(index, 0) + count
        for index, count in other._negative.items():
            self._negative[index] = self._negative.get(index, 0) + count
        self._zero += other._zero
        self._count += other._count
        if other._min is not None:
            self._min = other._min if self._min is None else min(self._min, other._min)
        if other._max is not None:
            self._max = other._max if self._max is None else max(self._max, other._max)
        return self

    # -- queries -----------------------------------------------------------------------

    def _representative(self, index: int) -> float:
        """The representative of positive bucket ``index``.

        The bucket covers ``(gamma^(i-1), gamma^i]``; the harmonic midpoint
        ``2 * gamma^i / (gamma + 1)`` is within ``alpha`` relative error of
        both endpoints, which is where the guarantee comes from.
        """
        return 2.0 * math.exp(index * self._log_gamma) / (self._gamma + 1.0)

    def _ordered_buckets(self) -> tuple[list[float], list[int]]:
        """(representatives ascending, cumulative counts) over all buckets."""
        values: list[float] = []
        counts: list[int] = []
        for index in sorted(self._negative, reverse=True):
            values.append(-self._representative(index))
            counts.append(self._negative[index])
        if self._zero:
            values.append(0.0)
            counts.append(self._zero)
        for index in sorted(self._positive):
            values.append(self._representative(index))
            counts.append(self._positive[index])
        cumulative: list[int] = []
        total = 0
        for count in counts:
            total += count
            cumulative.append(total)
        return values, cumulative

    def quantiles(self, quantiles: Sequence[float]) -> dict[float, float]:
        """Estimated quantiles; empty mapping when the sketch is empty.

        Uses the same linear-interpolation definition as
        :func:`numpy.quantile`, over bucket representatives, clamped to the
        exactly tracked [min, max] — each estimate is within the documented
        relative bound of the exact empirical quantile.
        """
        if not self._count:
            return {}
        values, cumulative = self._ordered_buckets()
        result: dict[float, float] = {}
        for quantile in quantiles:
            check_probability("quantile", quantile)
            rank = float(quantile) * (self._count - 1)
            low_rank = int(math.floor(rank))
            fraction = rank - low_rank
            low = values[bisect_right(cumulative, low_rank)]
            if fraction > 0.0:
                high = values[bisect_right(cumulative, low_rank + 1)]
                estimate = low + fraction * (high - low)
            else:
                estimate = low
            estimate = min(max(estimate, self._min), self._max)
            result[float(quantile)] = float(estimate)
        return result

    def value_bounds(self, estimate: float) -> tuple[float, float]:
        """(lower, upper) interval the exact quantile is guaranteed to lie in.

        From ``|estimate - exact| <= alpha * |exact|`` it follows that
        ``|exact| <= |estimate| / (1 - alpha)``, hence the half-width
        ``alpha * |estimate| / (1 - alpha)`` (for same-sign bracketing
        order statistics, always the case for delay data).
        """
        alpha = self.relative_accuracy
        half_width = alpha * abs(estimate) / (1.0 - alpha)
        return estimate - half_width, estimate + half_width

    # -- serialization -----------------------------------------------------------------

    def state_digest(self) -> str:
        """Stable hex digest of the sketch state (grouping/merge-order free)."""
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(b"dqsketch")
        hasher.update(struct.pack("<qqq", _STATE_VERSION, self._size, self._count))
        hasher.update(struct.pack("<q", self._zero))
        for bound in (self._min, self._max):
            if bound is None:
                hasher.update(b"\x00")
            else:
                hasher.update(b"\x01" + struct.pack("<d", bound))
        for mapping in (self._negative, self._positive):
            hasher.update(struct.pack("<q", len(mapping)))
            for index in sorted(mapping):
                hasher.update(struct.pack("<qq", index, mapping[index]))
        return hasher.hexdigest()

    def to_state(self) -> dict[str, Any]:
        """JSON-safe state (lossless; see :meth:`from_state`).

        Bucket maps are keyed by decimal bucket index; min/max use float hex
        so the round trip is bit-exact.
        """
        return {
            "version": _STATE_VERSION,
            "size": self._size,
            "count": self._count,
            "zero": self._zero,
            "negative": {str(i): self._negative[i] for i in sorted(self._negative)},
            "positive": {str(i): self._positive[i] for i in sorted(self._positive)},
            "min": self._min.hex() if self._min is not None else None,
            "max": self._max.hex() if self._max is not None else None,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "DelayQuantileSketch":
        """Rebuild a sketch from :meth:`to_state` output (bit-exact round trip)."""
        if not isinstance(state, Mapping):
            raise ValueError(
                f"sketch state must be a mapping, got {type(state).__name__}"
            )
        if state.get("version") != _STATE_VERSION:
            raise ValueError(
                f"unsupported sketch state version {state.get('version')!r} "
                f"(expected {_STATE_VERSION})"
            )
        sketch = cls(size=int(state["size"]))
        for field, mapping in (("negative", sketch._negative), ("positive", sketch._positive)):
            for key, count in dict(state.get(field) or {}).items():
                count = int(count)
                if count <= 0:
                    raise ValueError(
                        f"sketch state {field} bucket {key!r} has non-positive "
                        f"count {count}"
                    )
                mapping[int(key)] = count
        sketch._zero = int(state.get("zero") or 0)
        sketch._count = int(state["count"])
        expected = (
            sketch._zero
            + sum(sketch._negative.values())
            + sum(sketch._positive.values())
        )
        if sketch._count != expected:
            raise ValueError(
                f"sketch state count {sketch._count} does not match its "
                f"bucket total {expected}"
            )
        if state.get("min") is not None:
            sketch._min = float.fromhex(state["min"])
        if state.get("max") is not None:
            sketch._max = float.fromhex(state["max"])
        if sketch._count and (sketch._min is None or sketch._max is None):
            raise ValueError("non-empty sketch state is missing its min/max bounds")
        return sketch
