"""Small summary-statistics helpers used by examples and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    p99: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary form, convenient for printing benchmark tables."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(values: Sequence[float] | np.ndarray) -> Summary:
    """Summarize a sample (count, mean, std, min/median/p90/p99/max)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        median=float(np.quantile(array, 0.5)),
        p90=float(np.quantile(array, 0.9)),
        p99=float(np.quantile(array, 0.99)),
        maximum=float(array.max()),
    )
