"""Accuracy metrics connecting receipt-based estimates to ground truth.

These helpers compute exactly the quantities plotted in the paper's
evaluation:

* :func:`delay_accuracy_report` — Figure 2's "Delay Accuracy [msec]": the
  worst-case error of the receipt-based delay-quantile estimates against the
  ground-truth quantiles of the full packet population.
* :func:`loss_granularity_report` — Figure 3's "Loss Granularity [sec]": the
  mean time span over which a domain's loss could be computed from its
  receipts, together with the exactness of the computed loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.estimation import DelayQuantileEstimate
from repro.core.verifier import DomainPerformance
from repro.simulation.scenario import DomainGroundTruth

__all__ = [
    "AccuracyReport",
    "relative_error",
    "delay_accuracy_report",
    "loss_granularity_report",
    "LossGranularityReport",
]


def relative_error(estimate: float, truth: float) -> float:
    """Relative error ``|estimate - truth| / truth`` (0 when truth is 0 and
    the estimate matches it; infinite otherwise)."""
    if truth == 0.0:
        return 0.0 if estimate == 0.0 else float("inf")
    return abs(estimate - truth) / abs(truth)


@dataclass(frozen=True)
class AccuracyReport:
    """Delay-estimation accuracy of one experiment run.

    ``max_error`` (seconds) is the Figure-2 metric: the worst error across the
    evaluated quantiles.  ``per_quantile_error`` gives the breakdown, and
    ``sample_count`` how many commonly sampled packets supported the estimate.
    """

    per_quantile_error: dict[float, float]
    true_quantiles: dict[float, float]
    estimated_quantiles: dict[float, float]
    sample_count: int

    @property
    def max_error(self) -> float:
        """Worst-case quantile error in seconds (Figure 2's y-axis)."""
        return max(self.per_quantile_error.values()) if self.per_quantile_error else 0.0

    @property
    def max_error_ms(self) -> float:
        """Worst-case quantile error in milliseconds."""
        return self.max_error * 1e3

    @property
    def mean_error(self) -> float:
        """Mean quantile error in seconds."""
        values = list(self.per_quantile_error.values())
        return float(np.mean(values)) if values else 0.0


def _as_point_estimates(
    estimates: Mapping[float, DelayQuantileEstimate] | Mapping[float, float],
) -> dict[float, float]:
    points: dict[float, float] = {}
    for quantile, value in estimates.items():
        points[quantile] = (
            value.estimate if isinstance(value, DelayQuantileEstimate) else float(value)
        )
    return points


def delay_accuracy_report(
    performance: DomainPerformance | Mapping[float, DelayQuantileEstimate],
    truth: DomainGroundTruth | Mapping[float, float],
    quantiles: Sequence[float] | None = None,
) -> AccuracyReport:
    """Compare receipt-based delay quantiles against ground truth.

    ``performance`` may be a full :class:`DomainPerformance` (its
    ``delay_quantiles`` are used) or a plain quantile mapping; ``truth`` may be
    a :class:`DomainGroundTruth` (its delivered-packet delays are used) or a
    precomputed quantile mapping.
    """
    if isinstance(performance, DomainPerformance):
        estimated = _as_point_estimates(performance.delay_quantiles)
        sample_count = performance.delay_sample_count
    else:
        estimated = _as_point_estimates(performance)
        sample_count = 0
    if not estimated:
        raise ValueError("no delay-quantile estimates available to evaluate")

    wanted = tuple(quantiles) if quantiles is not None else tuple(sorted(estimated))
    if isinstance(truth, DomainGroundTruth):
        true_quantiles = truth.delay_quantiles(wanted)
    else:
        true_quantiles = {
            quantile: float(truth[quantile]) for quantile in wanted if quantile in truth
        }

    per_quantile = {
        quantile: abs(estimated[quantile] - true_quantiles[quantile])
        for quantile in wanted
        if quantile in estimated and quantile in true_quantiles
    }
    if not per_quantile:
        raise ValueError("estimates and truth share no quantiles")
    return AccuracyReport(
        per_quantile_error=per_quantile,
        true_quantiles={quantile: true_quantiles[quantile] for quantile in per_quantile},
        estimated_quantiles={quantile: estimated[quantile] for quantile in per_quantile},
        sample_count=sample_count,
    )


@dataclass(frozen=True)
class LossGranularityReport:
    """Loss-computation quality of one experiment run (Figure 3's metric)."""

    mean_granularity_seconds: float
    granularities: tuple[float, ...]
    computed_loss_rate: float
    true_loss_rate: float

    @property
    def loss_rate_error(self) -> float:
        """Absolute error of the computed loss rate."""
        return abs(self.computed_loss_rate - self.true_loss_rate)


def loss_granularity_report(
    performance: DomainPerformance, truth: DomainGroundTruth
) -> LossGranularityReport:
    """Compare receipt-based loss accounting against ground truth."""
    return LossGranularityReport(
        mean_granularity_seconds=performance.mean_loss_granularity,
        granularities=performance.loss_granularity,
        computed_loss_rate=performance.loss_rate,
        true_loss_rate=truth.loss_rate,
    )
