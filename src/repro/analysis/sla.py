"""SLA specification and compliance checking.

The paper motivates VPM with SLA verification: "today's SLAs ... typically
promise intra-domain delays on the order of multiple tens of milliseconds"
and "a certain level of packet loss per month".  :class:`SLASpec` captures
such a contract (a delay bound at a quantile plus a loss-rate bound) and
:func:`check_sla` evaluates a receipt-derived
:class:`~repro.core.verifier.DomainPerformance` against it, taking the
estimation confidence bounds into account so a verifier does not cry
violation on estimation noise alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.verifier import DomainPerformance
from repro.util.validation import check_non_negative, check_probability

__all__ = ["SLASpec", "SLAVerdict", "check_sla"]


@dataclass(frozen=True)
class SLASpec:
    """A (simplified) SLA between a domain and its customer or peer.

    Attributes
    ----------
    delay_bound:
        Maximum delay (seconds) the domain promises at ``delay_quantile``
        (e.g. "90% of packets below 5 ms").
    delay_quantile:
        The quantile the delay bound applies to.
    loss_bound:
        Maximum loss rate the domain promises over the measurement period.
    name:
        Optional label for reporting.
    """

    delay_bound: float = 50e-3
    delay_quantile: float = 0.9
    loss_bound: float = 0.001
    name: str = "default-sla"

    def __post_init__(self) -> None:
        check_non_negative("delay_bound", self.delay_bound)
        check_probability("delay_quantile", self.delay_quantile)
        check_probability("loss_bound", self.loss_bound)


@dataclass(frozen=True)
class SLAVerdict:
    """The outcome of checking one domain against one SLA."""

    sla: SLASpec
    domain: str
    delay_compliant: bool | None
    loss_compliant: bool | None
    measured_delay: float | None
    measured_loss: float | None

    @property
    def compliant(self) -> bool:
        """Overall compliance (unknown dimensions count as compliant)."""
        return (self.delay_compliant is not False) and (self.loss_compliant is not False)

    def __str__(self) -> str:
        def render(flag: bool | None) -> str:
            if flag is None:
                return "unknown"
            return "ok" if flag else "VIOLATED"

        delay_text = (
            f"{self.measured_delay * 1e3:.2f} ms" if self.measured_delay is not None else "n/a"
        )
        loss_text = (
            f"{self.measured_loss * 100:.3f} %" if self.measured_loss is not None else "n/a"
        )
        return (
            f"SLA {self.sla.name!r} for domain {self.domain}: "
            f"delay {render(self.delay_compliant)} ({delay_text} at "
            f"q={self.sla.delay_quantile}), loss {render(self.loss_compliant)} ({loss_text})"
        )


def check_sla(
    performance: DomainPerformance,
    sla: SLASpec,
    use_confidence_bounds: bool = True,
) -> SLAVerdict:
    """Evaluate a receipt-derived performance estimate against an SLA.

    With ``use_confidence_bounds`` the delay check uses the *lower* confidence
    bound of the quantile estimate, i.e. the domain is flagged only when even
    the optimistic end of the interval exceeds the promised bound; without it
    the point estimate is compared directly.
    """
    delay_compliant: bool | None = None
    measured_delay: float | None = None
    estimate = performance.delay_quantiles.get(sla.delay_quantile)
    if estimate is not None:
        measured_delay = estimate.estimate
        compared = estimate.lower if use_confidence_bounds else estimate.estimate
        delay_compliant = compared <= sla.delay_bound

    loss_compliant: bool | None = None
    measured_loss: float | None = None
    if performance.offered_packets > 0:
        measured_loss = performance.loss_rate
        loss_compliant = measured_loss <= sla.loss_bound

    return SLAVerdict(
        sla=sla,
        domain=performance.domain,
        delay_compliant=delay_compliant,
        loss_compliant=loss_compliant,
        measured_delay=measured_delay,
        measured_loss=measured_loss,
    )
