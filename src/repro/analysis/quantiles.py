"""Quantile utilities shared by the metrics module and the benchmarks.

Besides the plain helpers, this module provides :class:`MergedDelayPool` —
the mergeable pooled-quantile state long-horizon campaigns fold their
per-interval delay samples into.  The pool keeps one sorted array and merges
each new (sorted) span in linearly, so campaign-level quantiles never re-pool
the raw samples of every past interval; merging is associative and produces
exactly the multiset a whole-campaign sort would, so pooled == merged holds
bit-for-bit (asserted by the unit suite).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.util.validation import check_probability

__all__ = ["MergedDelayPool", "empirical_quantiles", "quantile_error"]


def _checked_samples(samples: Sequence[float] | np.ndarray) -> np.ndarray:
    """Samples as a float64 array, rejecting NaN/inf with a clear error.

    A NaN would silently poison the pool: ``np.sort`` parks NaNs at the end,
    so every subsequent merge and quantile would be computed over a corrupted
    order, and ``state_digest()`` would still look healthy.  Refuse at the
    boundary instead.
    """
    array = np.asarray(samples, dtype=np.float64)
    if array.size and not np.isfinite(array).all():
        raise ValueError(
            "delay samples must be finite; got NaN or infinity "
            "(check the matched-delay extraction upstream)"
        )
    return array


def _merge_sorted(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Linear stable merge of two sorted float arrays (left's ties first)."""
    if not len(left):
        return right
    if not len(right):
        return left
    positions = np.searchsorted(left, right, side="right") + np.arange(len(right))
    merged = np.empty(len(left) + len(right), dtype=np.float64)
    mask = np.zeros(len(merged), dtype=bool)
    mask[positions] = True
    merged[mask] = right
    merged[~mask] = left
    return merged


class MergedDelayPool:
    """Mergeable pooled delay samples with exact whole-pool semantics.

    ``extend(samples)`` sorts one interval's samples once and merges them into
    the pool's sorted array; ``merge(other)`` folds another pool in.  Both
    yield the identical sorted array that ``np.sort`` over the concatenation
    of every sample ever added would — order of extends/merges never matters —
    so campaign statistics computed from the pool are bit-identical however
    the intervals were grouped (run in one go, checkpoint/resumed, sharded).
    """

    def __init__(self, samples: Sequence[float] | np.ndarray = ()) -> None:
        array = _checked_samples(samples)
        self._sorted = np.sort(array) if array.size else np.empty(0, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def sample_count(self) -> int:
        return len(self._sorted)

    @property
    def sorted_samples(self) -> np.ndarray:
        """The pooled samples, ascending (a read-only view)."""
        view = self._sorted.view()
        view.flags.writeable = False
        return view

    def extend(self, samples: Sequence[float] | np.ndarray) -> "MergedDelayPool":
        """Fold one interval's (unsorted) samples into the pool; returns self.

        NaN and infinite values are rejected with a :class:`ValueError`.
        """
        array = _checked_samples(samples)
        if array.size:
            self._sorted = _merge_sorted(self._sorted, np.sort(array))
        return self

    def merge(self, other: "MergedDelayPool") -> "MergedDelayPool":
        """Fold another pool's samples into this one; returns self."""
        self._sorted = _merge_sorted(self._sorted, other._sorted)
        return self

    def quantiles(self, quantiles: Sequence[float]) -> dict[float, float]:
        """Pooled empirical quantiles; empty mapping when the pool is empty."""
        if not len(self._sorted):
            return {}
        return empirical_quantiles(self._sorted, quantiles)

    def state_digest(self) -> str:
        """Stable hex digest of the pooled multiset (bit-exact floats)."""
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(self._sorted.tobytes())
        return hasher.hexdigest()

    def to_hex(self) -> list[str]:
        """The sorted samples as lossless float hex (JSON-safe checkpoint form)."""
        return [value.hex() for value in self._sorted.tolist()]

    @classmethod
    def from_hex(cls, values: Iterable[str]) -> "MergedDelayPool":
        """Rebuild a pool from :meth:`to_hex` output (bit-exact round trip)."""
        pool = cls()
        pool._sorted = _checked_samples(
            [float.fromhex(value) for value in values]
        )
        return pool

    def __repr__(self) -> str:
        return f"MergedDelayPool(samples={len(self._sorted)})"


def empirical_quantiles(
    values: Sequence[float] | np.ndarray, quantiles: Sequence[float]
) -> dict[float, float]:
    """Empirical quantiles of ``values`` as a ``{quantile: value}`` mapping."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot compute quantiles of an empty sample")
    result: dict[float, float] = {}
    for quantile in quantiles:
        check_probability("quantile", quantile)
        result[quantile] = float(np.quantile(array, quantile))
    return result


def quantile_error(
    estimated: Mapping[float, float], truth: Mapping[float, float]
) -> dict[float, float]:
    """Per-quantile absolute error between two quantile mappings."""
    common = sorted(set(estimated) & set(truth))
    if not common:
        raise ValueError("the two quantile mappings share no quantiles")
    return {quantile: abs(estimated[quantile] - truth[quantile]) for quantile in common}
