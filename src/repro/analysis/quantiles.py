"""Quantile utilities shared by the metrics module and the benchmarks."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.util.validation import check_probability

__all__ = ["empirical_quantiles", "quantile_error"]


def empirical_quantiles(
    values: Sequence[float] | np.ndarray, quantiles: Sequence[float]
) -> dict[float, float]:
    """Empirical quantiles of ``values`` as a ``{quantile: value}`` mapping."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot compute quantiles of an empty sample")
    result: dict[float, float] = {}
    for quantile in quantiles:
        check_probability("quantile", quantile)
        result[quantile] = float(np.quantile(array, quantile))
    return result


def quantile_error(
    estimated: Mapping[float, float], truth: Mapping[float, float]
) -> dict[float, float]:
    """Per-quantile absolute error between two quantile mappings."""
    common = sorted(set(estimated) & set(truth))
    if not common:
        raise ValueError("the two quantile mappings share no quantiles")
    return {quantile: abs(estimated[quantile] - truth[quantile]) for quantile in common}
