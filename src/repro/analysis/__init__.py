"""Analysis helpers: accuracy metrics, quantiles, SLA checking, localization."""

from repro.analysis.localization import (
    DomainDiagnosis,
    DomainImplication,
    MeshTriangulation,
    PathDiagnosis,
    SuspectLink,
    identify_suspects,
    localize_performance,
    triangulate_suspects,
)
from repro.analysis.metrics import (
    AccuracyReport,
    delay_accuracy_report,
    loss_granularity_report,
    relative_error,
)
from repro.analysis.quantiles import (
    MergedDelayPool,
    empirical_quantiles,
    quantile_error,
)
from repro.analysis.sketch import DEFAULT_SKETCH_SIZE, DelayQuantileSketch
from repro.analysis.sla import SLASpec, SLAVerdict, check_sla
from repro.analysis.statistics import summarize

__all__ = [
    "AccuracyReport",
    "DEFAULT_SKETCH_SIZE",
    "DelayQuantileSketch",
    "DomainDiagnosis",
    "DomainImplication",
    "MergedDelayPool",
    "MeshTriangulation",
    "PathDiagnosis",
    "SLASpec",
    "SLAVerdict",
    "SuspectLink",
    "check_sla",
    "delay_accuracy_report",
    "empirical_quantiles",
    "identify_suspects",
    "localize_performance",
    "loss_granularity_report",
    "quantile_error",
    "relative_error",
    "summarize",
    "triangulate_suspects",
]
