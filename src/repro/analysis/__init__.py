"""Analysis helpers: accuracy metrics, quantiles, SLA checking, localization."""

from repro.analysis.localization import (
    DomainDiagnosis,
    DomainImplication,
    MeshTriangulation,
    PathDiagnosis,
    SuspectLink,
    identify_suspects,
    localize_performance,
    triangulate_suspects,
)
from repro.analysis.metrics import (
    AccuracyReport,
    delay_accuracy_report,
    loss_granularity_report,
    relative_error,
)
from repro.analysis.quantiles import empirical_quantiles, quantile_error
from repro.analysis.sla import SLASpec, SLAVerdict, check_sla
from repro.analysis.statistics import summarize

__all__ = [
    "AccuracyReport",
    "DomainDiagnosis",
    "DomainImplication",
    "MeshTriangulation",
    "PathDiagnosis",
    "SLASpec",
    "SLAVerdict",
    "SuspectLink",
    "check_sla",
    "delay_accuracy_report",
    "empirical_quantiles",
    "identify_suspects",
    "localize_performance",
    "loss_granularity_report",
    "quantile_error",
    "relative_error",
    "summarize",
    "triangulate_suspects",
]
