"""The Section 7.1 resource-overhead model.

The paper argues, with back-of-the-envelope calculations, that VPM's memory,
processing and bandwidth requirements "are well within the capabilities of
modern networks".  This module reproduces those calculations as explicit,
testable models so the numbers in the paper can be regenerated
(``benchmarks/bench_overhead_memory.py`` and
``bench_overhead_bandwidth.py``) and so users can plug in their own link
speeds, path mixes and tuning choices.

The paper's reference numbers:

* **Monitoring cache** — ~20 bytes of per-path state (one open aggregate
  receipt); 100,000 active paths → a 2 MB monitoring cache.
* **Temporary packet buffer** — 7 bytes per packet (4-byte digest + 3-byte
  timestamp) held for at most ``J`` = 10 ms; a 10 Gbps interface at 400-byte
  average packets (3.125 Mpps) needs ~436 KB, or ~2.8 MB for worst-case
  minimum-size packets (20 Mpps).
* **Per-packet processing** — three memory accesses, one hash and one
  timestamp per packet, plus one extra access per packet when a marker
  arrives.
* **Receipt bandwidth** — a 10-domain path with 1000-packet aggregates and 1%
  sampling produces ~0.2 receipt bytes per packet, a 0.046% overhead over
  400-byte packets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.receipts import AGGREGATE_RECEIPT_BYTES, SAMPLE_RECORD_BYTES
from repro.util.units import gbps_to_pps
from repro.util.validation import check_fraction, check_non_negative, check_positive

__all__ = [
    "CollectorMemoryModel",
    "PerPacketProcessingModel",
    "BandwidthOverheadModel",
    "ResourceProfile",
]

# Per-path collector state: an open aggregate receipt (PathID reference,
# AggID, PktCnt) — "roughly 20 bytes" in the paper.
PER_PATH_STATE_BYTES = 20
# Temporary-buffer entry: 4-byte packet digest + 3-byte timestamp.
TEMP_BUFFER_ENTRY_BYTES = SAMPLE_RECORD_BYTES


@dataclass(frozen=True)
class CollectorMemoryModel:
    """Memory footprint of the collector module (data plane).

    Attributes
    ----------
    active_paths:
        Number of source/destination origin-prefix pairs concurrently sending
        traffic through the HOP.
    interface_gbps:
        Line rate of the monitored interface.
    mean_packet_size:
        Average packet size in bytes (400 in the paper's typical case, 40 for
        the worst case of all-minimum-size packets).
    reorder_window:
        The safety threshold ``J`` (seconds) during which per-packet state is
        buffered.
    directions:
        Number of monitored directions per interface (2 for a full-duplex
        interface, matching the paper's per-interface buffer numbers).
    """

    active_paths: int = 100_000
    interface_gbps: float = 10.0
    mean_packet_size: int = 400
    reorder_window: float = 0.01
    directions: int = 2

    def __post_init__(self) -> None:
        check_positive("active_paths", self.active_paths)
        check_positive("interface_gbps", self.interface_gbps)
        check_positive("mean_packet_size", self.mean_packet_size)
        check_positive("reorder_window", self.reorder_window)
        check_positive("directions", self.directions)

    @property
    def monitoring_cache_bytes(self) -> int:
        """Bytes of per-path state (one open aggregate receipt per path)."""
        return self.active_paths * PER_PATH_STATE_BYTES

    @property
    def packets_per_second(self) -> float:
        """Packets per second per direction at the configured packet size."""
        return gbps_to_pps(self.interface_gbps, self.mean_packet_size)

    @property
    def temp_buffer_bytes(self) -> int:
        """Bytes of temporary per-packet state held for one reorder window.

        Counts both directions of the interface, matching the paper's
        "436 KB temporary buffer for each 10 Gbps interface" figure
        (3.125 Mpps per direction x 10 ms x 7 bytes x 2 directions).
        """
        per_direction = int(round(self.packets_per_second * self.reorder_window))
        return per_direction * TEMP_BUFFER_ENTRY_BYTES * self.directions

    @property
    def total_bytes(self) -> int:
        """Total collector memory (monitoring cache + temporary buffer)."""
        return self.monitoring_cache_bytes + self.temp_buffer_bytes

    def fits_in_sram_chip(self, chip_bytes: int = 32 * 1024 * 1024) -> bool:
        """Whether the temporary buffer fits a single (32 MB) SRAM chip."""
        return self.temp_buffer_bytes <= chip_bytes


@dataclass(frozen=True)
class PerPacketProcessingModel:
    """Per-packet operation counts of the collector module.

    The paper's accounting: per packet, the collector (1) looks up the
    packet's PathID, (2) updates the aggregate's packet count and (3) stores
    the digest/timestamp into the temporary buffer — three memory accesses —
    plus one hash computation and one timestamp read.  When a marker packet
    arrives, the buffered entries are scanned once more, adding one access per
    packet amortized over the marker period.
    """

    memory_accesses_per_packet: int = 3
    hashes_per_packet: int = 1
    timestamps_per_packet: int = 1
    marker_scan_accesses_per_packet: int = 1

    @property
    def total_memory_accesses_per_packet(self) -> int:
        """Memory accesses per packet including the amortized marker scan."""
        return self.memory_accesses_per_packet + self.marker_scan_accesses_per_packet

    def accesses_per_second(self, packets_per_second: float) -> float:
        """Memory accesses per second at a given packet rate."""
        check_non_negative("packets_per_second", packets_per_second)
        return packets_per_second * self.total_memory_accesses_per_packet


@dataclass(frozen=True)
class BandwidthOverheadModel:
    """Receipt-dissemination bandwidth overhead of one path.

    Attributes
    ----------
    hops_on_path:
        Number of reporting units producing receipts for the path.  The
        paper's calculation uses a conservative 10-domain path and counts ten
        reporting units; the Internet average is 3-4 domains (4-6 HOPs).
    packets_per_aggregate:
        Aggregation granularity (an "ambitious" 1000 packets per aggregate in
        the paper's calculation).
    sampling_rate:
        Fraction of packets delay-sampled by each HOP.
    mean_packet_size:
        Average data-packet size in bytes.
    aggregate_receipt_bytes / sample_record_bytes:
        Receipt wire sizes; default to the paper's 22 and 7 bytes.
    """

    hops_on_path: int = 10
    packets_per_aggregate: int = 1000
    sampling_rate: float = 0.01
    mean_packet_size: int = 400
    aggregate_receipt_bytes: int = AGGREGATE_RECEIPT_BYTES
    sample_record_bytes: int = SAMPLE_RECORD_BYTES

    def __post_init__(self) -> None:
        check_positive("hops_on_path", self.hops_on_path)
        check_positive("packets_per_aggregate", self.packets_per_aggregate)
        check_fraction("sampling_rate", self.sampling_rate)
        check_positive("mean_packet_size", self.mean_packet_size)

    @property
    def receipt_bytes_per_packet_per_hop(self) -> float:
        """Receipt bytes one HOP produces per observed data packet."""
        aggregate_share = self.aggregate_receipt_bytes / self.packets_per_aggregate
        sample_share = self.sampling_rate * self.sample_record_bytes
        return aggregate_share + sample_share

    @property
    def receipt_bytes_per_packet(self) -> float:
        """Receipt bytes per data packet across all HOPs of the path."""
        return self.hops_on_path * self.receipt_bytes_per_packet_per_hop

    @property
    def bandwidth_overhead(self) -> float:
        """Receipt bytes relative to data bytes."""
        return self.receipt_bytes_per_packet / self.mean_packet_size

    @property
    def aggregate_only_bytes_per_packet(self) -> float:
        """Receipt bytes per packet counting aggregate receipts only.

        This is the arithmetic behind the paper's "0.2 bytes per packet /
        0.046% overhead" figure, which does not charge the per-sample records
        to the bandwidth budget; the full accounting (including sample
        records) is :attr:`receipt_bytes_per_packet`.
        """
        return self.hops_on_path * self.aggregate_receipt_bytes / self.packets_per_aggregate

    @property
    def aggregate_only_bandwidth_overhead(self) -> float:
        """Aggregate-only receipt bytes relative to data bytes (the 0.046%)."""
        return self.aggregate_only_bytes_per_packet / self.mean_packet_size


@dataclass(frozen=True)
class ResourceProfile:
    """A domain's combined resource profile for a given tuning choice."""

    memory: CollectorMemoryModel = CollectorMemoryModel()
    processing: PerPacketProcessingModel = PerPacketProcessingModel()
    bandwidth: BandwidthOverheadModel = BandwidthOverheadModel()

    def summary(self) -> dict[str, float]:
        """A flat summary dictionary, convenient for tabulating sweeps."""
        return {
            "monitoring_cache_bytes": float(self.memory.monitoring_cache_bytes),
            "temp_buffer_bytes": float(self.memory.temp_buffer_bytes),
            "total_memory_bytes": float(self.memory.total_bytes),
            "memory_accesses_per_packet": float(
                self.processing.total_memory_accesses_per_packet
            ),
            "receipt_bytes_per_packet": self.bandwidth.receipt_bytes_per_packet,
            "bandwidth_overhead": self.bandwidth.bandwidth_overhead,
        }
