"""Receipt dissemination.

The paper assumes (Assumption 2) "there exists a way for a domain in path P
to disseminate receipts to all other domains in P, such that the authenticity
and integrity of each received receipt is guaranteed" — e.g. an HTTPS
administrative web site.  :class:`ReceiptBus` is the in-memory stand-in for
that channel: domains publish their HOP reports, and any *on-path* domain may
retrieve them; off-path observers get nothing, reflecting the privacy rule
that "a receipt is made available only to the domains that observed the
corresponding traffic".

Integrity is modelled by the bus storing the published report objects
verbatim (a publishing domain can publish dishonest content, but nobody can
tamper with another domain's published receipts in transit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.hop import HOPReport
from repro.net.prefixes import PrefixPair
from repro.net.topology import Domain, HOPPath

__all__ = ["MeshReceiptBus", "ReceiptBus", "report_for_pair"]


def report_for_pair(report: HOPReport, pair: PrefixPair) -> HOPReport:
    """The slice of a HOP's report that concerns one prefix pair.

    Receipts carry their :class:`~repro.core.receipts.PathID`, whose prefix
    pair identifies the path they aggregate — the per-(prefix-pair)
    aggregation of Section 2.  Filtering a shared HOP's report down to one
    pair recovers exactly the receipts an isolated single-path run of that
    HOP would have produced.
    """
    return HOPReport(
        hop_id=report.hop_id,
        sample_receipts=tuple(
            receipt
            for receipt in report.sample_receipts
            if receipt.path_id.prefix_pair == pair
        ),
        aggregate_receipts=tuple(
            receipt
            for receipt in report.aggregate_receipts
            if receipt.path_id.prefix_pair == pair
        ),
    )


@dataclass
class _Publication:
    """One published report with its publisher recorded."""

    publisher: str
    report: HOPReport


class _PublicationChannel:
    """The shared publication core of the receipt buses.

    Holds the published reports and enforces the one rule common to every
    channel: the publishing domain must own the reporting HOP.  Subclasses
    provide the HOP-ownership map and any additional admission rules.
    """

    def __init__(self) -> None:
        self._owners: dict[int, str] = {}
        self._publications: list[_Publication] = []

    def _publish_owned(self, name: str, report: HOPReport) -> None:
        owner = self._owners.get(report.hop_id)
        if owner != name:
            raise PermissionError(
                f"domain {name!r} cannot publish receipts for HOP {report.hop_id} "
                f"(owned by {owner!r})"
            )
        self._publications.append(_Publication(publisher=name, report=report))

    @property
    def publication_count(self) -> int:
        """Number of reports published so far."""
        return len(self._publications)

    @property
    def total_bytes(self) -> int:
        """Total bytes of receipts carried by the bus."""
        return sum(publication.report.wire_bytes for publication in self._publications)


class ReceiptBus(_PublicationChannel):
    """An authenticated, path-scoped receipt distribution channel."""

    def __init__(self, path: HOPPath) -> None:
        super().__init__()
        self.path = path
        self._on_path = {domain.name for domain in path.domains}
        self._owners = {hop.hop_id: hop.domain.name for hop in path.hops}

    def publish(self, publisher: Domain | str, report: HOPReport) -> None:
        """Publish one HOP report.

        Only domains on the path may publish (a domain cannot produce receipts
        for traffic it never observed), and the publishing domain must own the
        reporting HOP.
        """
        name = publisher.name if isinstance(publisher, Domain) else publisher
        if name not in self._on_path:
            raise PermissionError(f"domain {name!r} is not on path {self.path}")
        self._publish_owned(name, report)

    def reports_visible_to(self, observer: Domain | str) -> list[HOPReport]:
        """All reports an observer is entitled to retrieve.

        Every domain that observed the path's traffic (i.e. every on-path
        domain) sees all receipts for that path; anybody else sees nothing.
        """
        name = observer.name if isinstance(observer, Domain) else observer
        if name not in self._on_path:
            return []
        return [publication.report for publication in self._publications]

    def reports_from(self, publisher: Domain | str) -> list[HOPReport]:
        """All reports published by one domain."""
        name = publisher.name if isinstance(publisher, Domain) else publisher
        return [
            publication.report
            for publication in self._publications
            if publication.publisher == name
        ]


class MeshReceiptBus(_PublicationChannel):
    """The receipt channel of a mesh: many paths, shared HOPs, one bus.

    Publishing is validated against HOP ownership exactly as on the
    single-path :class:`ReceiptBus`.  Retrieval is *per path*: a domain asks
    for the receipts of one prefix pair, and gets them only if it is on that
    pair's path — each report sliced down to that pair
    (:func:`report_for_pair`), honouring the paper's privacy rule that a
    receipt is made available only to the domains that observed the
    corresponding traffic.
    """

    def __init__(self, paths: Sequence[HOPPath]) -> None:
        super().__init__()
        self.paths = tuple(paths)
        if not self.paths:
            raise ValueError("a mesh receipt bus needs at least one path")
        self._path_by_pair: dict[PrefixPair, HOPPath] = {}
        for path in self.paths:
            if path.prefix_pair in self._path_by_pair:
                raise ValueError(
                    f"duplicate prefix pair {path.prefix_pair} across mesh paths"
                )
            self._path_by_pair[path.prefix_pair] = path
            for hop in path.hops:
                self._owners[hop.hop_id] = hop.domain.name

    def publish(self, publisher: Domain | str, report: HOPReport) -> None:
        """Publish one HOP report (the publisher must own the reporting HOP)."""
        name = publisher.name if isinstance(publisher, Domain) else publisher
        if report.hop_id not in self._owners:
            raise PermissionError(
                f"HOP {report.hop_id} is on none of the mesh's paths"
            )
        self._publish_owned(name, report)

    def path_for(self, pair: PrefixPair) -> HOPPath:
        """The mesh path keyed by a prefix pair (KeyError when unknown)."""
        return self._path_by_pair[pair]

    def reports_visible_to(
        self, observer: Domain | str, pair: PrefixPair
    ) -> list[HOPReport]:
        """One path's receipts, as visible to ``observer``.

        Only domains on the pair's path see anything, and what they see is
        each on-path HOP's report filtered down to the pair — never the
        receipts the shared HOPs produced for *other* paths' traffic.
        """
        name = observer.name if isinstance(observer, Domain) else observer
        path = self._path_by_pair.get(pair)
        if path is None or name not in {domain.name for domain in path.domains}:
            return []
        on_path = {hop.hop_id for hop in path.hops}
        return [
            report_for_pair(publication.report, pair)
            for publication in self._publications
            if publication.report.hop_id in on_path
        ]
