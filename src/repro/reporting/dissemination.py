"""Receipt dissemination.

The paper assumes (Assumption 2) "there exists a way for a domain in path P
to disseminate receipts to all other domains in P, such that the authenticity
and integrity of each received receipt is guaranteed" — e.g. an HTTPS
administrative web site.  :class:`ReceiptBus` is the in-memory stand-in for
that channel: domains publish their HOP reports, and any *on-path* domain may
retrieve them; off-path observers get nothing, reflecting the privacy rule
that "a receipt is made available only to the domains that observed the
corresponding traffic".

Integrity is modelled by the bus storing the published report objects
verbatim (a publishing domain can publish dishonest content, but nobody can
tamper with another domain's published receipts in transit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hop import HOPReport
from repro.net.topology import Domain, HOPPath

__all__ = ["ReceiptBus"]


@dataclass
class _Publication:
    """One published report with its publisher recorded."""

    publisher: str
    report: HOPReport


class ReceiptBus:
    """An authenticated, path-scoped receipt distribution channel."""

    def __init__(self, path: HOPPath) -> None:
        self.path = path
        self._on_path = {domain.name for domain in path.domains}
        self._publications: list[_Publication] = []

    def publish(self, publisher: Domain | str, report: HOPReport) -> None:
        """Publish one HOP report.

        Only domains on the path may publish (a domain cannot produce receipts
        for traffic it never observed), and the publishing domain must own the
        reporting HOP.
        """
        name = publisher.name if isinstance(publisher, Domain) else publisher
        if name not in self._on_path:
            raise PermissionError(f"domain {name!r} is not on path {self.path}")
        owner = next(
            (hop.domain.name for hop in self.path.hops if hop.hop_id == report.hop_id),
            None,
        )
        if owner != name:
            raise PermissionError(
                f"domain {name!r} cannot publish receipts for HOP {report.hop_id} "
                f"(owned by {owner!r})"
            )
        self._publications.append(_Publication(publisher=name, report=report))

    def reports_visible_to(self, observer: Domain | str) -> list[HOPReport]:
        """All reports an observer is entitled to retrieve.

        Every domain that observed the path's traffic (i.e. every on-path
        domain) sees all receipts for that path; anybody else sees nothing.
        """
        name = observer.name if isinstance(observer, Domain) else observer
        if name not in self._on_path:
            return []
        return [publication.report for publication in self._publications]

    def reports_from(self, publisher: Domain | str) -> list[HOPReport]:
        """All reports published by one domain."""
        name = publisher.name if isinstance(publisher, Domain) else publisher
        return [
            publication.report
            for publication in self._publications
            if publication.publisher == name
        ]

    @property
    def publication_count(self) -> int:
        """Number of reports published so far."""
        return len(self._publications)

    @property
    def total_bytes(self) -> int:
        """Total bytes of receipts carried by the bus."""
        return sum(publication.report.wire_bytes for publication in self._publications)
