"""Receipt dissemination, storage and the Section 7.1 overhead model."""

from repro.reporting.dissemination import ReceiptBus
from repro.reporting.overhead import (
    BandwidthOverheadModel,
    CollectorMemoryModel,
    PerPacketProcessingModel,
    ResourceProfile,
)
from repro.reporting.receipt_store import ReceiptStore
from repro.reporting.serialization import (
    decode_report,
    encode_report,
    report_from_json,
    report_to_json,
)

__all__ = [
    "BandwidthOverheadModel",
    "CollectorMemoryModel",
    "PerPacketProcessingModel",
    "ReceiptBus",
    "ReceiptStore",
    "ResourceProfile",
    "decode_report",
    "encode_report",
    "report_from_json",
    "report_to_json",
]
