"""Receipt serialization.

The paper assumes receipts are disseminated over an authenticated channel
(e.g. HTTPS from an administrative web site) but leaves the wire format open.
This module provides two interchangeable encodings so the dissemination layer
can actually ship receipts between implementations:

* a **JSON** encoding — human-readable, convenient for web-style dissemination
  and debugging;
* a **compact binary** encoding — fixed-width fields close to the byte budget
  the Section 7.1 overhead analysis assumes (4-byte packet digests, sub-
  millisecond-resolution timestamps), used when receipt volume matters.

Both encodings round-trip every receipt type exactly (up to the documented
timestamp quantization of the binary format), and both are covered by unit and
property-based tests.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Mapping

from repro.core.hop import HOPReport
from repro.core.receipts import AggregateReceipt, PathID, SampleReceipt, SampleRecord
from repro.net.prefixes import OriginPrefix, PrefixPair

__all__ = [
    "receipt_to_dict",
    "receipt_from_dict",
    "report_to_json",
    "report_from_json",
    "encode_report",
    "decode_report",
    "canonical_receipts",
    "receipts_digest",
    "BinaryFormatError",
]

_MAGIC = b"VPM1"
_SAMPLE_KIND = 1
_AGGREGATE_KIND = 2
# Binary timestamps are microseconds in an unsigned 64-bit field.
_TIME_SCALE = 1e6


class BinaryFormatError(ValueError):
    """Raised when a binary receipt blob cannot be decoded."""


# ---------------------------------------------------------------------------
# JSON encoding
# ---------------------------------------------------------------------------


def _path_id_to_dict(path_id: PathID) -> dict[str, Any]:
    return {
        "source_prefix": str(path_id.prefix_pair.source),
        "destination_prefix": str(path_id.prefix_pair.destination),
        "reporting_hop": path_id.reporting_hop,
        "previous_hop": path_id.previous_hop,
        "next_hop": path_id.next_hop,
        "max_diff": path_id.max_diff,
    }


def _path_id_from_dict(payload: dict[str, Any]) -> PathID:
    prefix_pair = PrefixPair(
        source=OriginPrefix.parse(payload["source_prefix"]),
        destination=OriginPrefix.parse(payload["destination_prefix"]),
    )
    return PathID(
        prefix_pair=prefix_pair,
        reporting_hop=int(payload["reporting_hop"]),
        previous_hop=payload["previous_hop"],
        next_hop=payload["next_hop"],
        max_diff=float(payload["max_diff"]),
    )


def receipt_to_dict(receipt: SampleReceipt | AggregateReceipt) -> dict[str, Any]:
    """Convert a receipt into a JSON-serializable dictionary."""
    if isinstance(receipt, SampleReceipt):
        return {
            "kind": "samples",
            "path_id": _path_id_to_dict(receipt.path_id),
            "sampling_threshold": receipt.sampling_threshold,
            "samples": [[record.pkt_id, record.time] for record in receipt.samples],
        }
    if isinstance(receipt, AggregateReceipt):
        return {
            "kind": "aggregate",
            "path_id": _path_id_to_dict(receipt.path_id),
            "first_pkt_id": receipt.first_pkt_id,
            "last_pkt_id": receipt.last_pkt_id,
            "pkt_count": receipt.pkt_count,
            "start_time": receipt.start_time,
            "end_time": receipt.end_time,
            "time_sum": receipt.time_sum,
            "trans_before": list(receipt.trans_before),
            "trans_after": list(receipt.trans_after),
        }
    raise TypeError(f"not a receipt: {receipt!r}")


def receipt_from_dict(payload: dict[str, Any]) -> SampleReceipt | AggregateReceipt:
    """Inverse of :func:`receipt_to_dict`."""
    kind = payload.get("kind")
    path_id = _path_id_from_dict(payload["path_id"])
    if kind == "samples":
        return SampleReceipt(
            path_id=path_id,
            samples=tuple(
                SampleRecord(pkt_id=int(pkt_id), time=float(time))
                for pkt_id, time in payload["samples"]
            ),
            sampling_threshold=payload.get("sampling_threshold"),
        )
    if kind == "aggregate":
        return AggregateReceipt(
            path_id=path_id,
            first_pkt_id=int(payload["first_pkt_id"]),
            last_pkt_id=int(payload["last_pkt_id"]),
            pkt_count=int(payload["pkt_count"]),
            start_time=float(payload["start_time"]),
            end_time=float(payload["end_time"]),
            time_sum=float(payload["time_sum"]),
            trans_before=tuple(int(value) for value in payload["trans_before"]),
            trans_after=tuple(int(value) for value in payload["trans_after"]),
        )
    raise ValueError(f"unknown receipt kind {kind!r}")


def report_to_json(report: HOPReport, indent: int | None = None) -> str:
    """Serialize a full HOP report to JSON."""
    payload = {
        "hop_id": report.hop_id,
        "sample_receipts": [receipt_to_dict(receipt) for receipt in report.sample_receipts],
        "aggregate_receipts": [
            receipt_to_dict(receipt) for receipt in report.aggregate_receipts
        ],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def report_from_json(text: str) -> HOPReport:
    """Inverse of :func:`report_to_json`."""
    payload = json.loads(text)
    return HOPReport(
        hop_id=int(payload["hop_id"]),
        sample_receipts=tuple(
            receipt_from_dict(entry) for entry in payload["sample_receipts"]
        ),
        aggregate_receipts=tuple(
            receipt_from_dict(entry) for entry in payload["aggregate_receipts"]
        ),
    )


# ---------------------------------------------------------------------------
# Compact binary encoding
# ---------------------------------------------------------------------------


def _encode_time(value: float) -> int:
    if value < 0:
        raise BinaryFormatError(f"binary format cannot encode negative time {value}")
    return int(round(value * _TIME_SCALE))


def _encode_path_id(path_id: PathID) -> bytes:
    def hop_field(value: int | None) -> int:
        return 0xFFFFFFFF if value is None else value

    return struct.pack(
        ">IBIBIIIQ",
        path_id.prefix_pair.source.network,
        path_id.prefix_pair.source.length,
        path_id.prefix_pair.destination.network,
        path_id.prefix_pair.destination.length,
        path_id.reporting_hop,
        hop_field(path_id.previous_hop),
        hop_field(path_id.next_hop),
        _encode_time(path_id.max_diff),
    )


_PATH_ID_STRUCT = struct.Struct(">IBIBIIIQ")


def _decode_path_id(blob: bytes, offset: int) -> tuple[PathID, int]:
    try:
        (
            source_network,
            source_length,
            destination_network,
            destination_length,
            reporting_hop,
            previous_hop,
            next_hop,
            max_diff_us,
        ) = _PATH_ID_STRUCT.unpack_from(blob, offset)
    except struct.error as exc:
        raise BinaryFormatError(f"truncated PathID at offset {offset}") from exc
    prefix_pair = PrefixPair(
        source=OriginPrefix(network=source_network, length=source_length),
        destination=OriginPrefix(network=destination_network, length=destination_length),
    )
    path_id = PathID(
        prefix_pair=prefix_pair,
        reporting_hop=reporting_hop,
        previous_hop=None if previous_hop == 0xFFFFFFFF else previous_hop,
        next_hop=None if next_hop == 0xFFFFFFFF else next_hop,
        max_diff=max_diff_us / _TIME_SCALE,
    )
    return path_id, offset + _PATH_ID_STRUCT.size


def encode_report(report: HOPReport) -> bytes:
    """Encode a HOP report into the compact binary format."""
    chunks: list[bytes] = [_MAGIC, struct.pack(">IHH", report.hop_id,
                                               len(report.sample_receipts),
                                               len(report.aggregate_receipts))]
    for receipt in report.sample_receipts:
        chunks.append(struct.pack(">B", _SAMPLE_KIND))
        chunks.append(_encode_path_id(receipt.path_id))
        threshold = receipt.sampling_threshold
        chunks.append(struct.pack(">BQ", threshold is not None, threshold or 0))
        chunks.append(struct.pack(">I", len(receipt.samples)))
        for record in receipt.samples:
            chunks.append(struct.pack(">QQ", record.pkt_id, _encode_time(record.time)))
    for receipt in report.aggregate_receipts:
        chunks.append(struct.pack(">B", _AGGREGATE_KIND))
        chunks.append(_encode_path_id(receipt.path_id))
        chunks.append(
            struct.pack(
                ">QQIQQQ",
                receipt.first_pkt_id,
                receipt.last_pkt_id,
                receipt.pkt_count,
                _encode_time(receipt.start_time),
                _encode_time(receipt.end_time),
                _encode_time(receipt.time_sum),
            )
        )
        chunks.append(struct.pack(">II", len(receipt.trans_before), len(receipt.trans_after)))
        for value in receipt.trans_before + receipt.trans_after:
            chunks.append(struct.pack(">Q", value))
    return b"".join(chunks)


def decode_report(blob: bytes) -> HOPReport:
    """Decode a blob produced by :func:`encode_report`."""
    if blob[:4] != _MAGIC:
        raise BinaryFormatError("missing VPM magic header")
    try:
        hop_id, sample_count, aggregate_count = struct.unpack_from(">IHH", blob, 4)
    except struct.error as exc:
        raise BinaryFormatError("truncated report header") from exc
    offset = 4 + 8

    sample_receipts: list[SampleReceipt] = []
    aggregate_receipts: list[AggregateReceipt] = []
    total = sample_count + aggregate_count
    for _ in range(total):
        try:
            (kind,) = struct.unpack_from(">B", blob, offset)
        except struct.error as exc:
            raise BinaryFormatError(f"truncated receipt at offset {offset}") from exc
        offset += 1
        path_id, offset = _decode_path_id(blob, offset)
        if kind == _SAMPLE_KIND:
            has_threshold, threshold = struct.unpack_from(">BQ", blob, offset)
            offset += 9
            (count,) = struct.unpack_from(">I", blob, offset)
            offset += 4
            records = []
            for _ in range(count):
                pkt_id, time_us = struct.unpack_from(">QQ", blob, offset)
                offset += 16
                records.append(SampleRecord(pkt_id=pkt_id, time=time_us / _TIME_SCALE))
            sample_receipts.append(
                SampleReceipt(
                    path_id=path_id,
                    samples=tuple(records),
                    sampling_threshold=threshold if has_threshold else None,
                )
            )
        elif kind == _AGGREGATE_KIND:
            (
                first_pkt_id,
                last_pkt_id,
                pkt_count,
                start_us,
                end_us,
                sum_us,
            ) = struct.unpack_from(">QQIQQQ", blob, offset)
            offset += struct.calcsize(">QQIQQQ")
            before_count, after_count = struct.unpack_from(">II", blob, offset)
            offset += 8
            trans = []
            for _ in range(before_count + after_count):
                (value,) = struct.unpack_from(">Q", blob, offset)
                offset += 8
                trans.append(value)
            aggregate_receipts.append(
                AggregateReceipt(
                    path_id=path_id,
                    first_pkt_id=first_pkt_id,
                    last_pkt_id=last_pkt_id,
                    pkt_count=pkt_count,
                    start_time=start_us / _TIME_SCALE,
                    end_time=end_us / _TIME_SCALE,
                    time_sum=sum_us / _TIME_SCALE,
                    trans_before=tuple(trans[:before_count]),
                    trans_after=tuple(trans[before_count:]),
                )
            )
        else:
            raise BinaryFormatError(f"unknown receipt kind {kind} at offset {offset}")

    return HOPReport(
        hop_id=hop_id,
        sample_receipts=tuple(sample_receipts),
        aggregate_receipts=tuple(aggregate_receipts),
    )


# ---------------------------------------------------------------------------
# Canonical (engine-comparable) form
# ---------------------------------------------------------------------------


def canonical_receipts(reports: Mapping[int, HOPReport]) -> dict[str, Any]:
    """Receipts of every HOP in a canonical, JSON-stable form.

    Timestamps are rendered as exact float hex so the form is bit-faithful;
    ``time_sum`` is rounded to its documented 10-significant-digit tolerance —
    the one field whose float accumulation order legitimately differs between
    the scalar, batch and streaming engines (and between shard counts).
    Everything else — sample sets and order, thresholds, aggregate boundaries,
    packet counts, AggTrans windows — is engine-invariant, so two engines (or
    an interrupted-and-resumed campaign interval and an uninterrupted one)
    agree on this form byte-for-byte.  Shared by the conformance suite and the
    campaign run store's receipt digests.
    """
    canonical: dict[str, Any] = {}
    for hop_id in sorted(reports):
        report = reports[hop_id]
        canonical[str(hop_id)] = {
            "samples": [
                {
                    "path": str(receipt.path_id.prefix_pair),
                    "reporting_hop": receipt.path_id.reporting_hop,
                    "threshold": receipt.sampling_threshold,
                    "records": [
                        [record.pkt_id, record.time.hex()] for record in receipt.samples
                    ],
                }
                for receipt in report.sample_receipts
            ],
            "aggregates": [
                {
                    "first_pkt_id": receipt.first_pkt_id,
                    "last_pkt_id": receipt.last_pkt_id,
                    "pkt_count": receipt.pkt_count,
                    "start_time": receipt.start_time.hex(),
                    "end_time": receipt.end_time.hex(),
                    "time_sum": f"{receipt.time_sum:.9e}",
                    "trans_before": list(receipt.trans_before),
                    "trans_after": list(receipt.trans_after),
                }
                for receipt in report.aggregate_receipts
            ],
        }
    return canonical


def receipts_digest(reports: Mapping[int, HOPReport]) -> str:
    """Stable hex digest of every HOP's receipts in canonical form.

    Equal digests mean equal receipts up to the documented ``time_sum``
    tolerance — the auditable per-interval fingerprint a campaign run store
    records so a customer can later prove which receipts a verdict rests on.
    """
    payload = json.dumps(
        canonical_receipts(reports), sort_keys=True, separators=(",", ":")
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()
