"""Per-domain receipt storage.

A :class:`ReceiptStore` is what a domain's processor module writes into and
what its operators (or an automated verifier) later query: receipts indexed by
reporting HOP and by path, with simple retention accounting so the memory cost
of keeping receipts around (part of the Section 7.1 tunability story) can be
inspected.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.hop import HOPReport
from repro.core.receipts import AggregateReceipt, SampleReceipt
from repro.net.prefixes import PrefixPair

__all__ = ["ReceiptStore"]


@dataclass(frozen=True)
class _StoreStats:
    """Summary of a store's contents."""

    reports: int
    sample_receipts: int
    aggregate_receipts: int
    sample_records: int
    stored_bytes: int


class ReceiptStore:
    """Indexes HOP reports by reporting HOP and by path."""

    def __init__(self) -> None:
        self._by_hop: dict[int, list[HOPReport]] = defaultdict(list)
        self._sample_by_path: dict[PrefixPair, list[SampleReceipt]] = defaultdict(list)
        self._aggregate_by_path: dict[PrefixPair, list[AggregateReceipt]] = defaultdict(list)
        self._report_count = 0

    def add(self, report: HOPReport) -> None:
        """Store one HOP report."""
        self._by_hop[report.hop_id].append(report)
        self._report_count += 1
        for receipt in report.sample_receipts:
            self._sample_by_path[receipt.path_id.prefix_pair].append(receipt)
        for receipt in report.aggregate_receipts:
            self._aggregate_by_path[receipt.path_id.prefix_pair].append(receipt)

    def reports_for_hop(self, hop_id: int) -> list[HOPReport]:
        """All reports produced by one HOP."""
        return list(self._by_hop.get(hop_id, []))

    def sample_receipts_for_path(self, prefix_pair: PrefixPair) -> list[SampleReceipt]:
        """All sample receipts stored for one path."""
        return list(self._sample_by_path.get(prefix_pair, []))

    def aggregate_receipts_for_path(self, prefix_pair: PrefixPair) -> list[AggregateReceipt]:
        """All aggregate receipts stored for one path."""
        return list(self._aggregate_by_path.get(prefix_pair, []))

    def paths(self) -> list[PrefixPair]:
        """All paths with stored receipts."""
        return sorted(set(self._sample_by_path) | set(self._aggregate_by_path))

    def stats(self) -> _StoreStats:
        """Content summary (receipt counts and stored bytes)."""
        sample_receipts = sum(len(receipts) for receipts in self._sample_by_path.values())
        aggregate_receipts = sum(
            len(receipts) for receipts in self._aggregate_by_path.values()
        )
        sample_records = sum(
            len(receipt.samples)
            for receipts in self._sample_by_path.values()
            for receipt in receipts
        )
        stored_bytes = sum(
            receipt.wire_bytes
            for receipts in self._sample_by_path.values()
            for receipt in receipts
        ) + sum(
            receipt.wire_bytes
            for receipts in self._aggregate_by_path.values()
            for receipt in receipts
        )
        return _StoreStats(
            reports=self._report_count,
            sample_receipts=sample_receipts,
            aggregate_receipts=aggregate_receipts,
            sample_records=sample_records,
            stored_bytes=stored_bytes,
        )

    def clear(self) -> None:
        """Drop all stored receipts (end of a retention period)."""
        self._by_hop.clear()
        self._sample_by_path.clear()
        self._aggregate_by_path.clear()
        self._report_count = 0
