"""Packet-loss models.

The paper's evaluation "introduces loss" into a trace using the Gilbert-Elliott
model [9], a two-state Markov chain with a *good* state (low loss) and a *bad*
state (high loss) that produces the bursty loss patterns seen on congested
links.  We implement that model, plus independent (Bernoulli) loss and a
no-loss model, all behind a common :class:`LossModel` interface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import RNGStateMixin, make_rng
from repro.util.validation import check_probability

__all__ = [
    "LossModel",
    "NoLossModel",
    "BernoulliLossModel",
    "GilbertElliottLossModel",
]


class LossModel(RNGStateMixin):
    """Decides, packet by packet, whether a packet is dropped.

    ``streamable`` declares that consecutive :meth:`drops`/:meth:`drops_batch`
    calls over a split packet sequence draw the same RNG stream (and reach the
    same states) as one whole-sequence call.  That is true by construction for
    the base per-packet implementation and for every built-in model; a custom
    ``drops_batch`` override whose draw pattern depends on the call size must
    set it ``False`` to be excluded from the streaming engine.
    """

    streamable: bool = True

    def drops(self, packet_index: int) -> bool:
        """Return ``True`` if the ``packet_index``-th packet is dropped."""
        raise NotImplementedError

    def drops_batch(self, first_index: int, count: int) -> np.ndarray:
        """Vectorized :meth:`drops` for ``count`` consecutive packets.

        The base implementation advances the model packet by packet, so any
        subclass is batch-capable with identical results; memoryless models
        override it with a single array draw from the same RNG stream.
        """
        return np.fromiter(
            (self.drops(first_index + offset) for offset in range(count)),
            dtype=bool,
            count=count,
        )

    def expected_loss_rate(self) -> float:
        """Return the model's long-run expected loss rate."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset internal state (e.g. the Markov chain) to its initial value."""


@dataclass
class NoLossModel(LossModel):
    """A lossless segment."""

    def drops(self, packet_index: int) -> bool:
        return False

    def drops_batch(self, first_index: int, count: int) -> np.ndarray:
        return np.zeros(count, dtype=bool)

    def expected_loss_rate(self) -> float:
        return 0.0


class BernoulliLossModel(LossModel):
    """Independent per-packet loss with a fixed probability."""

    def __init__(self, loss_rate: float, seed: int | np.random.Generator | None = None) -> None:
        self.loss_rate = check_probability("loss_rate", loss_rate)
        self._rng = make_rng(seed)

    def drops(self, packet_index: int) -> bool:
        if self.loss_rate == 0.0:
            return False
        return bool(self._rng.random() < self.loss_rate)

    def drops_batch(self, first_index: int, count: int) -> np.ndarray:
        if self.loss_rate == 0.0:
            return np.zeros(count, dtype=bool)
        # Generator.random draws the same stream batched or one at a time.
        return self._rng.random(count) < self.loss_rate

    def expected_loss_rate(self) -> float:
        return self.loss_rate

    def __repr__(self) -> str:
        return f"BernoulliLossModel(loss_rate={self.loss_rate!r})"


class GilbertElliottLossModel(LossModel):
    """The Gilbert-Elliott two-state Markov loss model.

    The chain alternates between a *good* state ``G`` and a *bad* state ``B``.
    In state ``G`` packets are lost with probability ``loss_good`` (often 0);
    in state ``B`` with probability ``loss_bad``.  Transition probabilities
    ``p`` (G→B) and ``r`` (B→G) control burst length: the mean bad-burst
    length is ``1/r`` packets.

    The convenience constructor :meth:`from_target_rate` chooses ``p`` for a
    desired long-run loss rate given ``r`` and the per-state loss
    probabilities, which is how the benchmarks sweep loss from 0 to 50%.
    """

    def __init__(
        self,
        p: float,
        r: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.p = check_probability("p", p)
        self.r = check_probability("r", r)
        self.loss_good = check_probability("loss_good", loss_good)
        self.loss_bad = check_probability("loss_bad", loss_bad)
        self._rng = make_rng(seed)
        self._in_bad_state = False

    @classmethod
    def from_target_rate(
        cls,
        target_rate: float,
        mean_burst_length: float = 8.0,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> "GilbertElliottLossModel":
        """Build a model whose long-run loss rate equals ``target_rate``.

        ``mean_burst_length`` is the expected number of packets spent in the
        bad state per excursion (``1/r``).  The stationary probability of the
        bad state is ``pi_B = p / (p + r)``; the long-run loss rate is
        ``pi_G * loss_good + pi_B * loss_bad``, which we invert for ``p``.
        """
        check_probability("target_rate", target_rate)
        if mean_burst_length < 1.0:
            raise ValueError(
                f"mean_burst_length must be >= 1 packet, got {mean_burst_length}"
            )
        if target_rate == 0.0:
            return cls(p=0.0, r=1.0, loss_good=0.0, loss_bad=loss_bad, seed=seed)
        if not loss_good <= target_rate <= loss_bad:
            raise ValueError(
                f"target_rate {target_rate} is not achievable with "
                f"loss_good={loss_good}, loss_bad={loss_bad}"
            )
        r = 1.0 / mean_burst_length
        # Solve pi_B from target = (1-pi_B)*loss_good + pi_B*loss_bad.
        pi_bad = (target_rate - loss_good) / (loss_bad - loss_good)
        if pi_bad >= 1.0:
            p = 1.0
        else:
            p = r * pi_bad / (1.0 - pi_bad)
        return cls(p=min(p, 1.0), r=r, loss_good=loss_good, loss_bad=loss_bad, seed=seed)

    def drops(self, packet_index: int) -> bool:
        # Advance the state machine once per packet, then draw the loss
        # outcome from the per-state loss probability.
        if self._in_bad_state:
            if self._rng.random() < self.r:
                self._in_bad_state = False
        else:
            if self._rng.random() < self.p:
                self._in_bad_state = True
        loss_probability = self.loss_bad if self._in_bad_state else self.loss_good
        if loss_probability <= 0.0:
            return False
        return bool(self._rng.random() < loss_probability)

    def expected_loss_rate(self) -> float:
        if self.p == 0.0:
            return self.loss_good
        pi_bad = self.p / (self.p + self.r) if (self.p + self.r) > 0 else 1.0
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    def reset(self) -> None:
        self._in_bad_state = False

    def state_snapshot(self) -> dict:
        state = super().state_snapshot()
        state["in_bad_state"] = bool(self._in_bad_state)
        return state

    def state_restore(self, state) -> None:
        super().state_restore(state)
        self._in_bad_state = bool(state["in_bad_state"])

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLossModel(p={self.p!r}, r={self.r!r}, "
            f"loss_good={self.loss_good!r}, loss_bad={self.loss_bad!r})"
        )
