"""Synthetic packet traces.

This module is the substitution for the CAIDA Tier-1 traces the paper uses
(documented in ``DESIGN.md``).  A :class:`SyntheticTrace` produces the packet
sequence observed on one HOP path — i.e. "all packets that carry a given
source and destination origin-prefix pair", which is exactly what the paper
extracts from its traces — with:

* a configurable aggregate packet rate (the paper's headline sequence runs at
  100,000 packets per second);
* many interleaved five-tuple flows with heavy-tailed sizes;
* the three-mode packet-size distribution averaging ~400 bytes;
* strictly increasing send timestamps with Poisson-like spacing.

The VPM algorithms consume only header bytes, observation order and
timestamps, so this synthetic sequence exercises the same code paths as a real
backbone trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.net.prefixes import OriginPrefix, PrefixPair
from repro.traffic.flows import FlowGenerator, FlowGeneratorConfig
from repro.util.rng import make_rng
from repro.util.validation import check_positive

__all__ = ["TraceConfig", "SyntheticTrace", "default_prefix_pair"]


def default_prefix_pair() -> PrefixPair:
    """The prefix pair used by examples and benchmarks unless overridden."""
    return PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    )


@dataclass(frozen=True)
class TraceConfig:
    """Configuration of a synthetic trace.

    Attributes
    ----------
    packet_count:
        Number of packets in the sequence.
    packets_per_second:
        Aggregate packet rate of the sequence (100,000/s in the paper's
        evaluation sequence).
    arrival_process:
        ``"poisson"`` for exponential inter-arrivals, ``"cbr"`` for constant
        spacing, or ``"mmpp"`` for a two-state modulated Poisson process that
        adds burstiness.
    payload_bytes:
        Number of payload bytes attached to each packet (only a prefix is ever
        hashed; 16 keeps memory bounded).
    """

    packet_count: int = 100_000
    packets_per_second: float = 100_000.0
    arrival_process: str = "poisson"
    payload_bytes: int = 16
    flow_config: FlowGeneratorConfig = FlowGeneratorConfig()

    def __post_init__(self) -> None:
        check_positive("packet_count", self.packet_count)
        check_positive("packets_per_second", self.packets_per_second)
        if self.arrival_process not in ("poisson", "cbr", "mmpp"):
            raise ValueError(
                "arrival_process must be 'poisson', 'cbr' or 'mmpp'; "
                f"got {self.arrival_process!r}"
            )
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {self.payload_bytes}")

    @property
    def duration(self) -> float:
        """Nominal duration of the trace in seconds."""
        return self.packet_count / self.packets_per_second


class SyntheticTrace:
    """Generates the packet sequence of one HOP path.

    Parameters
    ----------
    config:
        Trace parameters; see :class:`TraceConfig`.
    prefix_pair:
        The (source, destination) origin prefixes the packets carry.
    seed:
        Seed for all randomness in the trace.
    """

    def __init__(
        self,
        config: TraceConfig | None = None,
        prefix_pair: PrefixPair | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config or TraceConfig()
        self.prefix_pair = prefix_pair or default_prefix_pair()
        self._rng = make_rng(seed)

    # -- timestamp synthesis ----------------------------------------------

    def _interarrival_times(self, count: int) -> np.ndarray:
        config = self.config
        mean_gap = 1.0 / config.packets_per_second
        rng = self._rng
        if config.arrival_process == "cbr":
            return np.full(count, mean_gap)
        if config.arrival_process == "poisson":
            return rng.exponential(mean_gap, size=count)
        # MMPP(2): alternate between a calm state (0.5x rate) and a bursty
        # state (3x rate); dwell times are geometric in packets.
        gaps = np.empty(count, dtype=float)
        index = 0
        bursty = False
        while index < count:
            dwell = int(rng.geometric(0.002))
            dwell = min(dwell, count - index)
            rate_multiplier = 3.0 if bursty else 0.5
            gaps[index : index + dwell] = rng.exponential(
                mean_gap / rate_multiplier, size=dwell
            )
            index += dwell
            bursty = not bursty
        # Normalize so the overall mean rate matches the configured rate.
        gaps *= mean_gap / gaps.mean()
        return gaps

    # -- packet synthesis ---------------------------------------------------

    def _draw_plan(self) -> "_TracePlan":
        """Draw *all* of the trace's randomness, in one fixed order.

        The plan holds the full per-packet draw columns (flow assignment,
        timestamps, sizes, payload words) plus the per-flow lookup tables.
        Materializing packets from the plan is a pure function of (plan,
        range), so chunked materialization (:meth:`iter_batches`) is
        bit-identical to one full materialization (:meth:`packet_batch`)
        regardless of the chunk size.  The RNG draw order here is the
        historical ``packet_batch()`` order, so seeds reproduce the same
        traffic they always have.
        """
        config = self.config
        rng = self._rng
        count = config.packet_count

        flow_generator = FlowGenerator(
            self.prefix_pair, config=config.flow_config, seed=rng
        )
        flows = flow_generator.generate(count)

        # Assign each packet slot to a flow proportionally to flow size, then
        # interleave flows by drawing a random permutation of slots — this
        # approximates the natural interleaving of concurrent flows without a
        # per-flow arrival process (which the protocol is insensitive to).
        flow_ids = np.repeat(
            np.asarray([flow.flow_id for flow in flows]),
            np.asarray([flow.packet_count for flow in flows]),
        )[:count]
        rng.shuffle(flow_ids)

        send_times = np.cumsum(self._interarrival_times(count))
        sizes = flow_generator.draw_packet_sizes(count).astype(np.uint16)

        flow_id_index = np.asarray([flow.flow_id for flow in flows])
        order = np.argsort(flow_id_index)
        payload_words = rng.integers(0, 1 << 32, size=count, dtype=np.uint64)

        return _TracePlan(
            count=count,
            payload_bytes=config.payload_bytes,
            # Flow ids are sequential small ints; stored narrow (40% of the
            # plan's footprint at 10M packets) and widened per chunk.
            flow_ids=flow_ids.astype(np.int32),
            send_times=send_times,
            sizes=sizes,
            # Values are < 2**32; stored narrow and widened per chunk.
            payload_words=payload_words.astype(np.uint32),
            sorted_flow_id_index=flow_id_index[order],
            order=order,
            flow_src_ip=np.asarray([flow.src_ip for flow in flows], dtype=np.uint32),
            flow_dst_ip=np.asarray([flow.dst_ip for flow in flows], dtype=np.uint32),
            flow_src_port=np.asarray([flow.src_port for flow in flows], dtype=np.uint16),
            flow_dst_port=np.asarray([flow.dst_port for flow in flows], dtype=np.uint16),
            flow_protocol=np.asarray([flow.protocol for flow in flows], dtype=np.uint8),
            flow_counts=np.zeros(len(flows), dtype=np.int64),
        )

    def _materialize(self, plan: "_TracePlan", start: int, stop: int) -> PacketBatch:
        """Materialize packets ``[start, stop)`` of the plan as a batch.

        Consumes no randomness; advances the plan's per-flow sequence
        counters, so ranges must be materialized consecutively from 0.
        """
        flow_ids = plan.flow_ids[start:stop].astype(np.int64)
        count = len(flow_ids)

        # Map each packet to its flow's five-tuple by position in the flow list.
        positions = plan.order[np.searchsorted(plan.sorted_flow_id_index, flow_ids)]
        src_ip = plan.flow_src_ip[positions]
        dst_ip = plan.flow_dst_ip[positions]
        src_port = plan.flow_src_port[positions]
        dst_port = plan.flow_dst_port[positions]
        protocol = plan.flow_protocol[positions]

        # Per-flow sequence counters feed ip_id so repeated packets of a flow
        # still have distinct digests.  Vectorized rank-within-group: sort by
        # flow id (stable, so observation order is preserved within a flow)
        # and number each packet within its run of equal ids, then offset by
        # how many packets of the flow earlier ranges already produced.
        stable = np.argsort(flow_ids, kind="stable")
        sorted_ids = flow_ids[stable]
        is_start = np.empty(count, dtype=bool)
        if count:
            is_start[0] = True
            is_start[1:] = sorted_ids[1:] != sorted_ids[:-1]
        run_starts = np.flatnonzero(is_start)
        ranks = np.arange(count) - np.repeat(
            run_starts, np.diff(np.append(run_starts, count))
        )
        sequence = np.empty(count, dtype=np.int64)
        sequence[stable] = ranks
        sequence += plan.flow_counts[positions]
        plan.flow_counts += np.bincount(
            positions, minlength=len(plan.flow_counts)
        ).astype(np.int64)
        ip_id = ((flow_ids * 7919 + sequence) & 0xFFFF).astype(np.uint16)

        # Payload: an 8-byte big-endian random word, zero-padded/truncated to
        # the configured payload size (the digest reads at most a prefix).
        payload = np.zeros((count, plan.payload_bytes), dtype=np.uint8)
        word_bytes = (
            plan.payload_words[start:stop]
            .astype(np.uint64)
            .astype(">u8")
            .view(np.uint8)
            .reshape(count, 8)
        )
        payload[:, : min(8, plan.payload_bytes)] = word_bytes[:, : plan.payload_bytes]

        return PacketBatch(
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            protocol=protocol,
            ip_id=ip_id,
            length=plan.sizes[start:stop],
            payload=payload,
            uid=np.arange(start, stop, dtype=np.int64),
            send_time=plan.send_times[start:stop],
            flow_id=flow_ids,
        )

    def packet_batch(self) -> PacketBatch:
        """Generate the full packet sequence as a columnar batch.

        This is the fast path for driving millions of packets per run: the
        whole sequence is synthesized with array operations and never
        materializes per-packet objects.  :meth:`packets` is defined as
        ``packet_batch().to_packets()``, so both representations are always
        value-identical for the same seed.
        """
        plan = self._draw_plan()
        return self._materialize(plan, 0, plan.count)

    def iter_batches(self, chunk_size: int, start_chunk: int = 0) -> Iterator[PacketBatch]:
        """Yield the trace as consecutive chunks of at most ``chunk_size``.

        The concatenation of the yielded chunks is **bit-identical** to
        :meth:`packet_batch` for every chunk size: all randomness is drawn up
        front (in the same order as a full materialization) and each chunk is
        a pure slice of that plan.  This is what lets the streaming engine
        drive a scenario in bounded memory while reproducing the batch
        engine's results exactly.

        ``start_chunk`` seeks to a chunk boundary: the iterator yields chunk
        ``start_chunk`` onward, bit-identical to the tail of a full pass.
        Seeking only fast-forwards the plan's per-flow sequence counters
        (a vectorized count over the skipped flow-id prefix) — it never
        materializes the skipped packets, so a shard starting deep into a
        long trace pays a small fraction of the replay it would otherwise.

        Like :meth:`packet_batch`, this consumes the trace's RNG — use a
        fresh :class:`SyntheticTrace` (same seed) per generation pass.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if start_chunk < 0:
            raise ValueError(f"start_chunk must be >= 0, got {start_chunk}")
        plan = self._draw_plan()
        start = min(start_chunk * chunk_size, plan.count)
        self._advance_flow_counts(plan, start)
        for chunk_start in range(start, plan.count, chunk_size):
            yield self._materialize(
                plan, chunk_start, min(chunk_start + chunk_size, plan.count)
            )

    @staticmethod
    def _advance_flow_counts(plan: "_TracePlan", stop: int) -> None:
        """Advance ``plan.flow_counts`` past packets ``[0, stop)`` unmaterialized.

        Equivalent to the counter updates ``_materialize`` would perform over
        that prefix, at the cost of one bincount per span.  Spans are bounded
        so the transient index arrays stay small on multi-million packet
        plans.
        """
        span = 1 << 20
        for start in range(0, stop, span):
            flow_ids = plan.flow_ids[start : min(start + span, stop)].astype(np.int64)
            positions = plan.order[
                np.searchsorted(plan.sorted_flow_id_index, flow_ids)
            ]
            plan.flow_counts += np.bincount(
                positions, minlength=len(plan.flow_counts)
            ).astype(np.int64)

    def packets(self) -> list[Packet]:
        """Generate the full packet sequence, ordered by send time."""
        return self.packet_batch().to_packets()

    def __repr__(self) -> str:
        return (
            f"SyntheticTrace(packets={self.config.packet_count}, "
            f"rate={self.config.packets_per_second}/s, pair={self.prefix_pair})"
        )


@dataclass
class _TracePlan:
    """The fully drawn randomness of one trace (see ``_draw_plan``)."""

    count: int
    payload_bytes: int
    flow_ids: np.ndarray
    send_times: np.ndarray
    sizes: np.ndarray
    payload_words: np.ndarray
    sorted_flow_id_index: np.ndarray
    order: np.ndarray
    flow_src_ip: np.ndarray
    flow_dst_ip: np.ndarray
    flow_src_port: np.ndarray
    flow_dst_port: np.ndarray
    flow_protocol: np.ndarray
    flow_counts: np.ndarray
