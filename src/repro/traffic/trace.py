"""Synthetic packet traces.

This module is the substitution for the CAIDA Tier-1 traces the paper uses
(documented in ``DESIGN.md``).  A :class:`SyntheticTrace` produces the packet
sequence observed on one HOP path — i.e. "all packets that carry a given
source and destination origin-prefix pair", which is exactly what the paper
extracts from its traces — with:

* a configurable aggregate packet rate (the paper's headline sequence runs at
  100,000 packets per second);
* many interleaved five-tuple flows with heavy-tailed sizes;
* the three-mode packet-size distribution averaging ~400 bytes;
* strictly increasing send timestamps with Poisson-like spacing.

The VPM algorithms consume only header bytes, observation order and
timestamps, so this synthetic sequence exercises the same code paths as a real
backbone trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.net.prefixes import OriginPrefix, PrefixPair
from repro.traffic.flows import FlowGenerator, FlowGeneratorConfig
from repro.util.rng import make_rng
from repro.util.validation import check_positive

__all__ = ["TraceConfig", "SyntheticTrace", "default_prefix_pair"]


def default_prefix_pair() -> PrefixPair:
    """The prefix pair used by examples and benchmarks unless overridden."""
    return PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    )


@dataclass(frozen=True)
class TraceConfig:
    """Configuration of a synthetic trace.

    Attributes
    ----------
    packet_count:
        Number of packets in the sequence.
    packets_per_second:
        Aggregate packet rate of the sequence (100,000/s in the paper's
        evaluation sequence).
    arrival_process:
        ``"poisson"`` for exponential inter-arrivals, ``"cbr"`` for constant
        spacing, or ``"mmpp"`` for a two-state modulated Poisson process that
        adds burstiness.
    payload_bytes:
        Number of payload bytes attached to each packet (only a prefix is ever
        hashed; 16 keeps memory bounded).
    """

    packet_count: int = 100_000
    packets_per_second: float = 100_000.0
    arrival_process: str = "poisson"
    payload_bytes: int = 16
    flow_config: FlowGeneratorConfig = FlowGeneratorConfig()

    def __post_init__(self) -> None:
        check_positive("packet_count", self.packet_count)
        check_positive("packets_per_second", self.packets_per_second)
        if self.arrival_process not in ("poisson", "cbr", "mmpp"):
            raise ValueError(
                "arrival_process must be 'poisson', 'cbr' or 'mmpp'; "
                f"got {self.arrival_process!r}"
            )
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {self.payload_bytes}")

    @property
    def duration(self) -> float:
        """Nominal duration of the trace in seconds."""
        return self.packet_count / self.packets_per_second


class SyntheticTrace:
    """Generates the packet sequence of one HOP path.

    Parameters
    ----------
    config:
        Trace parameters; see :class:`TraceConfig`.
    prefix_pair:
        The (source, destination) origin prefixes the packets carry.
    seed:
        Seed for all randomness in the trace.
    """

    def __init__(
        self,
        config: TraceConfig | None = None,
        prefix_pair: PrefixPair | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config or TraceConfig()
        self.prefix_pair = prefix_pair or default_prefix_pair()
        self._rng = make_rng(seed)

    # -- timestamp synthesis ----------------------------------------------

    def _interarrival_times(self, count: int) -> np.ndarray:
        config = self.config
        mean_gap = 1.0 / config.packets_per_second
        rng = self._rng
        if config.arrival_process == "cbr":
            return np.full(count, mean_gap)
        if config.arrival_process == "poisson":
            return rng.exponential(mean_gap, size=count)
        # MMPP(2): alternate between a calm state (0.5x rate) and a bursty
        # state (3x rate); dwell times are geometric in packets.
        gaps = np.empty(count, dtype=float)
        index = 0
        bursty = False
        while index < count:
            dwell = int(rng.geometric(0.002))
            dwell = min(dwell, count - index)
            rate_multiplier = 3.0 if bursty else 0.5
            gaps[index : index + dwell] = rng.exponential(
                mean_gap / rate_multiplier, size=dwell
            )
            index += dwell
            bursty = not bursty
        # Normalize so the overall mean rate matches the configured rate.
        gaps *= mean_gap / gaps.mean()
        return gaps

    # -- packet synthesis ---------------------------------------------------

    def packet_batch(self) -> PacketBatch:
        """Generate the full packet sequence as a columnar batch.

        This is the fast path for driving millions of packets per run: the
        whole sequence is synthesized with array operations and never
        materializes per-packet objects.  :meth:`packets` is defined as
        ``packet_batch().to_packets()``, so both representations are always
        value-identical for the same seed.
        """
        config = self.config
        rng = self._rng
        count = config.packet_count

        flow_generator = FlowGenerator(
            self.prefix_pair, config=config.flow_config, seed=rng
        )
        flows = flow_generator.generate(count)

        # Assign each packet slot to a flow proportionally to flow size, then
        # interleave flows by drawing a random permutation of slots — this
        # approximates the natural interleaving of concurrent flows without a
        # per-flow arrival process (which the protocol is insensitive to).
        flow_ids = np.concatenate(
            [np.full(flow.packet_count, flow.flow_id) for flow in flows]
        )[:count]
        rng.shuffle(flow_ids)

        send_times = np.cumsum(self._interarrival_times(count))
        sizes = flow_generator.draw_packet_sizes(count)

        # Map each packet to its flow's five-tuple by position in the flow list.
        flow_id_index = np.asarray([flow.flow_id for flow in flows])
        order = np.argsort(flow_id_index)
        positions = order[np.searchsorted(flow_id_index[order], flow_ids)]
        src_ip = np.asarray([flow.src_ip for flow in flows], dtype=np.uint32)[positions]
        dst_ip = np.asarray([flow.dst_ip for flow in flows], dtype=np.uint32)[positions]
        src_port = np.asarray([flow.src_port for flow in flows], dtype=np.uint16)[positions]
        dst_port = np.asarray([flow.dst_port for flow in flows], dtype=np.uint16)[positions]
        protocol = np.asarray([flow.protocol for flow in flows], dtype=np.uint8)[positions]

        # Per-flow sequence counters feed ip_id so repeated packets of a flow
        # still have distinct digests.  Vectorized rank-within-group: sort by
        # flow id (stable, so observation order is preserved within a flow)
        # and number each packet within its run of equal ids.
        stable = np.argsort(flow_ids, kind="stable")
        sorted_ids = flow_ids[stable]
        is_start = np.empty(count, dtype=bool)
        if count:
            is_start[0] = True
            is_start[1:] = sorted_ids[1:] != sorted_ids[:-1]
        run_starts = np.flatnonzero(is_start)
        ranks = np.arange(count) - np.repeat(
            run_starts, np.diff(np.append(run_starts, count))
        )
        sequence = np.empty(count, dtype=np.int64)
        sequence[stable] = ranks
        ip_id = ((flow_ids.astype(np.int64) * 7919 + sequence) & 0xFFFF).astype(np.uint16)

        # Payload: an 8-byte big-endian random word, zero-padded/truncated to
        # the configured payload size (the digest reads at most a prefix).
        payload_words = rng.integers(0, 1 << 32, size=count, dtype=np.uint64)
        payload = np.zeros((count, config.payload_bytes), dtype=np.uint8)
        word_bytes = payload_words.astype(">u8").view(np.uint8).reshape(count, 8)
        payload[:, : min(8, config.payload_bytes)] = word_bytes[:, : config.payload_bytes]

        return PacketBatch(
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            protocol=protocol,
            ip_id=ip_id,
            length=sizes.astype(np.uint16),
            payload=payload,
            uid=np.arange(count, dtype=np.int64),
            send_time=send_times,
            flow_id=flow_ids.astype(np.int64),
        )

    def packets(self) -> list[Packet]:
        """Generate the full packet sequence, ordered by send time."""
        return self.packet_batch().to_packets()

    def __repr__(self) -> str:
        return (
            f"SyntheticTrace(packets={self.config.packet_count}, "
            f"rate={self.config.packets_per_second}/s, pair={self.prefix_pair})"
        )
