"""Synthetic packet traces.

This module is the substitution for the CAIDA Tier-1 traces the paper uses
(documented in ``DESIGN.md``).  A :class:`SyntheticTrace` produces the packet
sequence observed on one HOP path — i.e. "all packets that carry a given
source and destination origin-prefix pair", which is exactly what the paper
extracts from its traces — with:

* a configurable aggregate packet rate (the paper's headline sequence runs at
  100,000 packets per second);
* many interleaved five-tuple flows with heavy-tailed sizes;
* the three-mode packet-size distribution averaging ~400 bytes;
* strictly increasing send timestamps with Poisson-like spacing.

The VPM algorithms consume only header bytes, observation order and
timestamps, so this synthetic sequence exercises the same code paths as a real
backbone trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.packet import Packet, PacketHeaders
from repro.net.prefixes import OriginPrefix, PrefixPair
from repro.traffic.flows import FlowGenerator, FlowGeneratorConfig
from repro.util.rng import make_rng
from repro.util.validation import check_positive

__all__ = ["TraceConfig", "SyntheticTrace", "default_prefix_pair"]


def default_prefix_pair() -> PrefixPair:
    """The prefix pair used by examples and benchmarks unless overridden."""
    return PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    )


@dataclass(frozen=True)
class TraceConfig:
    """Configuration of a synthetic trace.

    Attributes
    ----------
    packet_count:
        Number of packets in the sequence.
    packets_per_second:
        Aggregate packet rate of the sequence (100,000/s in the paper's
        evaluation sequence).
    arrival_process:
        ``"poisson"`` for exponential inter-arrivals, ``"cbr"`` for constant
        spacing, or ``"mmpp"`` for a two-state modulated Poisson process that
        adds burstiness.
    payload_bytes:
        Number of payload bytes attached to each packet (only a prefix is ever
        hashed; 16 keeps memory bounded).
    """

    packet_count: int = 100_000
    packets_per_second: float = 100_000.0
    arrival_process: str = "poisson"
    payload_bytes: int = 16
    flow_config: FlowGeneratorConfig = FlowGeneratorConfig()

    def __post_init__(self) -> None:
        check_positive("packet_count", self.packet_count)
        check_positive("packets_per_second", self.packets_per_second)
        if self.arrival_process not in ("poisson", "cbr", "mmpp"):
            raise ValueError(
                "arrival_process must be 'poisson', 'cbr' or 'mmpp'; "
                f"got {self.arrival_process!r}"
            )
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {self.payload_bytes}")

    @property
    def duration(self) -> float:
        """Nominal duration of the trace in seconds."""
        return self.packet_count / self.packets_per_second


class SyntheticTrace:
    """Generates the packet sequence of one HOP path.

    Parameters
    ----------
    config:
        Trace parameters; see :class:`TraceConfig`.
    prefix_pair:
        The (source, destination) origin prefixes the packets carry.
    seed:
        Seed for all randomness in the trace.
    """

    def __init__(
        self,
        config: TraceConfig | None = None,
        prefix_pair: PrefixPair | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config or TraceConfig()
        self.prefix_pair = prefix_pair or default_prefix_pair()
        self._rng = make_rng(seed)

    # -- timestamp synthesis ----------------------------------------------

    def _interarrival_times(self, count: int) -> np.ndarray:
        config = self.config
        mean_gap = 1.0 / config.packets_per_second
        rng = self._rng
        if config.arrival_process == "cbr":
            return np.full(count, mean_gap)
        if config.arrival_process == "poisson":
            return rng.exponential(mean_gap, size=count)
        # MMPP(2): alternate between a calm state (0.5x rate) and a bursty
        # state (3x rate); dwell times are geometric in packets.
        gaps = np.empty(count, dtype=float)
        index = 0
        bursty = False
        while index < count:
            dwell = int(rng.geometric(0.002))
            dwell = min(dwell, count - index)
            rate_multiplier = 3.0 if bursty else 0.5
            gaps[index : index + dwell] = rng.exponential(
                mean_gap / rate_multiplier, size=dwell
            )
            index += dwell
            bursty = not bursty
        # Normalize so the overall mean rate matches the configured rate.
        gaps *= mean_gap / gaps.mean()
        return gaps

    # -- packet synthesis ---------------------------------------------------

    def packets(self) -> list[Packet]:
        """Generate the full packet sequence, ordered by send time."""
        config = self.config
        rng = self._rng
        count = config.packet_count

        flow_generator = FlowGenerator(
            self.prefix_pair, config=config.flow_config, seed=rng
        )
        flows = flow_generator.generate(count)

        # Assign each packet slot to a flow proportionally to flow size, then
        # interleave flows by drawing a random permutation of slots — this
        # approximates the natural interleaving of concurrent flows without a
        # per-flow arrival process (which the protocol is insensitive to).
        flow_ids = np.concatenate(
            [np.full(flow.packet_count, flow.flow_id) for flow in flows]
        )[:count]
        rng.shuffle(flow_ids)

        send_times = np.cumsum(self._interarrival_times(count))
        sizes = flow_generator.draw_packet_sizes(count)
        flows_by_id = {flow.flow_id: flow for flow in flows}

        # Per-flow sequence counters feed ip_id so repeated packets of a flow
        # still have distinct digests.
        per_flow_counter: dict[int, int] = {}
        packets: list[Packet] = []
        payload_words = rng.integers(0, 1 << 32, size=count, dtype=np.uint64)
        for index in range(count):
            flow = flows_by_id[int(flow_ids[index])]
            sequence = per_flow_counter.get(flow.flow_id, 0)
            per_flow_counter[flow.flow_id] = sequence + 1
            headers = PacketHeaders(
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                protocol=flow.protocol,
                ip_id=(flow.flow_id * 7919 + sequence) & 0xFFFF,
                length=int(sizes[index]),
            )
            payload = int(payload_words[index]).to_bytes(8, "big") + bytes(
                max(0, config.payload_bytes - 8)
            )
            packets.append(
                Packet(
                    headers=headers,
                    payload=payload[: config.payload_bytes],
                    uid=index,
                    send_time=float(send_times[index]),
                    flow_id=flow.flow_id,
                )
            )
        return packets

    def __repr__(self) -> str:
        return (
            f"SyntheticTrace(packets={self.config.packet_count}, "
            f"rate={self.config.packets_per_second}/s, pair={self.prefix_pair})"
        )
