"""Traffic substrate: synthetic traces, flows, loss/delay/reordering models."""

from repro.traffic.delay_models import (
    CongestionDelayModel,
    ConstantDelayModel,
    DelayModel,
    EmpiricalDelayModel,
    JitterDelayModel,
)
from repro.traffic.flows import Flow, FlowGenerator, FlowGeneratorConfig
from repro.traffic.loss_models import (
    BernoulliLossModel,
    GilbertElliottLossModel,
    LossModel,
    NoLossModel,
)
from repro.traffic.reordering import NoReordering, ReorderingModel, WindowReordering
from repro.traffic.trace import SyntheticTrace, TraceConfig
from repro.traffic.workload import WorkloadSpec, make_workload, register_workload

__all__ = [
    "BernoulliLossModel",
    "CongestionDelayModel",
    "ConstantDelayModel",
    "DelayModel",
    "EmpiricalDelayModel",
    "Flow",
    "FlowGenerator",
    "FlowGeneratorConfig",
    "GilbertElliottLossModel",
    "JitterDelayModel",
    "LossModel",
    "NoLossModel",
    "NoReordering",
    "ReorderingModel",
    "SyntheticTrace",
    "TraceConfig",
    "WindowReordering",
    "WorkloadSpec",
    "make_workload",
    "register_workload",
]
