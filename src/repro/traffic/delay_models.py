"""Per-packet delay models for a domain's internal segment.

The paper generates delay ground truth by running ns-2 congestion scenarios
("long-lived TCP or UDP flows compete for/saturate the bandwidth of a
bottleneck link") and reports results for the scenario with the highest delay
variance at the shortest time scale — a bursty, high-rate UDP flow.  Our
substitution is :class:`CongestionDelayModel`, which drives the discrete-event
bottleneck-queue simulator in :mod:`repro.simulation.queueing` and exposes the
resulting per-packet delay series through the same :class:`DelayModel`
interface as the simpler analytic models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import RNGStateMixin, make_rng
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "DelayModel",
    "ConstantDelayModel",
    "JitterDelayModel",
    "EmpiricalDelayModel",
    "CongestionDelayModel",
]


class DelayModel(RNGStateMixin):
    """Produces the delay a domain adds to each packet of a sequence.

    ``streamable`` declares whether :meth:`delays` may be called on
    consecutive chunks of one arrival sequence with the same result as a
    single whole-sequence call.  That holds whenever the model's randomness is
    drawn sequentially, one fixed vector draw per call (the built-in analytic
    models); models that derive delays from the *whole* arrival series at once
    (:class:`CongestionDelayModel`) must set it ``False``, which excludes them
    from the streaming execution engine.

    Streamable models also inherit ``state_snapshot``/``state_restore`` from
    :class:`~repro.util.rng.RNGStateMixin`; a model with sequential state
    beyond ``self._rng`` (e.g. :class:`EmpiricalDelayModel`'s replay cursor)
    must extend both so stream checkpoints capture it.
    """

    streamable: bool = True

    def delays(self, arrival_times: np.ndarray) -> np.ndarray:
        """Return the per-packet delay (seconds) for packets arriving at
        ``arrival_times`` (seconds, monotone non-decreasing)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantDelayModel(DelayModel):
    """Every packet experiences the same fixed delay."""

    delay: float = 1e-3

    def __post_init__(self) -> None:
        check_non_negative("delay", self.delay)

    def delays(self, arrival_times: np.ndarray) -> np.ndarray:
        return np.full(len(arrival_times), self.delay, dtype=float)


class JitterDelayModel(DelayModel):
    """A base delay plus non-negative random jitter (truncated normal)."""

    def __init__(
        self,
        base_delay: float = 1e-3,
        jitter_std: float = 0.5e-3,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.base_delay = check_non_negative("base_delay", base_delay)
        self.jitter_std = check_non_negative("jitter_std", jitter_std)
        self._rng = make_rng(seed)

    def delays(self, arrival_times: np.ndarray) -> np.ndarray:
        jitter = np.abs(self._rng.normal(0.0, self.jitter_std, size=len(arrival_times)))
        return self.base_delay + jitter

    def __repr__(self) -> str:
        return (
            f"JitterDelayModel(base_delay={self.base_delay!r}, "
            f"jitter_std={self.jitter_std!r})"
        )


@dataclass
class EmpiricalDelayModel(DelayModel):
    """Replays a precomputed delay series (cycled if shorter than the input).

    Useful for feeding externally generated delay traces — the role the ns-2
    output plays in the paper — into the path simulation.  The model keeps a
    position cursor: consecutive :meth:`delays` calls continue the series
    where the previous call stopped, so feeding a sequence in chunks replays
    exactly the delays one whole-sequence call would (call :meth:`reset` to
    rewind for an independent run).
    """

    series: np.ndarray = field(default_factory=lambda: np.array([1e-3]))

    def __post_init__(self) -> None:
        self.series = np.asarray(self.series, dtype=float)
        if self.series.ndim != 1 or len(self.series) == 0:
            raise ValueError("series must be a non-empty 1-D array of delays")
        if np.any(self.series < 0):
            raise ValueError("delays must be non-negative")
        self._cursor = 0

    def delays(self, arrival_times: np.ndarray) -> np.ndarray:
        count = len(arrival_times)
        period = len(self.series)
        offsets = (self._cursor + np.arange(count)) % period
        self._cursor = (self._cursor + count) % period
        return self.series[offsets]

    def reset(self) -> None:
        """Rewind the replay cursor to the start of the series."""
        self._cursor = 0

    def state_snapshot(self) -> dict:
        state = super().state_snapshot()
        state["cursor"] = int(self._cursor)
        return state

    def state_restore(self, state) -> None:
        super().state_restore(state)
        self._cursor = int(state["cursor"])


class CongestionDelayModel(DelayModel):
    """Delay produced by a congested bottleneck inside the domain.

    The monitored packet sequence shares a FIFO bottleneck queue with
    configurable cross-traffic (long-lived AIMD TCP flows and/or a bursty
    high-rate UDP flow).  The queue is simulated by
    :class:`repro.simulation.queueing.BottleneckQueue`; this class translates
    arrival timestamps into per-packet queueing + transmission delays.

    Parameters
    ----------
    bottleneck_bandwidth_bps:
        Bottleneck link speed in bits per second.  ``None`` (the default)
        sizes the bottleneck automatically so the monitored sequence alone
        occupies ~60% of it, leaving room for cross-traffic to congest it.
    propagation_delay:
        Fixed propagation delay through the domain (seconds).
    monitored_packet_size:
        Size (bytes) assumed for monitored packets when the caller supplies
        only arrival times.
    scenario:
        ``"udp-burst"`` (the paper's headline scenario: a bursty, high-rate
        UDP flow), ``"tcp-mix"`` (long-lived TCP flows) or ``"mixed"``.
    utilization:
        Target offered load of the cross-traffic relative to the bottleneck
        capacity; values near or above 1.0 produce standing queues and the
        delay spikes the paper's Figure 2 scenario exhibits.

    Each :meth:`delays` call simulates a fresh congestion scenario over the
    *whole* arrival series, so the model is not ``streamable`` — chunked calls
    would congest each chunk independently.
    """

    streamable = False

    def __init__(
        self,
        bottleneck_bandwidth_bps: float | None = None,
        propagation_delay: float = 2e-3,
        monitored_packet_size: int = 400,
        scenario: str = "udp-burst",
        utilization: float = 0.95,
        queue_capacity_packets: int = 2000,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if bottleneck_bandwidth_bps is not None:
            check_positive("bottleneck_bandwidth_bps", bottleneck_bandwidth_bps)
        check_non_negative("propagation_delay", propagation_delay)
        check_positive("monitored_packet_size", monitored_packet_size)
        check_positive("utilization", utilization)
        check_positive("queue_capacity_packets", queue_capacity_packets)
        if scenario not in ("udp-burst", "tcp-mix", "mixed"):
            raise ValueError(
                f"scenario must be one of 'udp-burst', 'tcp-mix', 'mixed'; got {scenario!r}"
            )
        self.bottleneck_bandwidth_bps = (
            float(bottleneck_bandwidth_bps) if bottleneck_bandwidth_bps is not None else None
        )
        self.propagation_delay = float(propagation_delay)
        self.monitored_packet_size = int(monitored_packet_size)
        self.scenario = scenario
        self.utilization = float(utilization)
        self.queue_capacity_packets = int(queue_capacity_packets)
        self._rng = make_rng(seed)

    def delays(self, arrival_times: np.ndarray) -> np.ndarray:
        # Imported here to keep the traffic package import-light and avoid a
        # circular import with the simulation package.
        from repro.simulation.congestion import CongestionScenario

        arrival_times = np.asarray(arrival_times, dtype=float)
        if len(arrival_times) == 0:
            return np.zeros(0, dtype=float)
        scenario = CongestionScenario(
            bandwidth_bps=self.bottleneck_bandwidth_bps,
            scenario=self.scenario,
            utilization=self.utilization,
            queue_capacity_packets=self.queue_capacity_packets,
            seed=self._rng,
        )
        queueing_delays = scenario.monitored_delays(
            arrival_times, packet_size=self.monitored_packet_size
        )
        return queueing_delays + self.propagation_delay

    def __repr__(self) -> str:
        return (
            f"CongestionDelayModel(scenario={self.scenario!r}, "
            f"bandwidth={self.bottleneck_bandwidth_bps!r}, "
            f"utilization={self.utilization!r})"
        )
