"""Packet-reordering models.

The paper assumes (based on the measurement study it cites [10]) that "packets
transmitted more than half a millisecond apart were not reordered", and defines
a per-path *safety inter-arrival threshold* ``J`` such that only packets
observed less than ``J`` apart can be reordered.  :class:`WindowReordering`
implements exactly that: it perturbs packet order only within a bounded time
window, so the assumption VPM's ``AggTrans`` patch-up relies on holds by
construction (and can be deliberately violated in tests by configuring a
window larger than the protocol's ``J``).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import RNGStateMixin, make_rng
from repro.util.validation import check_non_negative, check_probability

__all__ = ["ReorderingModel", "NoReordering", "WindowReordering"]


class ReorderingModel(RNGStateMixin):
    """Permutes the arrival order (and times) of a packet sequence.

    Models define :meth:`perturb` — assign each packet a (possibly perturbed)
    observation time, consuming randomness *sequentially in input order* —
    and inherit :meth:`apply`, which stable-sorts by the perturbed times.
    Because perturbation is per-packet sequential, splitting an input across
    consecutive :meth:`perturb` calls draws the same stream as one call; the
    streaming engine relies on this (and on ``max_lateness``) to reorder a
    chunked stream bit-identically to one whole-trace pass.
    """

    #: Upper bound (seconds) on ``perturb(t) - t``; ``None`` marks a model the
    #: streaming engine cannot bound and therefore cannot stream exactly.
    max_lateness: float | None = None

    def perturb(self, arrival_times: np.ndarray) -> np.ndarray:
        """Per-packet perturbed observation times (same order as the input)."""
        raise NotImplementedError

    def apply(self, arrival_times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Reorder a sequence of arrival times.

        Parameters
        ----------
        arrival_times:
            Monotone non-decreasing arrival times of the original sequence.

        Returns
        -------
        (order, new_times):
            ``order`` is an index array: position ``k`` of the output sequence
            is the packet originally at index ``order[k]``.  ``new_times`` are
            the corresponding (sorted, possibly perturbed) observation times.
        """
        perturbed = self.perturb(np.asarray(arrival_times, dtype=float))
        # Stable sort keeps the original order for untouched packets.
        order = np.argsort(perturbed, kind="stable")
        return order, perturbed[order]


class NoReordering(ReorderingModel):
    """Identity reordering model."""

    max_lateness = 0.0

    def perturb(self, arrival_times: np.ndarray) -> np.ndarray:
        return np.asarray(arrival_times, dtype=float).copy()

    def apply(self, arrival_times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        arrival_times = np.asarray(arrival_times, dtype=float)
        return np.arange(len(arrival_times)), arrival_times.copy()


class WindowReordering(ReorderingModel):
    """Reordering bounded by a time window.

    Each packet is, with probability ``reorder_probability``, given a random
    positive time offset up to ``window`` seconds; the sequence is then
    re-sorted by the perturbed times.  Because the offset never exceeds
    ``window``, two packets can only swap if their original arrival times were
    within ``window`` of each other — the paper's reordering assumption with
    ``J = window``.
    """

    def __init__(
        self,
        window: float = 0.5e-3,
        reorder_probability: float = 0.05,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.window = check_non_negative("window", window)
        self.reorder_probability = check_probability(
            "reorder_probability", reorder_probability
        )
        self._rng = make_rng(seed)

    @property
    def max_lateness(self) -> float:  # type: ignore[override]
        return self.window

    def perturb(self, arrival_times: np.ndarray) -> np.ndarray:
        arrival_times = np.asarray(arrival_times, dtype=float)
        count = len(arrival_times)
        if count == 0 or self.window == 0.0 or self.reorder_probability == 0.0:
            return arrival_times.copy()
        # Two uniform draws per packet, row-major, so consecutive calls over a
        # split input consume the stream exactly like one whole-input call.
        draws = self._rng.random((count, 2))
        affected = draws[:, 0] < self.reorder_probability
        offsets = np.where(affected, draws[:, 1] * self.window, 0.0)
        return arrival_times + offsets

    def __repr__(self) -> str:
        return (
            f"WindowReordering(window={self.window!r}, "
            f"reorder_probability={self.reorder_probability!r})"
        )
