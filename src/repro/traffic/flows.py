"""Flow-level traffic synthesis.

The paper drives its evaluation from CAIDA Tier-1 backbone traces; since those
traces are not redistributable, we synthesize traffic with the statistical
properties the VPM mechanisms are sensitive to:

* many concurrent five-tuples (so digests are diverse and hash-selected
  markers / cutting points are spread uniformly across the stream);
* heavy-tailed flow sizes (a few elephants, many mice), matching backbone
  flow-size distributions;
* a realistic packet-size mix (small ACK-sized, medium, and MTU-sized modes
  averaging roughly 400 bytes, the figure Section 7.1 assumes).

:class:`FlowGenerator` produces :class:`Flow` descriptors; the trace module
expands them into interleaved packet sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.prefixes import PrefixPair
from repro.util.rng import make_rng
from repro.util.validation import check_positive, check_probability

__all__ = ["Flow", "FlowGeneratorConfig", "FlowGenerator", "PACKET_SIZE_MODES"]

# (size in bytes, probability) — a three-mode approximation of the classic
# Internet packet-size distribution: TCP ACKs, default-MSS segments and
# MTU-sized segments.  The mean is ~400 bytes, matching Section 7.1.
PACKET_SIZE_MODES: tuple[tuple[int, float], ...] = (
    (40, 0.50),
    (576, 0.25),
    (1500, 0.25),
)


@dataclass(frozen=True, slots=True)
class Flow:
    """A single five-tuple flow.

    Attributes
    ----------
    flow_id:
        Simulation-unique identifier.
    src_ip, dst_ip, src_port, dst_port, protocol:
        The five-tuple; addresses are drawn from the path's prefix pair.
    packet_count:
        Number of packets the flow contributes.
    start_time:
        Time (seconds) of the flow's first packet.
    mean_interarrival:
        Mean spacing between this flow's packets (seconds).
    """

    flow_id: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int
    packet_count: int
    start_time: float
    mean_interarrival: float

    def __post_init__(self) -> None:
        if self.packet_count <= 0:
            raise ValueError(f"packet_count must be positive, got {self.packet_count}")
        if self.mean_interarrival <= 0:
            raise ValueError(
                f"mean_interarrival must be positive, got {self.mean_interarrival}"
            )


@dataclass(frozen=True)
class FlowGeneratorConfig:
    """Configuration of the flow synthesizer.

    Attributes
    ----------
    mean_flow_size:
        Mean packets per flow.  Flow sizes follow a bounded Pareto whose mean
        is calibrated to this value, producing the heavy tail observed in
        backbone traffic.
    pareto_alpha:
        Tail index of the bounded-Pareto flow-size distribution (1 < α < 2
        gives the classic heavy tail).
    max_flow_size:
        Upper bound on the number of packets in one flow.
    tcp_fraction:
        Fraction of flows carried over TCP (the rest are UDP).
    duration:
        Time span (seconds) over which flows start.
    """

    mean_flow_size: float = 20.0
    pareto_alpha: float = 1.3
    max_flow_size: int = 10_000
    tcp_fraction: float = 0.85
    duration: float = 1.0

    def __post_init__(self) -> None:
        check_positive("mean_flow_size", self.mean_flow_size)
        check_positive("pareto_alpha", self.pareto_alpha)
        check_positive("max_flow_size", self.max_flow_size)
        check_probability("tcp_fraction", self.tcp_fraction)
        check_positive("duration", self.duration)


class FlowGenerator:
    """Synthesizes a population of flows for one (source, destination) prefix pair."""

    def __init__(
        self,
        prefix_pair: PrefixPair,
        config: FlowGeneratorConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.prefix_pair = prefix_pair
        self.config = config or FlowGeneratorConfig()
        self._rng = make_rng(seed)
        self._next_flow_id = 0

    def _flow_sizes(self, count: int) -> np.ndarray:
        """Draw heavy-tailed flow sizes (packets per flow)."""
        config = self.config
        # Bounded Pareto with minimum 1 packet; scale so the mean approximates
        # mean_flow_size, then clip at max_flow_size.
        alpha = config.pareto_alpha
        raw = (self._rng.pareto(alpha, size=count) + 1.0)
        if alpha > 1.0:
            theoretical_mean = alpha / (alpha - 1.0)
        else:
            theoretical_mean = 10.0
        sizes = raw * (config.mean_flow_size / theoretical_mean)
        sizes = np.clip(np.round(sizes), 1, config.max_flow_size)
        return sizes.astype(int)

    def generate(self, total_packets: int) -> list[Flow]:
        """Generate flows whose sizes sum to at least ``total_packets``."""
        if total_packets <= 0:
            raise ValueError(f"total_packets must be positive, got {total_packets}")
        config = self.config
        flows: list[Flow] = []
        generated = 0
        expected_flows = max(4, int(total_packets / config.mean_flow_size))
        while generated < total_packets:
            batch = max(4, expected_flows // 4)
            sizes = self._flow_sizes(batch)
            for size in sizes:
                if generated >= total_packets:
                    break
                size = int(min(size, total_packets - generated)) or 1
                flow = self._make_flow(size)
                flows.append(flow)
                generated += size
        return flows

    def _make_flow(self, packet_count: int) -> Flow:
        config = self.config
        rng = self._rng
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        protocol = 6 if rng.random() < config.tcp_fraction else 17
        start_time = float(rng.uniform(0.0, config.duration))
        # Spread the flow's packets over a window proportional to its size so
        # elephants persist and mice are short-lived.
        flow_span = min(config.duration, 0.01 + 0.002 * packet_count)
        mean_interarrival = max(flow_span / packet_count, 1e-6)
        return Flow(
            flow_id=flow_id,
            src_ip=self.prefix_pair.source.host(int(rng.integers(0, 1 << 16))),
            dst_ip=self.prefix_pair.destination.host(int(rng.integers(0, 1 << 16))),
            src_port=int(rng.integers(1024, 65536)),
            dst_port=int(rng.choice([80, 443, 53, 25, 8080, int(rng.integers(1024, 65536))])),
            protocol=protocol,
            packet_count=packet_count,
            start_time=start_time,
            mean_interarrival=mean_interarrival,
        )

    def draw_packet_sizes(self, count: int) -> np.ndarray:
        """Draw packet sizes from the three-mode Internet size distribution."""
        sizes = np.array([mode for mode, _ in PACKET_SIZE_MODES])
        probabilities = np.array([weight for _, weight in PACKET_SIZE_MODES])
        return self._rng.choice(sizes, size=count, p=probabilities)
