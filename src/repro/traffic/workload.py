"""Named workloads used by the examples and the benchmark harness.

Each experiment in ``DESIGN.md``'s index references one of these workload
specifications, so the benchmarks and the examples share a single definition
of "the paper's packet sequence" instead of re-deriving parameters in several
places.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traffic.flows import FlowGeneratorConfig
from repro.traffic.trace import SyntheticTrace, TraceConfig, default_prefix_pair
from repro.util.validation import check_positive

__all__ = ["WorkloadSpec", "make_workload", "register_workload", "WORKLOADS"]


@dataclass(frozen=True)
class WorkloadSpec:
    """A named traffic workload.

    ``packet_count`` and ``packets_per_second`` determine the sequence; the
    paper's headline sequence is 100,000 packets per second.  Benchmarks use a
    scaled-down ``packet_count`` by default (documented in ``EXPERIMENTS.md``)
    because generating the full sequence in pure Python is slow; the scaling
    factor does not change the shape of any result because all quantities of
    interest are rates or per-packet statistics.
    """

    name: str
    packet_count: int
    packets_per_second: float
    arrival_process: str = "poisson"
    description: str = ""

    def __post_init__(self) -> None:
        check_positive("packet_count", self.packet_count)
        check_positive("packets_per_second", self.packets_per_second)

    def trace_config(self) -> TraceConfig:
        """Materialize the :class:`TraceConfig` for this workload."""
        return TraceConfig(
            packet_count=self.packet_count,
            packets_per_second=self.packets_per_second,
            arrival_process=self.arrival_process,
            flow_config=FlowGeneratorConfig(),
        )


WORKLOADS: dict[str, WorkloadSpec] = {
    "paper-sequence": WorkloadSpec(
        name="paper-sequence",
        packet_count=100_000,
        packets_per_second=100_000.0,
        description="The paper's evaluation sequence: 100k packets at 100k pkt/s.",
    ),
    "bench-sequence": WorkloadSpec(
        name="bench-sequence",
        packet_count=30_000,
        packets_per_second=100_000.0,
        description="Scaled-down sequence for the pytest-benchmark harness.",
    ),
    "smoke-sequence": WorkloadSpec(
        name="smoke-sequence",
        packet_count=3_000,
        packets_per_second=100_000.0,
        description="Tiny sequence for unit and integration tests.",
    ),
    "bursty-sequence": WorkloadSpec(
        name="bursty-sequence",
        packet_count=30_000,
        packets_per_second=100_000.0,
        arrival_process="mmpp",
        description="Bursty (MMPP) arrivals for robustness experiments.",
    ),
}


def register_workload(spec: WorkloadSpec, *, overwrite: bool = False) -> WorkloadSpec:
    """Register a named workload for :func:`make_workload` and ``TrafficSpec``.

    Third parties can add workloads the same way they plug new models into
    :mod:`repro.api.registry`; a registered name is immediately usable as
    ``TrafficSpec(workload=...)`` in declarative experiment specs.
    """
    if not overwrite and spec.name in WORKLOADS:
        raise ValueError(
            f"workload {spec.name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    WORKLOADS[spec.name] = spec
    return spec


def make_workload(name: str, seed: int | None = 0) -> SyntheticTrace:
    """Return a :class:`SyntheticTrace` for a named workload.

    Raises ``KeyError`` with the list of known workloads when the name is
    unknown.
    """
    try:
        spec = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}") from None
    return SyntheticTrace(
        config=spec.trace_config(), prefix_pair=default_prefix_pair(), seed=seed
    )
