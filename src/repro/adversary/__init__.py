"""Adversary models: the threat model of Section 2.1 made executable.

The paper's lying domains "construct their receipts using incomplete or
fabricated information" and may collude; they can only observe traffic that
appears locally.  The strategies here plug into the simulation (forwarding
behaviour) and into the reporting pipeline (receipt fabrication):

* :mod:`repro.adversary.bias` — preferential treatment of a predictable
  measurement set (the attack that breaks Trajectory Sampling ++ and that
  VPM's delay-keyed sampling defeats);
* :mod:`repro.adversary.lying` — a domain that fabricates egress receipts to
  hide its own loss and delay;
* :mod:`repro.adversary.collusion` — a downstream neighbor that covers the
  liar's claims and thereby takes the blame itself;
* :mod:`repro.adversary.marker_drop` — a domain that drops marker packets to
  desynchronize its neighbor's sampling.

All four strategies are registered with the declarative experiment API
(:mod:`repro.api.registry`) under the keys ``"lying"``, ``"colluding"``,
``"biased-treatment"`` and ``"marker-drop"``, so an
:class:`~repro.api.AdversarySpec` can name them without touching this package;
new strategies plug in via :func:`repro.api.register_adversary`.
"""

from repro.adversary.bias import BiasedTreatmentAttack
from repro.adversary.collusion import ColludingDomainAgent
from repro.adversary.lying import LyingDomainAgent, MeshLyingDomainAgent
from repro.adversary.marker_drop import MarkerDropAttack, marker_exposure_rate

__all__ = [
    "BiasedTreatmentAttack",
    "ColludingDomainAgent",
    "LyingDomainAgent",
    "MeshLyingDomainAgent",
    "MarkerDropAttack",
    "marker_exposure_rate",
]
