"""A colluding neighbor covering a liar's claims (Sections 3.1 and 3.2).

Domain ``X`` drops packets but claims (through fabricated egress receipts)
that it delivered them to its downstream neighbor ``N``.  ``N`` may choose to
*cover* the lie: it fabricates its own **ingress** receipts to confirm having
received what ``X`` claims to have delivered (the digests and timestamps are
shared by the colluder — the threat model allows colluding domains to pool
their observations).

The paper's observation is that this does not help the pair for free: ``N``
still has to account for the packets at its egress, where its downstream
neighbor reports honestly, so ``N`` either admits losing them itself — taking
the blame for ``X``'s loss — or pushes the lie further down and is exposed on
its own downstream link.  :class:`ColludingDomainAgent` implements the
blame-absorbing variant (honest egress), which is the rational choice for a
colluder that does not want to be flagged as inconsistent.
"""

from __future__ import annotations

from repro.adversary.lying import LyingDomainAgent
from repro.core.domain import DomainAgent
from repro.core.hop import HOPConfig, HOPReport
from repro.core.receipts import SampleReceipt, SampleRecord
from repro.net.topology import Domain, HOPPath

__all__ = ["ColludingDomainAgent"]


class ColludingDomainAgent(DomainAgent):
    """A downstream neighbor that confirms a liar's fabricated deliveries.

    Parameters
    ----------
    colluding_with:
        The upstream :class:`LyingDomainAgent` whose claims this domain covers.
        Its ``last_fabricated_report`` must have been produced before this
        agent's :meth:`reports` is called (the session runs domains in path
        order, so this holds naturally).
    link_delay:
        The delay this domain pretends the inter-domain link added to the
        covered packets (it must stay within MaxDiff or the cover story
        creates a new inconsistency).
    """

    def __init__(
        self,
        domain: Domain | str,
        path: HOPPath,
        colluding_with: LyingDomainAgent,
        config: HOPConfig | None = None,
        max_diff: float = 1e-3,
        link_delay: float = 0.1e-3,
    ) -> None:
        super().__init__(domain, path, config=config, max_diff=max_diff)
        self.colluding_with = colluding_with
        self.link_delay = float(link_delay)

    def _cover_ingress_report(self, honest_ingress: HOPReport) -> HOPReport:
        liar_report = self.colluding_with.last_fabricated_report
        if liar_report is None:
            return honest_ingress

        ingress_path_id = self.collector(self.hop_ids[0]).states()[0].path_id

        # Sample receipts: confirm exactly the liar's claims.  The colluder
        # must adopt the liar's timestamps (plus a plausible link delay) even
        # for packets it genuinely observed — its own honest timestamps would
        # contradict the liar's hidden delay and trip the MaxDiff check — and
        # it must suppress any extra samples of its own that the liar did not
        # claim, otherwise they would be inconsistent with the liar's receipts.
        claimed_records: dict[int, SampleRecord] = {}
        for receipt in liar_report.sample_receipts:
            for record in receipt.samples:
                claimed_records[record.pkt_id] = SampleRecord(
                    pkt_id=record.pkt_id, time=record.time + self.link_delay
                )
        threshold = None
        for receipt in honest_ingress.sample_receipts:
            threshold = receipt.sampling_threshold
        for receipt in liar_report.sample_receipts:
            if threshold is None:
                threshold = receipt.sampling_threshold
        covered_samples = SampleReceipt(
            path_id=ingress_path_id,
            samples=tuple(sorted(claimed_records.values(), key=lambda record: record.time)),
            sampling_threshold=threshold,
        )

        # Aggregate receipts: echo the liar's claimed counts so the X->N link
        # shows no count mismatch.
        covered_aggregates = tuple(
            receipt.__class__(
                path_id=ingress_path_id,
                first_pkt_id=receipt.first_pkt_id,
                last_pkt_id=receipt.last_pkt_id,
                pkt_count=receipt.pkt_count,
                start_time=receipt.start_time + self.link_delay,
                end_time=receipt.end_time + self.link_delay,
                time_sum=receipt.time_sum + self.link_delay * receipt.pkt_count,
                trans_before=receipt.trans_before,
                trans_after=receipt.trans_after,
            )
            for receipt in liar_report.aggregate_receipts
        )

        return HOPReport(
            hop_id=honest_ingress.hop_id,
            sample_receipts=(covered_samples,) if covered_samples.samples else (),
            aggregate_receipts=covered_aggregates or honest_ingress.aggregate_receipts,
        )

    def reports(self, flush: bool = True) -> dict[int, HOPReport]:
        honest = super().reports(flush=flush)
        ingress_hop_id = self.hop_ids[0]
        honest[ingress_hop_id] = self._cover_ingress_report(honest[ingress_hop_id])
        return honest
