"""A lying domain: fabricated egress receipts (Section 3.1 / Section 4).

The domain drops or delays traffic internally but wants its receipts to say
otherwise.  The strongest lie available under the threat model is to claim
that everything that entered the domain left it promptly: the liar copies its
*ingress* observations (which it genuinely made) into its *egress* receipts,
shifted by a small claimed internal delay.

The point of the reproduction is that this lie cannot survive verification:
the fabricated egress receipts claim delivery of packets (and aggregate
counts) the downstream neighbor never saw, so the verifier's link-consistency
check flags the X→N link, and the liar is exposed to the very neighbor it
implicated.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.domain import DomainAgent
from repro.core.hop import HOPConfig, HOPReport
from repro.core.receipts import (
    AggregateReceipt,
    PathID,
    SampleReceipt,
    SampleRecord,
)
from repro.net.topology import Domain, HOPPath

__all__ = ["LyingDomainAgent", "MeshLyingDomainAgent"]


def _fabricated_samples(
    receipts: Sequence[SampleReceipt],
    egress_path_id: PathID,
    claimed_delay: float,
    hide_delay: bool,
) -> list[SampleReceipt]:
    """Sample receipts re-labelled as the egress's, shifted by the claimed delay."""
    fabricated: list[SampleReceipt] = []
    for receipt in receipts:
        records = tuple(
            SampleRecord(pkt_id=record.pkt_id, time=record.time + claimed_delay)
            if hide_delay
            else record
            for record in receipt.samples
        )
        fabricated.append(
            SampleReceipt(
                path_id=egress_path_id,
                samples=records,
                sampling_threshold=receipt.sampling_threshold,
            )
        )
    return fabricated


def _fabricated_aggregates(
    receipts: Sequence[AggregateReceipt],
    egress_path_id: PathID,
    claimed_delay: float,
) -> list[AggregateReceipt]:
    """Aggregate receipts re-labelled as the egress's, shifted by the claimed delay."""
    return [
        replace(
            receipt,
            path_id=egress_path_id,
            start_time=receipt.start_time + claimed_delay,
            end_time=receipt.end_time + claimed_delay,
            time_sum=receipt.time_sum + claimed_delay * receipt.pkt_count,
        )
        for receipt in receipts
    ]


class LyingDomainAgent(DomainAgent):
    """A domain that hides its internal loss and delay in its egress receipts.

    Parameters
    ----------
    claimed_delay:
        The internal delay (seconds) the domain pretends to have introduced.
    hide_loss:
        Whether to claim delivery of packets it actually dropped (by reusing
        its ingress counts/samples at the egress).
    hide_delay:
        Whether to misreport its internal delay as ``claimed_delay`` instead
        of the truly measured egress timestamps.  (Both default to ``True`` —
        the full "nothing went wrong here" lie.)
    """

    def __init__(
        self,
        domain: Domain | str,
        path: HOPPath,
        config: HOPConfig | None = None,
        max_diff: float = 1e-3,
        claimed_delay: float = 0.5e-3,
        hide_loss: bool = True,
        hide_delay: bool = True,
    ) -> None:
        super().__init__(domain, path, config=config, max_diff=max_diff)
        if len(self.hop_ids) < 2:
            raise ValueError(
                "a lying transit domain needs both an ingress and an egress HOP"
            )
        self.claimed_delay = float(claimed_delay)
        self.hide_loss = bool(hide_loss)
        self.hide_delay = bool(hide_delay)
        self.last_fabricated_report: HOPReport | None = None

    # -- fabrication -----------------------------------------------------------------

    def _egress_path_id(self) -> PathID:
        egress_hop_id = self.hop_ids[-1]
        collector = self.collector(egress_hop_id)
        # The egress collector holds exactly one registered path in this
        # scenario; reuse its PathID so the fabricated receipts look genuine.
        state = collector.states()[0]
        return state.path_id

    def _fabricate_egress_report(
        self, ingress_report: HOPReport, honest_egress: HOPReport
    ) -> HOPReport:
        egress_path_id = self._egress_path_id()
        egress_hop_id = self.hop_ids[-1]

        source_samples = (
            ingress_report.sample_receipts if self.hide_loss else honest_egress.sample_receipts
        )
        fabricated_samples = _fabricated_samples(
            source_samples, egress_path_id, self.claimed_delay, self.hide_delay
        )

        source_aggregates = (
            ingress_report.aggregate_receipts
            if self.hide_loss
            else honest_egress.aggregate_receipts
        )
        fabricated_aggregates = _fabricated_aggregates(
            source_aggregates, egress_path_id, self.claimed_delay
        )

        return HOPReport(
            hop_id=egress_hop_id,
            sample_receipts=tuple(fabricated_samples),
            aggregate_receipts=tuple(fabricated_aggregates),
        )

    # -- reporting --------------------------------------------------------------------

    def reports(self, flush: bool = True) -> dict[int, HOPReport]:
        honest = super().reports(flush=flush)
        ingress_hop_id = self.hop_ids[0]
        egress_hop_id = self.hop_ids[-1]
        fabricated = self._fabricate_egress_report(
            honest[ingress_hop_id], honest[egress_hop_id]
        )
        honest[egress_hop_id] = fabricated
        self.last_fabricated_report = fabricated
        return honest


class MeshLyingDomainAgent(DomainAgent):
    """A lying transit domain crossed by several paths of a mesh.

    The per-path generalization of :class:`LyingDomainAgent`: for *every*
    path on which the domain is a transit domain, the receipts its egress HOP
    produced for that path's prefix pair are replaced by the ingress HOP's
    receipts for the same pair, shifted by ``claimed_delay`` — the same
    "everything that entered left promptly" lie, told once per path.  In a
    mesh the domain's ingress/egress HOPs differ per path, so each path's
    fabrication implicates a *different* downstream link — which is exactly
    what cross-path triangulation
    (:func:`repro.analysis.localization.triangulate_suspects`) exploits.
    """

    def __init__(
        self,
        domain: Domain | str,
        paths: HOPPath | Sequence[HOPPath],
        config: HOPConfig | None = None,
        max_diff: float = 1e-3,
        claimed_delay: float = 0.5e-3,
        hide_loss: bool = True,
        hide_delay: bool = True,
    ) -> None:
        super().__init__(domain, paths, config=config, max_diff=max_diff)
        self._transit_paths = tuple(
            entry for entry in self.paths if len(entry.hops_of(self.domain_name)) >= 2
        )
        if not self._transit_paths:
            raise ValueError(
                f"a lying mesh domain needs an ingress and an egress HOP on at "
                f"least one path; {self.domain_name!r} is a transit domain of none"
            )
        self.claimed_delay = float(claimed_delay)
        self.hide_loss = bool(hide_loss)
        self.hide_delay = bool(hide_delay)

    def reports(self, flush: bool = True) -> dict[int, HOPReport]:
        produced = super().reports(flush=flush)
        for path in self._transit_paths:
            domain_hops = path.hops_of(self.domain_name)
            ingress_id = domain_hops[0].hop_id
            egress_id = domain_hops[-1].hop_id
            pair = path.prefix_pair
            egress_path_id = self.collector(egress_id).path_state(path).path_id

            ingress_report = produced[ingress_id]
            egress_report = produced[egress_id]
            source = ingress_report if self.hide_loss else egress_report
            fabricated_samples = _fabricated_samples(
                [r for r in source.sample_receipts if r.path_id.prefix_pair == pair],
                egress_path_id,
                self.claimed_delay,
                self.hide_delay,
            )
            fabricated_aggregates = _fabricated_aggregates(
                [r for r in source.aggregate_receipts if r.path_id.prefix_pair == pair],
                egress_path_id,
                self.claimed_delay,
            )
            produced[egress_id] = HOPReport(
                hop_id=egress_id,
                sample_receipts=tuple(
                    r
                    for r in egress_report.sample_receipts
                    if r.path_id.prefix_pair != pair
                )
                + tuple(fabricated_samples),
                aggregate_receipts=tuple(
                    r
                    for r in egress_report.aggregate_receipts
                    if r.path_id.prefix_pair != pair
                )
                + tuple(fabricated_aggregates),
            )
        return produced
