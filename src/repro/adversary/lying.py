"""A lying domain: fabricated egress receipts (Section 3.1 / Section 4).

The domain drops or delays traffic internally but wants its receipts to say
otherwise.  The strongest lie available under the threat model is to claim
that everything that entered the domain left it promptly: the liar copies its
*ingress* observations (which it genuinely made) into its *egress* receipts,
shifted by a small claimed internal delay.

The point of the reproduction is that this lie cannot survive verification:
the fabricated egress receipts claim delivery of packets (and aggregate
counts) the downstream neighbor never saw, so the verifier's link-consistency
check flags the X→N link, and the liar is exposed to the very neighbor it
implicated.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.domain import DomainAgent
from repro.core.hop import HOPConfig, HOPReport
from repro.core.receipts import (
    AggregateReceipt,
    PathID,
    SampleReceipt,
    SampleRecord,
)
from repro.net.topology import Domain, HOPPath

__all__ = ["LyingDomainAgent"]


class LyingDomainAgent(DomainAgent):
    """A domain that hides its internal loss and delay in its egress receipts.

    Parameters
    ----------
    claimed_delay:
        The internal delay (seconds) the domain pretends to have introduced.
    hide_loss:
        Whether to claim delivery of packets it actually dropped (by reusing
        its ingress counts/samples at the egress).
    hide_delay:
        Whether to misreport its internal delay as ``claimed_delay`` instead
        of the truly measured egress timestamps.  (Both default to ``True`` —
        the full "nothing went wrong here" lie.)
    """

    def __init__(
        self,
        domain: Domain | str,
        path: HOPPath,
        config: HOPConfig | None = None,
        max_diff: float = 1e-3,
        claimed_delay: float = 0.5e-3,
        hide_loss: bool = True,
        hide_delay: bool = True,
    ) -> None:
        super().__init__(domain, path, config=config, max_diff=max_diff)
        if len(self.hop_ids) < 2:
            raise ValueError(
                "a lying transit domain needs both an ingress and an egress HOP"
            )
        self.claimed_delay = float(claimed_delay)
        self.hide_loss = bool(hide_loss)
        self.hide_delay = bool(hide_delay)
        self.last_fabricated_report: HOPReport | None = None

    # -- fabrication -----------------------------------------------------------------

    def _egress_path_id(self) -> PathID:
        egress_hop_id = self.hop_ids[-1]
        collector = self.collector(egress_hop_id)
        # The egress collector holds exactly one registered path in this
        # scenario; reuse its PathID so the fabricated receipts look genuine.
        state = collector.states()[0]
        return state.path_id

    def _fabricate_egress_report(
        self, ingress_report: HOPReport, honest_egress: HOPReport
    ) -> HOPReport:
        egress_path_id = self._egress_path_id()
        egress_hop_id = self.hop_ids[-1]

        fabricated_samples: list[SampleReceipt] = []
        source_samples = (
            ingress_report.sample_receipts if self.hide_loss else honest_egress.sample_receipts
        )
        for receipt in source_samples:
            records = tuple(
                SampleRecord(pkt_id=record.pkt_id, time=record.time + self.claimed_delay)
                if self.hide_delay
                else record
                for record in receipt.samples
            )
            fabricated_samples.append(
                SampleReceipt(
                    path_id=egress_path_id,
                    samples=records,
                    sampling_threshold=receipt.sampling_threshold,
                )
            )

        fabricated_aggregates: list[AggregateReceipt] = []
        source_aggregates = (
            ingress_report.aggregate_receipts
            if self.hide_loss
            else honest_egress.aggregate_receipts
        )
        for receipt in source_aggregates:
            fabricated_aggregates.append(
                replace(
                    receipt,
                    path_id=egress_path_id,
                    start_time=receipt.start_time + self.claimed_delay,
                    end_time=receipt.end_time + self.claimed_delay,
                    time_sum=receipt.time_sum + self.claimed_delay * receipt.pkt_count,
                )
            )

        return HOPReport(
            hop_id=egress_hop_id,
            sample_receipts=tuple(fabricated_samples),
            aggregate_receipts=tuple(fabricated_aggregates),
        )

    # -- reporting --------------------------------------------------------------------

    def reports(self, flush: bool = True) -> dict[int, HOPReport]:
        honest = super().reports(flush=flush)
        ingress_hop_id = self.hop_ids[0]
        egress_hop_id = self.hop_ids[-1]
        fabricated = self._fabricate_egress_report(
            honest[ingress_hop_id], honest[egress_hop_id]
        )
        honest[egress_hop_id] = fabricated
        self.last_fabricated_report = fabricated
        return honest
