"""The marker-dropping attack (Section 5.3).

An under-performing domain could drop all marker packets, causing its
downstream neighbor to key its sampling on the wrong packets and fail to
produce receipts that corroborate (or refute) the attacker's performance.

The paper's counter-argument, which this module lets the benchmarks quantify,
is that the attack is self-defeating: markers are, by construction, always
sampled and reported by every HOP that sees them, so every dropped marker is a
sampled packet that entered the domain (per the upstream neighbor's receipts)
and never left it (per the downstream neighbor's receipts).  The attacker must
either admit the drops or produce receipts inconsistent with its neighbors.
"""

from __future__ import annotations

from typing import Callable

from repro.core.sampling import DEFAULT_MARKER_RATE
from repro.net.hashing import PacketDigester, threshold_for_rate
from repro.net.packet import Packet
from repro.simulation.scenario import PathObservation
from repro.util.validation import check_fraction

__all__ = ["MarkerDropAttack", "marker_exposure_rate"]


class MarkerDropAttack:
    """Builds the drop predicate of a domain that targets marker packets."""

    def __init__(
        self,
        digester: PacketDigester | None = None,
        marker_rate: float = DEFAULT_MARKER_RATE,
    ) -> None:
        check_fraction("marker_rate", marker_rate)
        self.digester = digester or PacketDigester()
        self.marker_threshold = threshold_for_rate(marker_rate)

    def is_marker(self, packet: Packet) -> bool:
        """Whether a packet is a marker under the protocol-wide threshold."""
        return self.digester.digest(packet) > self.marker_threshold

    def drop_predicate(self) -> Callable[[Packet], bool]:
        """Predicate installed as the attacking domain's targeted-drop rule."""
        return self.is_marker


def marker_exposure_rate(
    observation: PathObservation,
    attacker: str,
    attack: MarkerDropAttack,
) -> float:
    """Fraction of the attacker's dropped markers visible to its neighbors.

    A dropped marker is *exposed* when it was observed at the attacker's
    ingress HOP (so the upstream neighbor can vouch it was handed over) and is
    absent from the attacker's egress HOP (so the downstream neighbor cannot
    corroborate delivery).  Because markers are always sampled, every exposed
    marker shows up in the neighbors' receipts.
    """
    hops = observation.path.hops_of(attacker)
    if len(hops) < 2:
        raise ValueError(f"{attacker!r} is not a transit domain of the observed path")
    truth = observation.truth_for(attacker)
    ingress_hop, egress_hop = hops[0], hops[-1]

    dropped_markers = {
        packet.uid
        for packet, _ in observation.at_hop(ingress_hop)
        if packet.uid in truth.lost and attack.is_marker(packet)
    }
    if not dropped_markers:
        return 1.0
    egress_uids = {packet.uid for packet, _ in observation.at_hop(egress_hop)}
    exposed = {uid for uid in dropped_markers if uid not in egress_uids}
    return len(exposed) / len(dropped_markers)
