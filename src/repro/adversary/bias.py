"""The sampling-bias (preferential treatment) attack of Section 3.2 / 5.1.

A congested domain wants its *measured* delay to look good while its actual
traffic suffers.  If the measurement protocol's sampled set is predictable
from a packet's contents (Trajectory Sampling ++), the domain simply forwards
the to-be-sampled packets through a fast path and lets everything else queue.
Against VPM's delay-keyed sampling the domain cannot know, at forwarding time,
which packets will be sampled — the best it can do is guess.

:class:`BiasedTreatmentAttack` builds the ``preferential_predicate`` installed
into the congested domain's :class:`~repro.simulation.scenario.SegmentCondition`:

* for a predictable protocol, the predicate is the protocol's own measurement
  predicate (perfect bias);
* for VPM, the attacker falls back to a random guess at the same budget
  (``guess_rate``), which cannot shift the estimate systematically.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.base import MeasurementProtocol
from repro.net.hashing import MASK64, PacketDigester, splitmix64, threshold_for_rate
from repro.net.packet import Packet
from repro.util.validation import check_fraction

__all__ = ["BiasedTreatmentAttack"]


class BiasedTreatmentAttack:
    """Builds the preferential-treatment predicate a biased domain applies.

    Parameters
    ----------
    digester:
        The protocol-wide packet digester (the attacker runs the same hash the
        protocol runs — it is public).
    guess_rate:
        The fraction of traffic the attacker is willing to fast-path when it
        cannot predict the measured set (its "budget"); matching the target
        sampling rate makes the comparison with the predictable case fair.
    guess_salt:
        Salt for the attacker's blind guess.
    """

    def __init__(
        self,
        digester: PacketDigester | None = None,
        guess_rate: float = 0.01,
        guess_salt: int = 0xBAD,
    ) -> None:
        check_fraction("guess_rate", guess_rate)
        self.digester = digester or PacketDigester()
        self.guess_rate = guess_rate
        self.guess_salt = guess_salt

    def predicate_against(
        self, protocol: MeasurementProtocol
    ) -> Callable[[Packet], bool]:
        """The best preferential-treatment predicate against ``protocol``."""
        if protocol.sampling_predictable:
            return self.predictable_predicate(protocol)
        return self.blind_guess_predicate()

    def predictable_predicate(
        self, protocol: MeasurementProtocol
    ) -> Callable[[Packet], bool]:
        """Fast-path exactly the packets the protocol will measure."""
        if not protocol.sampling_predictable:
            raise ValueError(f"{protocol.name} has no predictable measurement set")
        digester = self.digester

        def predicate(packet: Packet) -> bool:
            return protocol.measurement_predicate(digester.digest(packet))

        return predicate

    def blind_guess_predicate(self) -> Callable[[Packet], bool]:
        """Fast-path a random ``guess_rate`` fraction of packets.

        The guess is a salted hash of the packet digest, so it is a fixed
        (but measurement-independent) subset — the strongest thing a domain
        can do against VPM without delaying all traffic by a marker period.
        """
        digester = self.digester
        threshold = threshold_for_rate(self.guess_rate)
        salt = self.guess_salt

        def predicate(packet: Packet) -> bool:
            return splitmix64((digester.digest(packet) ^ salt) & MASK64) > threshold

        return predicate
