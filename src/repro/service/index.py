"""A lightweight index over every run store under one root.

The service's run-listing endpoints and ``repro list`` both need to answer
"what runs exist, how far along is each, and what did they conclude?" across
a store root that live campaigns are writing into *right now*.  Opening every
store and re-folding every record per request would be quadratic in campaign
length, so :class:`RunIndex` keeps a per-run cache keyed on the cheap
observables that change when (and only when) a store changes:

* ``spec.json`` is written once, atomically, at creation — parse it once and
  cache it for as long as *the same file* is there.  A run dir that is
  deleted and recreated under the same id gets a new ``spec.json`` inode, so
  the cache keys on the spec file's stat signature, not just its presence.
* a record commits by appending exactly one newline to ``records.jsonl`` —
  the committed-record count *is* the newline count, torn tails included,
  so progress is one ``read_bytes`` + ``count`` without JSON parsing.
* ``summary.json`` appears (atomically) exactly once, at completion.

Everything tolerates in-flight writers and foreign directories: a child that
is not a run store (no ``spec.json``), or whose spec does not parse, is
skipped — scanning must never take the service down because someone dropped a
scratch directory into the root.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.service.report import overall_sla
from repro.store import RunStore, RunStoreError
from repro.store.runstore import RECORDS_FILE, SPEC_FILE, SUMMARY_FILE

__all__ = ["RunEntry", "RunIndex", "validate_run_id"]


def validate_run_id(run_id: str) -> str:
    """A run id is a single store-root child name, never a path.

    Everything the HTTP layer resolves against the store root goes through
    here, so a request cannot escape the root with ``..`` or separators.
    """
    if (
        not run_id
        or run_id in (".", "..")
        or "/" in run_id
        or "\\" in run_id
        or "\x00" in run_id
    ):
        raise ValueError(f"invalid run id {run_id!r}")
    return run_id


@dataclass(frozen=True)
class RunEntry:
    """One run's indexed metadata (see :class:`RunIndex` for freshness)."""

    run_id: str
    name: str
    spec_hash: str
    intervals: int
    completed: int
    complete: bool
    sla_compliant: bool | None

    def to_dict(self) -> dict[str, Any]:
        return {
            "run": self.run_id,
            "name": self.name,
            "spec_hash": self.spec_hash,
            "intervals": {
                "total": self.intervals,
                "completed": self.completed,
                "complete": self.complete,
            },
            "sla_compliant": self.sla_compliant,
        }


@dataclass
class _CacheSlot:
    """What we remember about one run dir between scans."""

    name: str
    spec_hash: str
    intervals: int
    spec_sig: tuple[int, int, int]
    records_size: int
    has_summary: bool
    entry: RunEntry


class RunIndex:
    """Scan/caching layer over :meth:`repro.store.RunStore.list_runs`."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self._cache: dict[str, _CacheSlot] = {}

    # -- scanning ----------------------------------------------------------------------

    def _spec_header(self, run_dir: Path) -> tuple[str, str, int] | None:
        """(name, spec_hash, intervals) from ``spec.json``, or None if foreign."""
        try:
            payload = json.loads((run_dir / SPEC_FILE).read_text())
            spec = payload["spec"]
            return (str(spec["name"]), str(payload["spec_hash"]), int(spec["intervals"]))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    @staticmethod
    def _spec_signature(run_dir: Path) -> tuple[int, int, int] | None:
        """Stat signature of ``spec.json``: changes iff the file is replaced.

        ``spec.json`` is immutable for the lifetime of a run dir, but the run
        dir itself is not immortal: delete it and recreate a different run
        under the same id and a cache keyed only on ``records_size`` serves
        the *old* run's name/spec_hash/intervals whenever the sizes happen to
        collide (an empty recreated run vs. a cached empty run, for one).
        ``(mtime_ns, size, inode)`` pins the cache to this exact spec file.
        """
        try:
            st = (run_dir / SPEC_FILE).stat()
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size, st.st_ino)

    def _observe(self, run_dir: Path) -> RunEntry | None:
        """The current entry for one run dir, reusing the cache when fresh."""
        run_id = run_dir.name
        records_path = run_dir / RECORDS_FILE
        try:
            records_size = records_path.stat().st_size
        except OSError:
            records_size = 0
        has_summary = (run_dir / SUMMARY_FILE).exists()
        spec_sig = self._spec_signature(run_dir)
        if spec_sig is None:
            # No readable spec.json: a foreign directory (or one deleted out
            # from under us) — drop whatever we remembered about the id.
            self._cache.pop(run_id, None)
            return None

        slot = self._cache.get(run_id)
        if (
            slot is not None
            and slot.spec_sig == spec_sig
            and slot.records_size == records_size
            and slot.has_summary == has_summary
        ):
            return slot.entry

        header = self._spec_header(run_dir)
        if header is None:
            self._cache.pop(run_id, None)
            return None
        name, spec_hash, intervals = header
        # A record commits with its newline; a torn tail has none, so the
        # newline count equals the committed-record count without parsing.
        completed = 0
        if records_size:
            try:
                completed = records_path.read_bytes().count(b"\n")
            except OSError:
                completed = 0
        summary = None
        if has_summary:
            try:
                summary = json.loads((run_dir / SUMMARY_FILE).read_text())
            except (OSError, ValueError):
                summary = None
        entry = RunEntry(
            run_id=run_id,
            name=name,
            spec_hash=spec_hash,
            intervals=intervals,
            completed=completed,
            complete=completed >= intervals,
            sla_compliant=overall_sla(summary),
        )
        self._cache[run_id] = _CacheSlot(
            name=name,
            spec_hash=spec_hash,
            intervals=intervals,
            spec_sig=spec_sig,
            records_size=records_size,
            has_summary=has_summary,
            entry=entry,
        )
        return entry

    def entries(
        self,
        name: str | None = None,
        complete: bool | None = None,
        sla_compliant: bool | None = None,
        spec_hash: str | None = None,
    ) -> list[RunEntry]:
        """Every indexed run under the root, filtered, sorted by run id."""
        live: set[str] = set()
        entries: list[RunEntry] = []
        for run_dir in RunStore.list_runs(self.root):
            entry = self._observe(run_dir)
            if entry is None:
                continue
            live.add(entry.run_id)
            if name is not None and entry.name != name:
                continue
            if complete is not None and entry.complete != complete:
                continue
            if sla_compliant is not None and entry.sla_compliant != sla_compliant:
                continue
            if spec_hash is not None and not entry.spec_hash.startswith(spec_hash):
                continue
            entries.append(entry)
        # Deleted runs must not linger in the cache (or in later scans).
        for stale in set(self._cache) - live:
            self._cache.pop(stale, None)
        return entries

    # -- single-run access -------------------------------------------------------------

    def entry(self, run_id: str) -> RunEntry | None:
        run_dir = self.root / validate_run_id(run_id)
        if not (run_dir / SPEC_FILE).is_file():
            return None
        return self._observe(run_dir)

    def store(self, run_id: str) -> RunStore:
        """Open one run's store (full validation), by id."""
        run_dir = self.root / validate_run_id(run_id)
        if not (run_dir / SPEC_FILE).is_file():
            raise RunStoreError(f"no run {run_id!r} under {self.root}")
        return RunStore.open(run_dir)
