"""The measurement service: an HTTP layer over the campaign backend.

The paper's system is meant to be *queried by customers*, not run by hand —
providers emit receipts, users check SLA compliance against them.  This
package turns the headless backend (:class:`~repro.engine.campaign.CampaignRunner`,
the durable :class:`~repro.store.RunStore`, :class:`~repro.api.spec.ExecutionPolicy`)
into a system users hit:

* :class:`~repro.service.app.ServiceApp` — a stdlib-only WSGI API (submit a
  campaign as JSON, poll per-interval progress with a ``?since=`` cursor or a
  long-poll, query reports/verdicts, list/filter/compare runs) plus the
  single-file browser dashboard at ``/``.
* :class:`~repro.service.jobs.JobQueue` — bounded-concurrency workers driving
  campaigns as ``repro resume`` subprocesses (kill-safe: a worker killed
  mid-interval is re-dispatched and the finished store stays byte-identical)
  or in-process runners streaming typed campaign events.
* :class:`~repro.service.index.RunIndex` — the cached multi-run scan over a
  store root that the API and ``repro list`` share.
* :func:`~repro.service.report.run_report` — the machine-readable report
  serialization shared by ``repro report --json``, the API, and the dashboard.
"""

from repro.service.app import ServiceApp, make_service_server, serve
from repro.service.dispatchapi import DispatchRegistry
from repro.service.errors import HTTPError
from repro.service.index import RunEntry, RunIndex, validate_run_id
from repro.service.jobs import Job, JobQueue, JobRejected
from repro.service.report import REPORT_VERSION, compare_runs, run_report

__all__ = [
    "DispatchRegistry",
    "HTTPError",
    "Job",
    "JobQueue",
    "JobRejected",
    "REPORT_VERSION",
    "RunEntry",
    "RunIndex",
    "ServiceApp",
    "compare_runs",
    "make_service_server",
    "run_report",
    "serve",
    "validate_run_id",
]
