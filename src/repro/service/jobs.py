"""A bounded-concurrency job queue executing queued campaigns.

:meth:`JobQueue.submit` *accepts* a campaign by creating its
:class:`~repro.store.RunStore` immediately (the durable ``spec.json`` write is
the acceptance record — a crash between accept and execution loses nothing),
then worker threads drain the queue with bounded concurrency.  Execution has
three modes:

``subprocess`` (the service default)
    Each attempt runs ``repro resume <run_dir>`` in a child process (always
    ``resume`` — the store already exists from the accept).  The child can be
    killed at any instant: the store's atomic-append semantics plus
    :meth:`~repro.engine.campaign.CampaignRunner.resume` make the next
    attempt continue from the last committed interval, and the finished store
    is byte-identical to an uninterrupted run.  A non-zero exit is
    re-dispatched until ``max_attempts`` is exhausted.

``inprocess``
    The worker thread drives a :class:`~repro.engine.campaign.CampaignRunner`
    directly and records its typed :data:`~repro.engine.campaign.CampaignEvent`
    stream on the job (useful for embedding and tests; a worker thread cannot
    be killed, so crash-handoff coverage lives in subprocess mode).

``dispatch`` / ``dispatch_http``
    Each attempt runs ``repro dispatch <run_dir>`` in a child process: a
    distributed coordinator (see :mod:`repro.dist`) fanning the campaign's
    intervals across ``dispatch_workers`` worker processes — over the
    shared-filesystem transport (``dispatch``) or over loopback HTTP through
    the versioned dispatch endpoints (``dispatch_http``), exercising the
    exact protocol remote mount-less workers use.  The same kill/retry
    contract as subprocess mode applies — re-dispatch continues from the
    committed prefix plus any staged interval results, and the finished
    store is byte-identical to single-host execution.

Either way, per-interval *progress* is read from the store (the service's
``?since=`` record cursor), never from worker memory — what the queue knows
and what a crash would preserve are the same thing by construction.
"""

from __future__ import annotations

import os
import queue
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import repro
from repro.api.spec import CampaignSpec, ExecutionPolicy
from repro.engine.campaign import (
    CampaignEvent,
    CampaignRunner,
    CheckpointWritten,
    IntervalCommitted,
    RunComplete,
)
from repro.service.index import validate_run_id
from repro.store import RunStore, RunStoreError
from repro.store.runstore import SPEC_FILE

__all__ = ["Job", "JobQueue", "JobRejected"]

#: Job lifecycle: queued -> running -> (queued again on a failed attempt with
#: retries left) -> completed | failed.  ``killed`` attempts count as failed
#: attempts; the resume re-dispatch is what makes them safe.
JOB_STATES = ("queued", "running", "completed", "failed")


class JobRejected(ValueError):
    """A submission the queue refuses (bad policy, duplicate run, shutdown)."""


def _event_payload(event: CampaignEvent) -> dict[str, Any]:
    """A small JSON-safe view of one typed campaign event."""
    if isinstance(event, IntervalCommitted):
        return {
            "kind": "interval_committed",
            "interval": event.interval,
            "intervals": event.intervals,
            "receipts_digest": event.record["receipts_digest"],
        }
    if isinstance(event, CheckpointWritten):
        return {
            "kind": "checkpoint_written",
            "interval": event.interval,
            "intervals": event.intervals,
            "chunk_index": event.chunk_index,
        }
    if isinstance(event, RunComplete):
        return {"kind": "run_complete", "intervals": event.intervals}
    raise TypeError(f"unknown campaign event {event!r}")  # pragma: no cover


@dataclass
class Job:
    """One accepted campaign execution (mutated only under the queue's lock)."""

    id: str
    run_id: str
    run_dir: Path
    spec_hash: str
    policy: ExecutionPolicy
    state: str = "queued"
    attempts: int = 0
    max_attempts: int = 3
    error: str | None = None
    pid: int | None = None
    events: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "run": self.run_id,
            "spec_hash": self.spec_hash,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "error": self.error,
            "pid": self.pid,
            "events": list(self.events),
        }


class JobQueue:
    """Worker pool executing accepted campaigns with bounded concurrency."""

    def __init__(
        self,
        store_root: Path | str,
        workers: int = 2,
        execution: str = "subprocess",
        max_attempts: int = 3,
        dispatch_workers: int = 2,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if execution not in ("subprocess", "inprocess", "dispatch", "dispatch_http"):
            raise ValueError(
                f"execution must be 'subprocess', 'inprocess', 'dispatch' or "
                f"'dispatch_http', got {execution!r}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if dispatch_workers < 1:
            raise ValueError(f"dispatch_workers must be >= 1, got {dispatch_workers}")
        self.store_root = Path(store_root)
        self.store_root.mkdir(parents=True, exist_ok=True)
        self.execution = execution
        self.max_attempts = max_attempts
        self.dispatch_workers = dispatch_workers
        self._tasks: queue.Queue[Job | None] = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._closed = False
        self._sequence = 0
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"repro-job-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission --------------------------------------------------------------------

    def submit(
        self,
        spec: CampaignSpec,
        policy: ExecutionPolicy | None = None,
        run_id: str | None = None,
        resume: bool = False,
    ) -> Job:
        """Accept one campaign: create (or reopen) its store, then enqueue.

        ``resume=True`` re-enqueues an existing store (same spec hash
        required) — the handoff path for runs a dead service left behind.
        Without it, a run id that already holds a store is rejected.
        """
        policy = policy if policy is not None else ExecutionPolicy()
        # Impossible spec/policy pairings die at submission, not in a worker.
        policy = policy.bind(spec.cell)
        if (
            self.execution in ("dispatch", "dispatch_http")
            and policy.checkpoint_every is not None
        ):
            raise JobRejected(
                "dispatch execution re-claims intervals from their start; "
                "checkpoint_every applies to single-host execution modes"
            )
        run_id = validate_run_id(
            run_id if run_id is not None else f"{spec.name}-{spec.spec_hash()[:10]}"
        )
        with self._lock:
            if self._closed:
                raise JobRejected("job queue is shut down")
            if any(
                job.run_id == run_id and job.state in ("queued", "running")
                for job in self._jobs.values()
            ):
                raise JobRejected(f"run {run_id!r} already has an active job")
            run_dir = self.store_root / run_id
            if (run_dir / SPEC_FILE).exists():
                if not resume:
                    raise JobRejected(
                        f"run {run_id!r} already holds a store; submit with "
                        f"resume=true to re-enqueue it"
                    )
                store = RunStore.open(run_dir)
                store.validate_spec(spec)
            else:
                if resume:
                    raise JobRejected(f"run {run_id!r} has no store to resume")
                RunStore.create(run_dir, spec)
            self._sequence += 1
            job = Job(
                id=f"job-{self._sequence}",
                run_id=run_id,
                run_dir=run_dir,
                spec_hash=spec.spec_hash(),
                policy=policy,
                max_attempts=self.max_attempts,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            # Enqueue under the same lock that guards ``_closed``: a put
            # outside it can land *behind* shutdown's None sentinels and
            # leave the job "queued" forever with no worker left to run it.
            # Inside the lock the FIFO order is decided: either this put
            # precedes every sentinel (some worker runs the job before its
            # sentinel), or the closed check above already rejected it.
            self._tasks.put(job)
        return job

    # -- inspection --------------------------------------------------------------------

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def snapshot(self, job: Job) -> dict[str, Any]:
        """One job's state as a plain dict, read atomically under the lock.

        Workers mutate ``state``/``attempts``/``events`` under the queue
        lock; every consumer that serializes a live :class:`Job` (the HTTP
        layer above all) must come through here (or :meth:`snapshots`) — a
        bare ``job.to_dict()`` can copy ``events`` mid-append and tear.
        """
        with self._lock:
            return job.to_dict()

    def snapshots(self) -> list[dict[str, Any]]:
        """Every job's state, in submission order, under one lock hold."""
        with self._lock:
            return [self._jobs[job_id].to_dict() for job_id in self._order]

    def stats(self) -> dict[str, int]:
        with self._lock:
            counts = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                counts[job.state] += 1
        counts["workers"] = len(self._workers)
        return counts

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until no job is queued or running (tests and demos)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                busy = any(
                    job.state in ("queued", "running")
                    for job in self._jobs.values()
                )
            if not busy:
                return True
            time.sleep(0.05)
        return False

    # -- control -----------------------------------------------------------------------

    def kill(self, job_id: str) -> bool:
        """SIGINT a running subprocess attempt (chaos/testing hook).

        Returns False when the job is not running a killable child.  The
        interrupted attempt counts against ``max_attempts``; with attempts
        remaining, the queue re-dispatches a ``resume`` that continues from
        the last committed interval.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            pid = job.pid if job is not None and job.state == "running" else None
        if pid is None:
            return False
        try:
            os.kill(pid, signal.SIGINT)
        except OSError:
            return False
        return True

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._tasks.put(None)
        if wait:
            for worker in self._workers:
                worker.join()

    # -- execution ---------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._tasks.get()
            if job is None:
                return
            self._attempt(job)

    def _attempt(self, job: Job) -> None:
        with self._lock:
            job.state = "running"
            job.attempts += 1
        if self.execution == "inprocess":
            error = self._run_inprocess(job)
        else:
            error = self._run_subprocess(job)
        with self._lock:
            job.pid = None
            if error is None:
                job.state = "completed"
                job.error = None
                return
            job.error = error
            if job.attempts < job.max_attempts and not self._closed:
                # Requeue under the lock, for the same reason submit does:
                # deciding "not closed" and putting must be atomic against
                # shutdown's sentinel enqueue, or the retry lands behind the
                # sentinels and sits "queued" forever.  After shutdown the
                # failed attempt is terminal instead.
                job.state = "queued"
                self._tasks.put(job)
            else:
                job.state = "failed"

    def _policy_argv(self, policy: ExecutionPolicy) -> list[str]:
        argv: list[str] = []
        if policy.engine is not None:
            argv += ["--engine", policy.engine]
        if policy.shards != 1:
            argv += ["--shards", str(policy.shards)]
        if policy.chunk_size is not None:
            argv += ["--chunk-size", str(policy.chunk_size)]
        if policy.checkpoint_every is not None:
            argv += ["--checkpoint-every", str(policy.checkpoint_every)]
        if policy.throttle:
            argv += ["--throttle", repr(policy.throttle)]
        return argv

    def _run_subprocess(self, job: Job) -> str | None:
        """One child-process attempt; returns an error string or None."""
        # The child must import this exact repro package whether or not it is
        # installed: prepend its parent directory to the child's PYTHONPATH.
        package_parent = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [package_parent, env["PYTHONPATH"]]
            if env.get("PYTHONPATH")
            else [package_parent]
        )
        if self.execution in ("dispatch", "dispatch_http"):
            # Distributed mode: the child is a dispatch coordinator fanning
            # the campaign's intervals out across its own worker pool (see
            # repro.dist).  Re-dispatch after a kill is exactly as safe as
            # resume: the store's committed prefix plus any staged interval
            # results carry over.
            argv = [
                sys.executable,
                "-m",
                "repro.cli",
                "dispatch",
                str(job.run_dir),
                "--workers",
                str(self.dispatch_workers),
                "--quiet",
                *self._policy_argv(job.policy),
            ]
            if self.execution == "dispatch_http":
                argv += ["--transport", "http"]
        else:
            argv = [
                sys.executable,
                "-m",
                "repro.cli",
                "resume",
                str(job.run_dir),
                "--quiet",
                *self._policy_argv(job.policy),
            ]
        try:
            child = subprocess.Popen(
                argv,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                text=True,
            )
        except OSError as exc:
            return f"cannot spawn worker process: {exc}"
        with self._lock:
            job.pid = child.pid
        _, stderr = child.communicate()
        if child.returncode == 0:
            return None
        detail = (stderr or "").strip().splitlines()
        suffix = f": {detail[-1]}" if detail else ""
        return f"worker exited with status {child.returncode}{suffix}"

    def _run_inprocess(self, job: Job) -> str | None:
        """One in-thread attempt; returns an error string or None."""

        def record_event(event: CampaignEvent) -> None:
            with self._lock:
                job.events.append(_event_payload(event))

        try:
            store = RunStore.open(job.run_dir)
            runner = CampaignRunner.resume(store, policy=job.policy)
            runner.run(on_event=record_event)
        except (RunStoreError, ValueError, OSError) as exc:
            return str(exc)
        return None
