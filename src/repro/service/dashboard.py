"""The service's single-file browser dashboard.

Embedded as a Python string (not package data) so a ``pip install`` — or a
zipapp — always carries it; the WSGI app serves it verbatim at ``/``.  It is
plain HTML + vanilla JS over the JSON API: a stat-tile row, the run table
with per-run progress meters, SLA/receipt verdict badges (icon + label, never
color alone), a per-interval estimate table and the campaign summary for the
selected run, and a submit form that POSTs a spec to ``/api/v1/jobs``.

Styling follows the repo-neutral dataviz conventions: roles are CSS custom
properties with light and dark values both selected (OS preference via
``prefers-color-scheme``), text wears text tokens rather than status colors,
numeric table columns use tabular figures, and the status palette
(good/critical) is reserved for verdicts.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = r"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro measurement service</title>
<style>
  :root {
    color-scheme: light;
    --page:          #f9f9f7;
    --surface:       #fcfcfb;
    --text-primary:  #0b0b0b;
    --text-secondary:#52514e;
    --muted:         #898781;
    --grid:          #e1e0d9;
    --baseline:      #c3c2b7;
    --border:        rgba(11,11,11,0.10);
    --accent:        #2a78d6;   /* progress meter fill (sequential blue) */
    --status-good:     #0ca30c;
    --status-critical: #d03b3b;
    --status-warning:  #fab219;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --page:          #0d0d0d;
      --surface:       #1a1a19;
      --text-primary:  #ffffff;
      --text-secondary:#c3c2b7;
      --muted:         #898781;
      --grid:          #2c2c2a;
      --baseline:      #383835;
      --border:        rgba(255,255,255,0.10);
      --accent:        #3987e5;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 24px;
    background: var(--page); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 18px; margin: 0; font-weight: 650; }
  h2 { font-size: 13px; margin: 0 0 8px; font-weight: 650;
       color: var(--text-secondary); text-transform: uppercase;
       letter-spacing: 0.04em; }
  header { display: flex; align-items: baseline; gap: 12px; margin-bottom: 20px; }
  header .root { color: var(--muted); font-size: 12px; }
  section.card {
    background: var(--surface); border: 1px solid var(--border);
    border-radius: 8px; padding: 16px; margin-bottom: 16px;
  }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 16px; }
  .tile {
    background: var(--surface); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 16px; min-width: 130px;
  }
  .tile .value { font-size: 26px; font-weight: 650; }
  .tile .label { color: var(--text-secondary); font-size: 12px; margin-top: 2px; }
  table { border-collapse: collapse; width: 100%; }
  th {
    text-align: left; color: var(--muted); font-size: 11px;
    text-transform: uppercase; letter-spacing: 0.04em; font-weight: 600;
    padding: 6px 10px; border-bottom: 1px solid var(--baseline);
  }
  td { padding: 6px 10px; border-bottom: 1px solid var(--grid); }
  td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
  tr.run-row { cursor: pointer; }
  tr.run-row:hover td { background: color-mix(in srgb, var(--accent) 7%, transparent); }
  tr.run-row.selected td { background: color-mix(in srgb, var(--accent) 14%, transparent); }
  .mono { font-family: ui-monospace, SFMono-Regular, Menlo, monospace; font-size: 12px; }
  .meter {
    display: inline-block; vertical-align: middle;
    width: 120px; height: 8px; border-radius: 4px;
    background: var(--grid); overflow: hidden; margin-right: 8px;
  }
  .meter > i { display: block; height: 100%; border-radius: 4px;
               background: var(--accent); }
  .meter-text { color: var(--text-secondary); font-variant-numeric: tabular-nums;
                font-size: 12px; }
  .badge {
    display: inline-flex; align-items: center; gap: 4px;
    font-size: 12px; font-weight: 600; color: var(--text-secondary);
  }
  .badge .dot { font-weight: 700; }
  .badge.good .dot { color: var(--status-good); }
  .badge.bad .dot { color: var(--status-critical); }
  .badge.none .dot { color: var(--muted); }
  .empty { color: var(--muted); padding: 12px 0; }
  .meta { color: var(--text-secondary); font-size: 12px; margin-bottom: 10px; }
  .meta .mono { color: var(--muted); }
  form.submit { display: grid; gap: 8px; }
  form.submit textarea, form.submit input {
    width: 100%; background: var(--page); color: var(--text-primary);
    border: 1px solid var(--baseline); border-radius: 6px; padding: 8px;
    font-family: ui-monospace, SFMono-Regular, Menlo, monospace; font-size: 12px;
  }
  form.submit textarea { min-height: 120px; resize: vertical; }
  form.submit .row { display: flex; gap: 8px; align-items: center; }
  form.submit button {
    background: var(--accent); color: #fff; border: 0; border-radius: 6px;
    padding: 8px 16px; font-weight: 600; cursor: pointer;
  }
  #submit-result { font-size: 12px; }
  #submit-result.err { color: var(--status-critical); font-weight: 600; }
  #submit-result.ok { color: var(--text-secondary); }
  .cols { display: grid; grid-template-columns: 1fr; gap: 0; }
  @media (min-width: 1100px) { .cols { grid-template-columns: 3fr 2fr; gap: 16px; } }
</style>
</head>
<body>
<header>
  <h1>repro measurement service</h1>
  <span class="root" id="store-root"></span>
</header>

<div class="tiles">
  <div class="tile"><div class="value" id="tile-runs">–</div><div class="label">runs in store</div></div>
  <div class="tile"><div class="value" id="tile-complete">–</div><div class="label">complete</div></div>
  <div class="tile"><div class="value" id="tile-active">–</div><div class="label">active jobs</div></div>
  <div class="tile"><div class="value" id="tile-violations">–</div><div class="label">SLA violations</div></div>
</div>

<div class="cols">
<div>
<section class="card">
  <h2>Runs</h2>
  <table>
    <thead><tr>
      <th>run</th><th>campaign</th><th>progress</th><th>SLA</th>
    </tr></thead>
    <tbody id="runs-body"></tbody>
  </table>
  <div class="empty" id="runs-empty" hidden>no runs in the store yet — submit a campaign below</div>
</section>

<section class="card" id="detail-card" hidden>
  <h2 id="detail-title">Run</h2>
  <div class="meta" id="detail-meta"></div>
  <h2>Campaign summary</h2>
  <table>
    <thead><tr>
      <th>domain</th><th class="num">samples</th><th class="num">pooled delay [ms]</th>
      <th class="num">loss [%]</th><th class="num">accepted</th><th>SLA verdict</th>
    </tr></thead>
    <tbody id="summary-body"></tbody>
  </table>
  <div style="height:14px"></div>
  <h2>Per-interval estimates</h2>
  <table>
    <thead><tr>
      <th class="num">interval</th><th>domain</th><th class="num">delay [ms]</th>
      <th class="num">loss [%]</th><th>receipts</th><th>SLA</th>
    </tr></thead>
    <tbody id="records-body"></tbody>
  </table>
</section>
</div>

<div>
<section class="card">
  <h2>Submit a campaign</h2>
  <form class="submit" id="submit-form">
    <textarea id="spec-input" placeholder='CampaignSpec JSON, e.g. {"name": "...", "intervals": 6, "cell": {...}, "sla": {...}}' spellcheck="false"></textarea>
    <input id="policy-input" placeholder='optional ExecutionPolicy JSON, e.g. {"engine": "streaming", "shards": 4}' spellcheck="false">
    <div class="row">
      <input id="runid-input" placeholder="optional run id" style="flex:1">
      <button type="submit">Submit</button>
    </div>
    <div id="submit-result"></div>
  </form>
</section>

<section class="card">
  <h2>Jobs</h2>
  <table>
    <thead><tr>
      <th>job</th><th>run</th><th>state</th><th class="num">attempts</th>
    </tr></thead>
    <tbody id="jobs-body"></tbody>
  </table>
  <div class="empty" id="jobs-empty" hidden>no jobs submitted to this service instance</div>
</section>
</div>
</div>

<script>
"use strict";
const $ = (id) => document.getElementById(id);
const esc = (value) => String(value).replace(/[&<>"']/g,
  (ch) => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;","'":"&#39;"}[ch]));

let selectedRun = null;

function badge(kind, label) {
  const cls = kind === true ? "good" : kind === false ? "bad" : "none";
  const dot = kind === true ? "✓" : kind === false ? "✕" : "–";
  return `<span class="badge ${cls}"><span class="dot">${dot}</span>${esc(label)}</span>`;
}
const slaBadge = (verdict) => badge(verdict,
  verdict === true ? "compliant" : verdict === false ? "violated" : "no verdict");
const receiptBadge = (accepted) => badge(accepted,
  accepted === true ? "accepted" : accepted === false ? "rejected" : "unverified");

function delayMs(quantiles, sla) {
  const keys = Object.keys(quantiles || {});
  if (!keys.length) return null;
  let key = keys.sort()[0];
  if (sla && quantiles[String(sla.delay_quantile)]) key = String(sla.delay_quantile);
  return quantiles[key].estimate * 1e3;
}
const fmt = (value, digits) => value === null || value === undefined
  ? "n/a" : value.toFixed(digits === undefined ? 3 : digits);

async function getJSON(url) {
  const response = await fetch(url);
  const payload = await response.json();
  if (!response.ok) throw new Error(payload.error || response.statusText);
  return payload;
}

async function refreshHealth() {
  const health = await getJSON("/api/v1/health");
  $("store-root").textContent = health.store_root;
  const active = health.queue ? health.queue.queued + health.queue.running : 0;
  $("tile-active").textContent = health.queue ? active : "off";
}

async function refreshRuns() {
  const payload = await getJSON("/api/v1/runs");
  const runs = payload.runs;
  $("tile-runs").textContent = runs.length;
  $("tile-complete").textContent = runs.filter((r) => r.intervals.complete).length;
  $("tile-violations").textContent =
    runs.filter((r) => r.sla_compliant === false).length;
  $("runs-empty").hidden = runs.length > 0;
  $("runs-body").innerHTML = runs.map((run) => {
    const pct = run.intervals.total
      ? Math.round(100 * run.intervals.completed / run.intervals.total) : 0;
    return `<tr class="run-row ${run.run === selectedRun ? "selected" : ""}"
                data-run="${esc(run.run)}">
      <td class="mono">${esc(run.run)}</td>
      <td>${esc(run.name)}</td>
      <td><span class="meter"><i style="width:${pct}%"></i></span>
          <span class="meter-text">${run.intervals.completed}/${run.intervals.total}</span></td>
      <td>${slaBadge(run.sla_compliant)}</td>
    </tr>`;
  }).join("");
  for (const row of document.querySelectorAll("tr.run-row")) {
    row.addEventListener("click", () => { selectedRun = row.dataset.run; refresh(); });
  }
}

async function refreshDetail() {
  if (!selectedRun) { $("detail-card").hidden = true; return; }
  let report;
  try { report = await getJSON(`/api/v1/runs/${encodeURIComponent(selectedRun)}/report`); }
  catch (err) { $("detail-card").hidden = true; selectedRun = null; return; }
  $("detail-card").hidden = false;
  $("detail-title").textContent = `Run ${report.run}`;
  const edited = report.summary_matches_store === false
    ? " — WARNING: summary.json disagrees with records (store edited)" : "";
  $("detail-meta").innerHTML =
    `campaign <b>${esc(report.name)}</b> · ` +
    `${report.intervals.completed}/${report.intervals.total} intervals · ` +
    `spec <span class="mono">${esc(report.spec_hash.slice(0, 12))}</span>` +
    (report.sla ? ` · SLA ${esc(report.sla.name)}: delay ≤ ${report.sla.delay_bound * 1e3} ms ` +
      `at q=${report.sla.delay_quantile}, loss ≤ ${report.sla.loss_bound * 100}%` : "") +
    esc(edited);
  const summary = report.summary ? report.summary.domains : {};
  $("summary-body").innerHTML = Object.keys(summary).sort().map((domain) => {
    const entry = summary[domain];
    return `<tr>
      <td>${esc(domain)}</td>
      <td class="num">${entry.delay_sample_count}</td>
      <td class="num">${fmt(delayMs(entry.pooled_quantiles, report.sla))}</td>
      <td class="num">${fmt(entry.loss_rate * 100)}</td>
      <td class="num">${Math.round(entry.acceptance_rate * 100)}%</td>
      <td>${slaBadge(entry.sla_compliant)}</td>
    </tr>`;
  }).join("");
  $("records-body").innerHTML = report.records.flatMap((record) =>
    Object.keys(record.estimates).sort().map((domain) => {
      const estimate = record.estimates[domain];
      const verdict = record.verdicts[domain];
      return `<tr>
        <td class="num">${record.interval}</td>
        <td>${esc(domain)}</td>
        <td class="num">${fmt(delayMs(estimate.quantiles, report.sla))}</td>
        <td class="num">${fmt(estimate.loss_rate * 100)}</td>
        <td>${receiptBadge(verdict.accepted)}</td>
        <td>${slaBadge(verdict.sla_compliant)}</td>
      </tr>`;
    })).join("");
}

async function refreshJobs() {
  let payload;
  try { payload = await getJSON("/api/v1/jobs"); }
  catch (err) { $("jobs-empty").hidden = false; return; }
  $("jobs-empty").hidden = payload.jobs.length > 0;
  $("jobs-body").innerHTML = payload.jobs.map((job) => `<tr>
    <td class="mono">${esc(job.id)}</td>
    <td class="mono">${esc(job.run)}</td>
    <td>${badge(job.state === "completed" ? true : job.state === "failed" ? false : null,
                job.state)}${job.error ? ` <span class="mono">${esc(job.error)}</span>` : ""}</td>
    <td class="num">${job.attempts}/${job.max_attempts}</td>
  </tr>`).join("");
}

$("submit-form").addEventListener("submit", async (event) => {
  event.preventDefault();
  const result = $("submit-result");
  result.className = "";
  result.textContent = "submitting…";
  try {
    const body = { spec: JSON.parse($("spec-input").value) };
    const policyText = $("policy-input").value.trim();
    if (policyText) body.policy = JSON.parse(policyText);
    const runId = $("runid-input").value.trim();
    if (runId) body.run_id = runId;
    const response = await fetch("/api/v1/jobs", {
      method: "POST",
      headers: { "Content-Type": "application/json" },
      body: JSON.stringify(body),
    });
    const payload = await response.json();
    if (!response.ok) throw new Error(payload.error || response.statusText);
    result.className = "ok";
    result.textContent =
      `accepted: ${payload.job.id} → run ${payload.job.run}`;
    selectedRun = payload.job.run;
  } catch (err) {
    result.className = "err";
    result.textContent = String(err.message || err);
  }
  refresh();
});

async function refresh() {
  try {
    await Promise.all([refreshHealth(), refreshRuns(), refreshJobs()]);
    await refreshDetail();
  } catch (err) { /* transient — next tick retries */ }
}
refresh();
setInterval(refresh, 2500);
</script>
</body>
</html>
"""
