"""The measurement service's HTTP surface (pure-WSGI, stdlib only).

:class:`ServiceApp` is an ordinary WSGI callable: development serving uses
:func:`wsgiref.simple_server.make_server` (threaded, via
:func:`make_service_server` / ``repro serve``), and production serving is any
WSGI server pointed at an app instance — the service deliberately adds **no**
dependency beyond the standard library.

The API is versioned under ``/api/v1/``.  The original unversioned ``/api/…``
paths survive as **deprecated aliases**: they serve the same handlers but
every response carries a ``Deprecation: true`` header and a ``Link:
</api/v1/…>; rel="successor-version"`` pointer.  The dispatch endpoints are
v1-only — no legacy alias exists for them.

Endpoints (all JSON, byte-stable serialization):

=======  ===================================  ==========================================
Method   Path                                 Meaning
=======  ===================================  ==========================================
GET      ``/``                                the single-file browser dashboard
GET      ``/api/v1/health``                   liveness + queue/store statistics
GET      ``/api/v1/runs``                     list/filter runs (``name``/``complete``/
                                              ``sla``/``spec_hash``); paginated via
                                              ``limit``/``cursor``
GET      ``/api/v1/runs/<id>``                one run's entry + summary + latest job
GET      ``/api/v1/runs/<id>/records``        committed records; ``?since=N`` cursor,
                                              ``?wait=S`` long-poll, ``?full=true``
GET      ``/api/v1/runs/<id>/report``         the machine-readable report
GET      ``/api/v1/runs/<id>/spec``           the run's frozen spec payload
GET      ``/api/v1/compare?runs=a,b``         per-domain side-by-side summaries
POST     ``/api/v1/jobs``                     submit ``{"spec": …, "policy"?: …,
                                              "run_id"?: …, "resume"?: bool}`` → 202
GET      ``/api/v1/jobs``                     accepted jobs; paginated via
                                              ``limit``/``cursor``
GET      ``/api/v1/jobs/<id>``                one job's state/attempts/events
POST     ``/api/v1/jobs/<id>/kill``           SIGINT a running attempt (chaos hook)
GET      ``/api/v1/dispatch/<run_id>``        dispatch status (``?config=true`` for
                                              spec/policy/lease)
POST     ``/api/v1/dispatch/…/claims/<i>``    acquire an interval lease
POST     ``/api/v1/dispatch/…/claims/<i>/renew``  heartbeat the lease
DELETE   ``/api/v1/dispatch/…/claims/<i>``    release the lease
PUT      ``/api/v1/dispatch/…/records/<i>``   upload a digest-checked record line
=======  ===================================  ==========================================

Every error — any route, any status — is one JSON envelope::

    {"error": {"code": "<machine-readable>", "message": "…", "detail"?: {…}}}

Pagination is cursor-based: pass ``limit=N`` to cap a listing, and feed the
response's ``next_cursor`` back as ``cursor`` to continue; ``next_cursor``
is ``null`` on the last page.

Progress polling reads committed records straight off the store (the same
bytes a crash would preserve), submission validates the spec with the spec
layer's own validators (a 400 carries their message verbatim), and a run
executed through the queue produces a store byte-identical to ``repro run``
with the same spec+policy — the acceptance criterion CI's ``service-smoke``
job diffs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Iterable
from urllib.parse import parse_qs
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from socketserver import ThreadingMixIn

from repro.api.spec import CampaignSpec, ExecutionPolicy
from repro.service.dashboard import DASHBOARD_HTML
from repro.service.dispatchapi import DispatchRegistry, handle_dispatch
from repro.service.errors import STATUS_TEXT, HTTPError, error_body
from repro.service.index import RunIndex
from repro.service.jobs import JobQueue, JobRejected
from repro.service.report import compare_runs, run_report
from repro.store import RunStoreError, stable_json

__all__ = ["HTTPError", "ServiceApp", "make_service_server", "serve"]

#: Upper bound on accepted request bodies (a campaign spec is a few KB).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Upper bound on one long-poll hold (clients re-issue to wait longer).
MAX_WAIT_SECONDS = 25.0

#: The current API version segment.
API_VERSION = "v1"


def _bool_param(params: dict[str, list[str]], key: str) -> bool | None:
    values = params.get(key)
    if not values:
        return None
    value = values[-1].lower()
    if value in ("1", "true", "yes"):
        return True
    if value in ("0", "false", "no"):
        return False
    raise HTTPError(
        400,
        f"query parameter {key!r} must be a boolean, got {value!r}",
        code="bad_parameter",
        detail={"parameter": key},
    )


def _int_param(params: dict[str, list[str]], key: str, default: int) -> int:
    values = params.get(key)
    if not values:
        return default
    try:
        value = int(values[-1])
    except ValueError:
        raise HTTPError(
            400,
            f"query parameter {key!r} must be an integer, got {values[-1]!r}",
            code="bad_parameter",
            detail={"parameter": key},
        ) from None
    if value < 0:
        raise HTTPError(
            400,
            f"query parameter {key!r} must be >= 0, got {value}",
            code="bad_parameter",
            detail={"parameter": key},
        )
    return value


def _float_param(params: dict[str, list[str]], key: str, default: float) -> float:
    values = params.get(key)
    if not values:
        return default
    try:
        value = float(values[-1])
    except ValueError:
        raise HTTPError(
            400,
            f"query parameter {key!r} must be a number, got {values[-1]!r}",
            code="bad_parameter",
            detail={"parameter": key},
        ) from None
    if value < 0:
        raise HTTPError(
            400,
            f"query parameter {key!r} must be >= 0, got {value}",
            code="bad_parameter",
            detail={"parameter": key},
        )
    return value


def _limit_param(params: dict[str, list[str]]) -> int | None:
    """The ``limit`` pagination parameter: a positive int, or None (no cap)."""
    values = params.get("limit")
    if not values:
        return None
    try:
        value = int(values[-1])
    except ValueError:
        raise HTTPError(
            400,
            f"query parameter 'limit' must be an integer, got {values[-1]!r}",
            code="bad_parameter",
            detail={"parameter": "limit"},
        ) from None
    if value < 1:
        raise HTTPError(
            400,
            f"query parameter 'limit' must be >= 1, got {value}",
            code="bad_parameter",
            detail={"parameter": "limit"},
        )
    return value


class ServiceApp:
    """WSGI application over one store root (and optionally a job queue).

    ``dispatch`` is an optional
    :class:`~repro.service.dispatchapi.DispatchRegistry` exposing live
    dispatch coordinations under ``/api/v1/dispatch/…`` — the HTTP-transport
    :class:`~repro.dist.dispatch.DispatchCoordinator` embeds an app with
    exactly one registered run.
    """

    def __init__(
        self,
        store_root: Path | str,
        queue: JobQueue | None = None,
        index: RunIndex | None = None,
        dispatch: DispatchRegistry | None = None,
    ) -> None:
        self.store_root = Path(store_root)
        self.index = index if index is not None else RunIndex(self.store_root)
        self.queue = queue
        self.dispatch = dispatch

    # -- WSGI entry point --------------------------------------------------------------

    def __call__(
        self,
        environ: dict[str, Any],
        start_response: Callable[..., Any],
    ) -> Iterable[bytes]:
        path = environ.get("PATH_INFO", "/") or "/"
        try:
            status, content_type, body = self._dispatch(environ)
        except HTTPError as exc:
            status = exc.status
            content_type = "application/json"
            body = (
                stable_json(error_body(exc.code, exc.message, exc.detail)) + "\n"
            ).encode("utf-8")
        except Exception as exc:  # a handler bug must not kill the server
            status = 500
            content_type = "application/json"
            body = (
                stable_json(error_body("internal", f"{type(exc).__name__}: {exc}"))
                + "\n"
            ).encode("utf-8")
        headers = [
            ("Content-Type", f"{content_type}; charset=utf-8"),
            ("Content-Length", str(len(body))),
            ("Cache-Control", "no-store"),
        ]
        if self._is_legacy(path):
            successor = f"/api/{API_VERSION}" + path[len("/api") :]
            headers.append(("Deprecation", "true"))
            headers.append(("Link", f'<{successor}>; rel="successor-version"'))
        start_response(STATUS_TEXT[status], headers)
        return [body]

    @staticmethod
    def _is_legacy(path: str) -> bool:
        """Whether ``path`` is an unversioned ``/api/…`` alias."""
        if path != "/api" and not path.startswith("/api/"):
            return False
        tail = path[len("/api") :].lstrip("/")
        first = tail.split("/", 1)[0]
        return first != API_VERSION

    # -- routing -----------------------------------------------------------------------

    def _dispatch(self, environ: dict[str, Any]) -> tuple[int, str, bytes]:
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/") or "/"
        params = parse_qs(environ.get("QUERY_STRING", ""))
        segments = [segment for segment in path.split("/") if segment]

        if not segments:
            self._require(method, "GET", path)
            return (200, "text/html", DASHBOARD_HTML.encode("utf-8"))
        if segments[0] != "api":
            raise HTTPError(404, f"no such path: {path}")
        route = segments[1:]
        versioned = bool(route) and route[0] == API_VERSION
        if versioned:
            route = route[1:]

        if route[:1] == ["dispatch"]:
            if not versioned:
                # Dispatch was born versioned; no legacy alias to honor.
                raise HTTPError(
                    404, f"dispatch endpoints live under /api/{API_VERSION}/ only"
                )
            if self.dispatch is None:
                raise HTTPError(
                    503,
                    "this service instance hosts no dispatch coordination",
                    code="no_dispatch",
                )
            status, payload = handle_dispatch(
                self.dispatch, route[1:], method, environ, params
            )
            return self._json(status, payload)

        if route == ["health"]:
            self._require(method, "GET", path)
            return self._json(200, self._health())
        if route == ["runs"]:
            self._require(method, "GET", path)
            return self._json(200, self._list_runs(params))
        if len(route) == 2 and route[0] == "runs":
            self._require(method, "GET", path)
            return self._json(200, self._run_detail(route[1]))
        if len(route) == 3 and route[0] == "runs":
            self._require(method, "GET", path)
            run_id, leaf = route[1], route[2]
            if leaf == "records":
                return self._json(200, self._run_records(run_id, params))
            if leaf == "report":
                return self._json(200, run_report(self._store(run_id)))
            if leaf == "spec":
                store = self._store(run_id)
                return self._json(
                    200, {"spec_hash": store.spec_hash, "spec": store.spec().to_dict()}
                )
            raise HTTPError(404, f"no such path: {path}")
        if route == ["compare"]:
            self._require(method, "GET", path)
            return self._json(200, self._compare(params))
        if route == ["jobs"]:
            if method == "POST":
                return self._json(202, {"job": self._submit(environ)})
            self._require(method, "GET", path)
            return self._json(200, self._list_jobs(params))
        if len(route) == 2 and route[0] == "jobs":
            self._require(method, "GET", path)
            queue = self._require_queue()
            return self._json(200, {"job": queue.snapshot(self._job(route[1]))})
        if len(route) == 3 and route[0] == "jobs" and route[2] == "kill":
            self._require(method, "POST", path)
            return self._json(200, self._kill(route[1]))
        raise HTTPError(404, f"no such path: {path}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise HTTPError(405, f"{path} supports {expected} only, got {method}")

    @staticmethod
    def _json(status: int, payload: Any) -> tuple[int, str, bytes]:
        return (
            status,
            "application/json",
            (stable_json(payload) + "\n").encode("utf-8"),
        )

    # -- run handlers ------------------------------------------------------------------

    def _store(self, run_id: str):
        try:
            return self.index.store(run_id)
        except ValueError as exc:
            raise HTTPError(400, str(exc)) from exc
        except RunStoreError as exc:
            status = 404 if "no run" in str(exc) else 409
            raise HTTPError(status, str(exc)) from exc

    def _health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "store_root": str(self.store_root),
            "runs": len(self.index.entries()),
            "queue": self.queue.stats() if self.queue is not None else None,
            "dispatching": (
                self.dispatch.run_ids() if self.dispatch is not None else []
            ),
        }

    def _list_runs(self, params: dict[str, list[str]]) -> dict[str, Any]:
        sla = params.get("sla", [None])[-1]
        sla_filter: bool | None = None
        if sla is not None:
            try:
                sla_filter = {"compliant": True, "violated": False}[sla]
            except KeyError:
                raise HTTPError(
                    400,
                    f"query parameter 'sla' must be 'compliant' or 'violated', "
                    f"got {sla!r}",
                    code="bad_parameter",
                    detail={"parameter": "sla"},
                ) from None
        entries = self.index.entries(
            name=params.get("name", [None])[-1],
            complete=_bool_param(params, "complete"),
            sla_compliant=sla_filter,
            spec_hash=params.get("spec_hash", [None])[-1],
        )
        limit = _limit_param(params)
        cursor = params.get("cursor", [None])[-1]
        if cursor is not None:
            # Entries are sorted by run id, so the cursor (the last id of the
            # previous page) is a simple strict lower bound.
            entries = [entry for entry in entries if entry.run_id > cursor]
        next_cursor = None
        if limit is not None and len(entries) > limit:
            entries = entries[:limit]
            next_cursor = entries[-1].run_id
        return {
            "runs": [entry.to_dict() for entry in entries],
            "next_cursor": next_cursor,
        }

    def _run_detail(self, run_id: str) -> dict[str, Any]:
        try:
            entry = self.index.entry(run_id)
        except ValueError as exc:
            raise HTTPError(400, str(exc)) from exc
        if entry is None:
            raise HTTPError(404, f"no run {run_id!r} under {self.store_root}")
        job = None
        if self.queue is not None:
            for candidate in self.queue.jobs():
                if candidate.run_id == run_id:
                    job = candidate  # latest submission wins
        detail = entry.to_dict()
        detail["summary"] = self._store(run_id).summary()
        # Serialize through the queue (lock-holding snapshot): workers mutate
        # job state/events concurrently and a bare to_dict() can tear.
        detail["job"] = self.queue.snapshot(job) if job is not None else None
        return detail

    def _run_records(
        self, run_id: str, params: dict[str, list[str]]
    ) -> dict[str, Any]:
        since = _int_param(params, "since", 0)
        wait = min(_float_param(params, "wait", 0.0), MAX_WAIT_SECONDS)
        full = _bool_param(params, "full") or False
        store = self._store(run_id)
        intervals = store.spec().intervals
        deadline = time.monotonic() + wait
        while True:
            records = store.records()
            if len(records) > since or len(records) >= intervals:
                break
            if time.monotonic() >= deadline:
                break
            time.sleep(0.1)
        fresh = records[since:]
        if not full:
            # Strip the bulk per-interval payload (raw sample hex in exact
            # mode, bucket state in sketch mode) unless explicitly requested.
            fresh = [
                {
                    key: value
                    for key, value in record.items()
                    if key not in ("delay_samples", "delay_sketch")
                }
                for record in fresh
            ]
        return {
            "run": run_id,
            "since": since,
            "next": len(records),
            "complete": len(records) >= intervals,
            "records": fresh,
        }

    def _compare(self, params: dict[str, list[str]]) -> dict[str, Any]:
        raw = ",".join(params.get("runs", []))
        run_ids = [run_id for run_id in raw.split(",") if run_id]
        if len(run_ids) < 2:
            raise HTTPError(
                400, "compare needs at least two run ids: ?runs=<id>,<id>[,...]"
            )
        return compare_runs([self._store(run_id) for run_id in run_ids])

    # -- job handlers ------------------------------------------------------------------

    def _require_queue(self) -> JobQueue:
        if self.queue is None:
            raise HTTPError(503, "this service instance has no job queue")
        return self.queue

    def _job(self, job_id: str):
        job = self._require_queue().job(job_id)
        if job is None:
            raise HTTPError(404, f"no job {job_id!r}")
        return job

    def _list_jobs(self, params: dict[str, list[str]]) -> dict[str, Any]:
        snapshots = self._require_queue().snapshots()
        limit = _limit_param(params)
        cursor = params.get("cursor", [None])[-1]
        if cursor is not None:
            # Jobs list in submission order (ids are not sorted), so the
            # cursor is located by identity rather than comparison.
            positions = [
                index
                for index, snapshot in enumerate(snapshots)
                if snapshot.get("id") == cursor
            ]
            if not positions:
                raise HTTPError(
                    400,
                    f"unknown jobs cursor {cursor!r}",
                    code="invalid_cursor",
                    detail={"parameter": "cursor"},
                )
            snapshots = snapshots[positions[0] + 1 :]
        next_cursor = None
        if limit is not None and len(snapshots) > limit:
            snapshots = snapshots[:limit]
            next_cursor = snapshots[-1].get("id")
        return {"jobs": snapshots, "next_cursor": next_cursor}

    def _kill(self, job_id: str) -> dict[str, Any]:
        queue = self._require_queue()
        job = self._job(job_id)
        killed = queue.kill(job_id)
        return {"job": queue.snapshot(job), "killed": killed}

    def _read_body(self, environ: dict[str, Any]) -> dict[str, Any]:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            raise HTTPError(400, "invalid Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise HTTPError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        payload = environ["wsgi.input"].read(length) if length else b""
        if not payload:
            raise HTTPError(400, "request body must be a JSON object")
        try:
            body = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise HTTPError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return body

    def _submit(self, environ: dict[str, Any]) -> dict[str, Any]:
        queue = self._require_queue()
        body = self._read_body(environ)
        if "spec" not in body:
            raise HTTPError(400, "request body must carry a 'spec' object")
        try:
            spec = CampaignSpec.from_dict(body["spec"])
        except (ValueError, TypeError, KeyError) as exc:
            raise HTTPError(400, f"invalid campaign spec: {exc}") from exc
        policy = None
        if body.get("policy") is not None:
            try:
                policy = ExecutionPolicy.from_dict(body["policy"])
            except (ValueError, TypeError, KeyError) as exc:
                raise HTTPError(400, f"invalid execution policy: {exc}") from exc
        run_id = body.get("run_id")
        if run_id is not None and not isinstance(run_id, str):
            raise HTTPError(400, "'run_id' must be a string")
        resume = body.get("resume", False)
        if not isinstance(resume, bool):
            raise HTTPError(400, "'resume' must be a boolean")
        try:
            job = queue.submit(spec, policy=policy, run_id=run_id, resume=resume)
        except JobRejected as exc:
            raise HTTPError(409, str(exc)) from exc
        except (ValueError, RunStoreError) as exc:
            raise HTTPError(400, str(exc)) from exc
        return queue.snapshot(job)


# -- serving -------------------------------------------------------------------------


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """Dev server: one thread per request so long-polls don't starve polls."""

    daemon_threads = True

    def handle_error(self, request: Any, client_address: Any) -> None:
        # A worker SIGKILLed mid-request (the chaos schedule) tears its
        # socket; the default handler would dump that traceback to stderr.
        pass


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass


def make_service_server(
    host: str,
    port: int,
    app: ServiceApp,
    quiet: bool = True,
) -> WSGIServer:
    """A threaded :mod:`wsgiref` dev server bound to ``host:port`` (0 = ephemeral)."""
    return make_server(
        host,
        port,
        app,
        server_class=_ThreadingWSGIServer,
        handler_class=_QuietHandler if quiet else WSGIRequestHandler,
    )


def serve(
    store_root: Path | str,
    host: str = "127.0.0.1",
    port: int = 8642,
    workers: int = 2,
    execution: str = "subprocess",
    dispatch_workers: int = 2,
    quiet: bool = False,
) -> None:
    """Run the measurement service until interrupted (the ``repro serve`` body)."""
    queue = JobQueue(
        store_root,
        workers=workers,
        execution=execution,
        dispatch_workers=dispatch_workers,
    )
    app = ServiceApp(store_root, queue=queue)
    server = make_service_server(host, port, app, quiet=True)
    bound_host, bound_port = server.server_address[:2]
    if not quiet:
        print(
            f"repro service: store root {Path(store_root).resolve()} — "
            f"dashboard http://{bound_host}:{bound_port}/ "
            f"(API under /api/{API_VERSION}, {workers} worker(s), "
            f"{execution} execution)",
            flush=True,
        )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        queue.shutdown(wait=False)
