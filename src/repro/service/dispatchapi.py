"""HTTP handlers for the dispatch protocol (``/api/v1/dispatch/…``).

The service app routes every ``/api/v1/dispatch/<run_id>/…`` request here;
this module translates WSGI mechanics (headers, raw bodies, path segments)
into calls on the run's :class:`~repro.dist.net.DispatchHub` and its
:class:`~repro.dist.net.ProtocolError` rejections into the service's
standard error envelope.  Dispatch endpoints exist **only** under
``/api/v1/`` — they were born versioned, so no legacy alias exists.

A :class:`DispatchRegistry` maps run ids to live hubs.  The usual host is a
:class:`~repro.dist.dispatch.DispatchCoordinator` in HTTP mode, which
registers exactly one run; a long-lived service could register many.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.dist.net import DIGEST_HEADER, WORKER_HEADER, DispatchHub, ProtocolError
from repro.service.errors import HTTPError

__all__ = ["DispatchRegistry", "handle_dispatch"]

#: Upper bound on one uploaded record line (matches the app's body cap).
MAX_UPLOAD_BYTES = 16 * 1024 * 1024

#: WSGI environ key for the worker-identity header.
_WORKER_ENV = "HTTP_" + WORKER_HEADER.upper().replace("-", "_")
_DIGEST_ENV = "HTTP_" + DIGEST_HEADER.upper().replace("-", "_")


class DispatchRegistry:
    """Thread-safe run-id → :class:`~repro.dist.net.DispatchHub` map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hubs: dict[str, DispatchHub] = {}

    def register(self, run_id: str, hub: DispatchHub) -> None:
        with self._lock:
            self._hubs[run_id] = hub

    def unregister(self, run_id: str) -> None:
        with self._lock:
            self._hubs.pop(run_id, None)

    def hub(self, run_id: str) -> DispatchHub | None:
        with self._lock:
            return self._hubs.get(run_id)

    def run_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._hubs)


def _require_hub(registry: DispatchRegistry, run_id: str) -> DispatchHub:
    hub = registry.hub(run_id)
    if hub is None:
        raise HTTPError(
            404,
            f"no dispatch in progress for run {run_id!r}",
            code="unknown_run",
            detail={"dispatching": registry.run_ids()},
        )
    return hub


def _require_worker(environ: dict[str, Any]) -> str:
    worker = environ.get(_WORKER_ENV, "").strip()
    if not worker:
        raise HTTPError(
            400,
            f"dispatch requests must carry the {WORKER_HEADER} header",
            code="missing_worker",
        )
    return worker


def _interval(segment: str) -> int:
    try:
        interval = int(segment)
    except ValueError:
        raise HTTPError(
            400,
            f"interval must be an integer, got {segment!r}",
            code="bad_interval",
        ) from None
    if interval < 0:
        raise HTTPError(
            400, f"interval must be >= 0, got {interval}", code="bad_interval"
        )
    return interval


def _read_raw_body(environ: dict[str, Any]) -> bytes:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        raise HTTPError(400, "invalid Content-Length") from None
    if length > MAX_UPLOAD_BYTES:
        raise HTTPError(413, f"upload exceeds {MAX_UPLOAD_BYTES} bytes")
    return environ["wsgi.input"].read(length) if length else b""


def handle_dispatch(
    registry: DispatchRegistry,
    route: list[str],
    method: str,
    environ: dict[str, Any],
    params: dict[str, list[str]],
) -> tuple[int, Any]:
    """Serve one ``dispatch/…`` route; returns ``(status, json_payload)``.

    ``route`` is the path split after the ``dispatch`` segment:
    ``[run_id]``, ``[run_id, "claims", i]``, ``[run_id, "claims", i,
    "renew"]`` or ``[run_id, "records", i]``.
    """
    if not route:
        raise HTTPError(404, "dispatch routes are /dispatch/<run_id>/…")
    hub = _require_hub(registry, route[0])
    tail = route[1:]
    try:
        if not tail:
            if method != "GET":
                raise HTTPError(405, f"dispatch status supports GET, got {method}")
            if params.get("config", [""])[-1] in ("1", "true", "yes"):
                return 200, {"run": route[0], **hub.config()}
            return 200, {"run": route[0], **hub.status()}
        if tail[0] == "claims" and len(tail) in (2, 3):
            interval = _interval(tail[1])
            if len(tail) == 3 and tail[2] == "renew":
                if method != "POST":
                    raise HTTPError(405, f"renew supports POST, got {method}")
                return 200, hub.renew(interval, _require_worker(environ))
            if len(tail) == 2:
                if method == "POST":
                    return 200, hub.claim(interval, _require_worker(environ))
                if method == "DELETE":
                    return 200, hub.release(interval, _require_worker(environ))
                raise HTTPError(
                    405, f"claims supports POST and DELETE, got {method}"
                )
        if tail[0] == "records" and len(tail) == 2:
            if method != "PUT":
                raise HTTPError(405, f"record upload supports PUT, got {method}")
            interval = _interval(tail[1])
            worker = _require_worker(environ)
            payload = _read_raw_body(environ)
            digest = environ.get(_DIGEST_ENV)
            return 200, hub.upload(interval, payload, digest, worker)
        raise HTTPError(404, f"no such dispatch route: {'/'.join(route)}")
    except ProtocolError as exc:
        raise HTTPError(
            exc.status, str(exc), code=exc.code, detail=exc.detail
        ) from exc
