"""The service API's single error shape.

Every error any ``/api/v1/…`` (or legacy ``/api/…``) route produces — bad
query parameters, missing runs, queue rejections, dispatch protocol
violations, even handler bugs — serializes through one envelope::

    {"error": {"code": "<machine-readable>", "message": "<human-readable>"}}

with an optional structured ``detail`` object (e.g. the offending query
parameter's name, or the declared-vs-computed digests of a rejected
upload).  Clients branch on ``code``; ``message`` is for humans.

This module sits below :mod:`repro.service.app` so the dispatch endpoint
handlers can raise :class:`HTTPError` without importing the app (which
imports them).
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["HTTPError", "STATUS_TEXT", "error_body"]

STATUS_TEXT = {
    200: "200 OK",
    202: "202 Accepted",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    409: "409 Conflict",
    413: "413 Payload Too Large",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
}

#: Default ``code`` per status, for raises that don't pick a specific one.
_DEFAULT_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    413: "payload_too_large",
    500: "internal",
    503: "unavailable",
}


class HTTPError(Exception):
    """An HTTP-visible failure; serialized through the error envelope."""

    def __init__(
        self,
        status: int,
        message: str,
        code: str | None = None,
        detail: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code if code is not None else _DEFAULT_CODES.get(status, "error")
        self.detail = dict(detail) if detail is not None else None


def error_body(
    code: str, message: str, detail: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """The envelope payload (pass to ``stable_json`` for the wire bytes)."""
    error: dict[str, Any] = {"code": code, "message": message}
    if detail is not None:
        error["detail"] = dict(detail)
    return {"error": error}
