"""Machine-readable campaign run reports.

One serialization, three consumers: ``repro report --json`` prints it, the
service's ``GET /api/runs/<id>/report`` endpoint serves it, and the browser
dashboard renders it.  The payload is a pure function of the store's committed
bytes (records are re-folded through
:class:`~repro.engine.campaign.CampaignAccumulator`, never trusted from
``summary.json`` alone), and serializing it with
:func:`~repro.store.stable_json` is byte-stable — two equal stores report
identical bytes, so CI can diff reports the way it diffs stores.

The per-interval rows deliberately omit ``delay_samples`` (the raw pooled
sample payload, by far the largest field in a record): a report answers "what
were the verdicts and estimates", and a consumer that wants the raw samples
reads the records endpoint or the store itself.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.engine.campaign import CampaignAccumulator
from repro.store import RunStore

__all__ = ["REPORT_VERSION", "compare_runs", "run_report"]

REPORT_VERSION = 1

#: Record fields surfaced per interval (everything but the bulk samples).
_INTERVAL_FIELDS = (
    "interval",
    "seed",
    "receipts_digest",
    "result_digest",
    "estimates",
    "verdicts",
)


def overall_sla(summary: dict[str, Any] | None) -> bool | None:
    """Fold per-domain SLA verdicts into one campaign answer.

    ``False`` if any domain is in violation, ``True`` if every domain with a
    verdict is compliant (and at least one has one), ``None`` when no domain
    carries a verdict (no SLA contracted) or there is no summary yet.
    """
    if summary is None:
        return None
    verdicts = [
        entry.get("sla_compliant")
        for entry in summary.get("domains", {}).values()
        if entry.get("sla_compliant") is not None
    ]
    if not verdicts:
        return None
    return all(verdicts)


def run_report(store: RunStore) -> dict[str, Any]:
    """The complete machine-readable report for one run store."""
    spec = store.spec()
    records = store.records()
    accumulator = CampaignAccumulator.from_records(spec, records)
    summary = accumulator.summary()
    persisted = store.summary()
    return {
        "version": REPORT_VERSION,
        "run": store.path.name,
        "name": spec.name,
        "spec_hash": store.spec_hash,
        "intervals": {
            "total": spec.intervals,
            "completed": len(records),
            "complete": len(records) >= spec.intervals,
        },
        "sla": spec.sla.to_dict() if spec.sla is not None else None,
        "sla_compliant": overall_sla(summary) if records else None,
        "records": [
            {field: record[field] for field in _INTERVAL_FIELDS}
            for record in records
        ],
        "summary": summary if records else None,
        # None until completion writes summary.json; thereafter a mismatch
        # means the store was edited (the CLI warns on exactly this).
        "summary_matches_store": (
            None if persisted is None else persisted == summary
        ),
    }


def compare_runs(stores: Sequence[RunStore]) -> dict[str, Any]:
    """Cross-run comparison payload (``repro compare`` and ``GET /api/compare``).

    ``domains`` maps each domain to per-run quantile/loss/acceptance
    summaries.  Each entry carries the run's ``estimation`` annotation
    (sketch size + relative error bound) or ``None`` for the exact tier, so
    a consumer comparing quantiles across runs measured at different
    precisions sees how much of a gap is attributable to sketch error.
    """
    runs: list[dict[str, Any]] = []
    domains: dict[str, dict[str, Any]] = {}
    for store in stores:
        report = run_report(store)
        run_id = report["run"]
        runs.append(
            {
                key: report[key]
                for key in (
                    "run",
                    "name",
                    "spec_hash",
                    "intervals",
                    "sla",
                    "sla_compliant",
                )
            }
        )
        summary = report["summary"] or {"domains": {}}
        for domain, entry in summary["domains"].items():
            domains.setdefault(domain, {})[run_id] = {
                "loss_rate": entry["loss_rate"],
                "delay_sample_count": entry["delay_sample_count"],
                "pooled_quantiles": entry["pooled_quantiles"],
                "acceptance_rate": entry["acceptance_rate"],
                "sla_compliant": entry["sla_compliant"],
                "estimation": entry.get("estimation"),
            }
    return {"runs": runs, "domains": domains}
