"""Small argument-validation helpers used across the package.

The helpers raise :class:`ValueError` with a message naming the offending
parameter, which keeps constructor bodies short and error messages uniform.
"""

from __future__ import annotations

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_fraction",
]


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Return ``value`` if within [0, 1], else raise ``ValueError``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Return ``value`` if within (0, 1], else raise ``ValueError``.

    Sampling and marker rates must be strictly positive (a rate of zero would
    make the corresponding mechanism a no-op) but may be 1 (sample everything).
    """
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")
    return value
