"""Deterministic random-number management.

Every stochastic component in the reproduction (traffic generation, loss
models, congestion simulation, adversary behaviour) draws randomness from a
:class:`numpy.random.Generator` created through :func:`make_rng`.  Components
never touch the global NumPy state, which keeps experiments reproducible and
lets independent components be re-seeded without interfering with each other.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed"]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a NumPy random generator.

    Parameters
    ----------
    seed:
        ``None`` for entropy-based seeding, an integer for a fixed seed, or an
        existing generator which is returned unchanged (so call sites can
        accept either form).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable sub-seed from ``base_seed`` and a sequence of labels.

    The derivation hashes the base seed together with the textual form of the
    labels, so distinct components of an experiment ("loss", "delay",
    "trace", hop identifiers, ...) receive independent, reproducible streams.

    Examples
    --------
    >>> derive_seed(42, "loss") != derive_seed(42, "delay")
    True
    >>> derive_seed(42, "loss") == derive_seed(42, "loss")
    True
    """
    material = repr((int(base_seed),) + tuple(str(label) for label in labels))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
