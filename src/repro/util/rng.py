"""Deterministic random-number management.

Every stochastic component in the reproduction (traffic generation, loss
models, congestion simulation, adversary behaviour) draws randomness from a
:class:`numpy.random.Generator` created through :func:`make_rng`.  Components
never touch the global NumPy state, which keeps experiments reproducible and
lets independent components be re-seeded without interfering with each other.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Any, Mapping

import numpy as np

__all__ = [
    "make_rng",
    "derive_seed",
    "snapshot_rng",
    "restore_rng",
    "RNGStateMixin",
]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a NumPy random generator.

    Parameters
    ----------
    seed:
        ``None`` for entropy-based seeding, an integer for a fixed seed, or an
        existing generator which is returned unchanged (so call sites can
        accept either form).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable sub-seed from ``base_seed`` and a sequence of labels.

    The derivation hashes the base seed together with the textual form of the
    labels, so distinct components of an experiment ("loss", "delay",
    "trace", hop identifiers, ...) receive independent, reproducible streams.

    Examples
    --------
    >>> derive_seed(42, "loss") != derive_seed(42, "delay")
    True
    >>> derive_seed(42, "loss") == derive_seed(42, "loss")
    True
    """
    material = repr((int(base_seed),) + tuple(str(label) for label in labels))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def snapshot_rng(rng: np.random.Generator) -> dict[str, Any]:
    """A picklable snapshot of a generator's exact stream position.

    Restoring it with :func:`restore_rng` makes the generator produce the
    same draws it would have produced from the snapshot point, so a
    component's randomness can be resumed mid-stream bit-identically.
    """
    return copy.deepcopy(rng.bit_generator.state)


def restore_rng(rng: np.random.Generator, state: Mapping[str, Any]) -> None:
    """Restore a generator to a position captured by :func:`snapshot_rng`."""
    rng.bit_generator.state = copy.deepcopy(dict(state))


class RNGStateMixin:
    """Snapshot/restore of a stochastic component's mutable stream state.

    The streaming engine's :class:`~repro.engine.checkpoint.StreamCheckpoint`
    captures every propagation model's position in its random stream so a
    scenario stream can be resumed at a chunk boundary bit-identically.  The
    base implementation covers the one convention every built-in component
    follows — a single ``self._rng`` generator (absent on deterministic
    components).  A custom model with *additional* sequential state (a Markov
    chain, a replay cursor) must override both methods and include that state
    too, just as it must keep ``streamable`` honest.
    """

    def state_snapshot(self) -> dict[str, Any]:
        """Return a picklable snapshot of all mutable stream state."""
        rng = getattr(self, "_rng", None)
        if rng is None:
            return {}
        return {"rng": snapshot_rng(rng)}

    def state_restore(self, state: Mapping[str, Any]) -> None:
        """Restore stream state captured by :meth:`state_snapshot`."""
        rng = getattr(self, "_rng", None)
        if rng is not None:
            restore_rng(rng, state["rng"])
