"""Unit helpers.

All internal timestamps in the reproduction are expressed in **seconds** as
floats (the simulator's virtual clock has effectively nanosecond resolution,
which sidesteps the wall-clock timestamp-precision problem flagged for the
reproduction).  These helpers make unit conversions explicit at call sites.
"""

from __future__ import annotations

__all__ = [
    "seconds",
    "milliseconds",
    "microseconds",
    "Mbps",
    "gbps_to_pps",
    "bytes_to_human",
    "BYTES_PER_KB",
    "BYTES_PER_MB",
    "BYTES_PER_GB",
]

BYTES_PER_KB = 1024
BYTES_PER_MB = 1024 * 1024
BYTES_PER_GB = 1024 * 1024 * 1024


def seconds(value: float) -> float:
    """Identity conversion, present for symmetry and call-site clarity."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * 1e-3


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * 1e-6


def Mbps(value: float) -> float:
    """Convert megabits per second to bytes per second."""
    return float(value) * 1e6 / 8.0


def gbps_to_pps(gbps: float, mean_packet_size: int = 400) -> float:
    """Packets per second carried by a ``gbps`` link at a mean packet size.

    The paper's Section 7.1 uses 400-byte average packets, under which a
    10 Gbps interface carries 3.125 Mpps per direction.

    >>> round(gbps_to_pps(10, 400) / 1e6, 3)
    3.125
    """
    if gbps < 0:
        raise ValueError(f"gbps must be non-negative, got {gbps}")
    if mean_packet_size <= 0:
        raise ValueError(f"mean_packet_size must be positive, got {mean_packet_size}")
    return gbps * 1e9 / 8.0 / mean_packet_size


def bytes_to_human(num_bytes: float) -> str:
    """Render a byte count using binary prefixes, e.g. ``'2.0 MB'``."""
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
