"""Utility helpers shared across the VPM reproduction."""

from repro.util.rng import derive_seed, make_rng
from repro.util.units import (
    BYTES_PER_GB,
    BYTES_PER_KB,
    BYTES_PER_MB,
    Mbps,
    bytes_to_human,
    gbps_to_pps,
    microseconds,
    milliseconds,
    seconds,
)
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "BYTES_PER_GB",
    "BYTES_PER_KB",
    "BYTES_PER_MB",
    "Mbps",
    "bytes_to_human",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "derive_seed",
    "gbps_to_pps",
    "make_rng",
    "microseconds",
    "milliseconds",
    "seconds",
]
